import sys
sys.path.insert(0, "benchmarks")
from repro import AnalyticsContext, MB
from repro.api.ops import OpCost
from repro.datamodel import Partition
from repro.cluster import Cluster
from repro.config import MachineSpec, HDD
from repro.workloads.scaling import scaled_memory_overrides

def convoy_job(round_robin, cores, compute_s, n=48):
    spec = MachineSpec(cores=cores, disks=(HDD,), **{})
    cluster = Cluster(1, spec)
    payloads = [Partition(records=[(i,0)], record_count=1.0, data_bytes=128*MB)
                for i in range(n)]
    cluster.dfs.create_file("in", payloads, [128*MB]*n)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           round_robin_phases=round_robin)
    (ctx.text_file("in").map(lambda kv: kv, cost=OpCost(per_record_s=compute_s),
                             size_ratio=1.0).save_as_text_file("out"))
    return ctx.last_result.duration

for cores, comp in ((4, 2.5), (4, 5.0), (4, 10.0), (8, 5.0), (8, 16.0), (2, 4.0)):
    rr = convoy_job(True, cores, comp)
    ff = convoy_job(False, cores, comp)
    print(f"convoy cores={cores} comp={comp}: RR={rr:6.1f} FIFO={ff:6.1f} ratio={ff/rr:.2f}")

from helpers import make_cluster
def assign_job(compute_s, override=None, extra=1):
    cluster = make_cluster("hdd", 5, 2, fraction=0.05)
    n = 200
    payloads = [Partition(records=[(i,0)], record_count=1.0, data_bytes=96*MB)
                for i in range(n)]
    cluster.dfs.create_file("in", payloads, [96*MB]*n)
    opts = {"extra_multitasks": extra}
    if override: opts = {"concurrency_override": override}
    ctx = AnalyticsContext(cluster, engine="monospark", **opts)
    (ctx.text_file("in").map(lambda kv: kv, cost=OpCost(per_record_s=compute_s),
                             size_ratio=1.0).count())
    return ctx.last_result.duration

for comp in (3.0, 4.0, 6.0):
    co = assign_job(comp, 8); rule = assign_job(comp); x2 = assign_job(comp, 30)
    print(f"assign comp={comp}: cores-only={co:6.1f} rule={rule:6.1f} 2x={x2:6.1f}")
