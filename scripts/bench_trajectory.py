"""Track the clarity advisor's accuracy trajectory (stdlib only).

Runs the seeded advisor-validation workload
(``repro.clarity.validate.validate_advisor``) and writes a byte-stable
JSON summary -- baseline p50/p95 service time, the advisor's top pick
and ranking, and each candidate's relative prediction error against
ground-truth re-simulation -- to ``BENCH_clarity.json``.  The committed
copy at the repo root is the accuracy baseline; the CI clarity-bench
job regenerates the file and diffs it against that baseline so advisor
regressions (a ranking flip, an error drifting past tolerance) fail
loudly instead of rotting silently.

Usage:
    python scripts/bench_trajectory.py [--output BENCH_clarity.json]
    python scripts/bench_trajectory.py --check BENCH_clarity.json \
        [--tolerance 0.02]

``--check`` compares the freshly computed result against a committed
baseline: rankings and the ranking-match flag must be identical, and
every numeric field must agree within ``--tolerance`` (absolute, in the
field's own units).  Exit status 0 on match, 1 on drift or a failed
acceptance gate.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.clarity.validate import (ClarityWorkload, ERROR_ENVELOPE,
                                    validate_advisor)  # noqa: E402

DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_clarity.json")


def compute() -> dict:
    """One validation run, as the byte-stable JSON dict."""
    return validate_advisor(ClarityWorkload()).to_json()


def write(result: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _numbers(prefix: str, value) -> dict:
    """Flatten every numeric leaf to ``path -> value``."""
    out = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:
            out.update(_numbers(f"{prefix}.{key}", value[key]))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(_numbers(f"{prefix}[{index}]", item))
    return out


def check(result: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for key in ("predicted_ranking", "actual_ranking", "ranking_matches",
                "advisor_top", "bottleneck", "engine", "seed"):
        if result.get(key) != baseline.get(key):
            failures.append(f"{key}: baseline {baseline.get(key)!r} "
                            f"vs current {result.get(key)!r}")
    ours, theirs = _numbers("$", result), _numbers("$", baseline)
    for path in sorted(set(ours) | set(theirs)):
        if path not in ours or path not in theirs:
            failures.append(f"{path}: present on only one side")
        elif abs(ours[path] - theirs[path]) > tolerance:
            failures.append(f"{path}: baseline {theirs[path]} vs "
                            f"current {ours[path]} "
                            f"(tolerance {tolerance})")
    if not result.get("ranking_matches"):
        failures.append("advisor ranking no longer matches ground truth")
    if result.get("max_error_p95", 1.0) > ERROR_ENVELOPE:
        failures.append(f"max_error_p95 {result['max_error_p95']} exceeds "
                        f"the {ERROR_ENVELOPE} envelope")
    if failures:
        print(f"clarity trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"clarity trajectory matches {baseline_path} "
          f"(tolerance {tolerance})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON summary")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against this committed baseline "
                             "instead of accepting the new result")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="absolute per-field drift allowed under "
                             "--check (default 0.02)")
    args = parser.parse_args(argv)

    result = compute()
    write(result, args.output)
    print(f"wrote {args.output}: {result['jobs']} jobs, top pick "
          f"{result['advisor_top']}, worst p95 error "
          f"{result['max_error_p95']:.2%}")
    if args.check is not None:
        return check(result, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
