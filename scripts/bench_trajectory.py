"""Track the repo's benchmark trajectories (stdlib only).

Three benchmarks, selected with ``--bench``:

* ``clarity`` (default) -- runs the seeded advisor-validation workload
  (``repro.clarity.validate.validate_advisor``) and writes a byte-stable
  JSON summary -- baseline p50/p95 service time, the advisor's top pick
  and ranking, and each candidate's relative prediction error against
  ground-truth re-simulation -- to ``BENCH_clarity.json``.
* ``kernel`` -- runs the seeded kernel-throughput workload
  (``repro.kernelbench``: an observed serving stream with the full
  clarity/telemetry pipeline attached) and writes ``BENCH_kernel.json``:
  deterministic workload invariants, the current wall-clock throughput
  (best of ``--repeats``), and the frozen pre-optimization baseline
  carried forward so the speedup trajectory stays visible.
* ``datasvc`` -- runs the seeded disaggregated-vs-co-located fault
  scenarios (``repro.datasvc.bench``: compute crash mid-shuffle, block
  corruption, storage-node crash, both engines) and writes
  ``BENCH_datasvc.json``: attempt-outcome and data-tier counters that
  pin the "a compute crash loses no map output" contrast.
* ``controlplane`` -- runs the seeded multi-driver scenarios
  (``repro.controlplane.bench``: jobs/sec at 1/2/4 driver replicas, a
  mid-run leader crash with checkpointed failover on vs off) and writes
  ``BENCH_controlplane.json``: throughput, p95, election/failover and
  lost-vs-resumed counters that pin the "a driver crash loses no
  requests" contrast.
* ``obs`` -- runs the seeded observability scenarios
  (``repro.obs.bench``: a silent fault-free stream, a fail-slow machine
  that must be named by alerts before the health monitor excludes it,
  a leader crash that must fire driver-down) and writes
  ``BENCH_obs.json``: the full alert timelines plus detection-latency
  invariants, diffed exactly; the plane's measured self-overhead is
  budget-gated against the committed
  ``workload.overhead_budget_ms_per_sim_s``, never diffed.
* ``xray`` -- runs the seeded capsule/differential-debugger scenarios
  (``repro.xray.bench``: byte-identical same-seed capsule recording for
  both engines, the fail-slow diff that must blame machine 1's network,
  the Spark NOT ATTRIBUTABLE contrast, the clean self-diff) and writes
  ``BENCH_xray.json``: capsule sha256s, manifest counts, and the ranked
  blame invariants, diffed exactly.

The committed copy at the repo root is the baseline; the CI
clarity-bench / kernel-bench / datasvc-bench jobs regenerate the file
and diff it against that baseline so regressions fail loudly instead of
rotting silently.  For clarity, every numeric field must agree within
``--tolerance``.  For kernel and datasvc, the deterministic invariants
must match *exactly* (same seed => same counts on any machine); the
kernel bench additionally requires measured monotasks/sec to clear the
committed conservative floor (wall-clock fields themselves are
machine-dependent and are not diffed).

Usage:
    python scripts/bench_trajectory.py [--bench clarity]
        [--output BENCH_clarity.json] [--check BASELINE]
        [--tolerance 0.02]
    python scripts/bench_trajectory.py --bench kernel
        [--output BENCH_kernel.json] [--check BASELINE] [--repeats 2]
    python scripts/bench_trajectory.py --bench datasvc
        [--output BENCH_datasvc.json] [--check BASELINE] [--repeats 2]
    python scripts/bench_trajectory.py --bench controlplane
        [--output BENCH_controlplane.json] [--check BASELINE]
        [--repeats 2]
    python scripts/bench_trajectory.py --bench obs
        [--output BENCH_obs.json] [--check BASELINE] [--repeats 2]
    python scripts/bench_trajectory.py --bench xray
        [--output BENCH_xray.json] [--check BASELINE] [--repeats 2]

Exit status 0 on match, 1 on drift or a failed acceptance gate.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.clarity.validate import (ClarityWorkload, ERROR_ENVELOPE,
                                    validate_advisor)  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUTS = {
    "clarity": os.path.join(_ROOT, "BENCH_clarity.json"),
    "kernel": os.path.join(_ROOT, "BENCH_kernel.json"),
    "datasvc": os.path.join(_ROOT, "BENCH_datasvc.json"),
    "controlplane": os.path.join(_ROOT, "BENCH_controlplane.json"),
    "obs": os.path.join(_ROOT, "BENCH_obs.json"),
    "xray": os.path.join(_ROOT, "BENCH_xray.json"),
}


def write(result: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _numbers(prefix: str, value) -> dict:
    """Flatten every numeric leaf to ``path -> value``."""
    out = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:
            out.update(_numbers(f"{prefix}.{key}", value[key]))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(_numbers(f"{prefix}[{index}]", item))
    return out


# -- clarity ------------------------------------------------------------------


def compute_clarity() -> dict:
    """One validation run, as the byte-stable JSON dict."""
    return validate_advisor(ClarityWorkload()).to_json()


def check_clarity(result: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for key in ("predicted_ranking", "actual_ranking", "ranking_matches",
                "advisor_top", "bottleneck", "engine", "seed"):
        if result.get(key) != baseline.get(key):
            failures.append(f"{key}: baseline {baseline.get(key)!r} "
                            f"vs current {result.get(key)!r}")
    ours, theirs = _numbers("$", result), _numbers("$", baseline)
    for path in sorted(set(ours) | set(theirs)):
        if path not in ours or path not in theirs:
            failures.append(f"{path}: present on only one side")
        elif abs(ours[path] - theirs[path]) > tolerance:
            failures.append(f"{path}: baseline {theirs[path]} vs "
                            f"current {ours[path]} "
                            f"(tolerance {tolerance})")
    if not result.get("ranking_matches"):
        failures.append("advisor ranking no longer matches ground truth")
    if result.get("max_error_p95", 1.0) > ERROR_ENVELOPE:
        failures.append(f"max_error_p95 {result['max_error_p95']} exceeds "
                        f"the {ERROR_ENVELOPE} envelope")
    if failures:
        print(f"clarity trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"clarity trajectory matches {baseline_path} "
          f"(tolerance {tolerance})")
    return 0


# -- kernel -------------------------------------------------------------------


def compute_kernel(repeats: int, carry_from: str) -> dict:
    """One throughput measurement (best of ``repeats``).

    The frozen pre-optimization baseline and the CI floor are carried
    forward from ``carry_from`` when it exists: the slow code they were
    measured against is gone, so they cannot be regenerated.
    """
    from repro.kernelbench import (KernelWorkload, run_kernel_benchmark,
                                   trajectory_summary)
    baseline = None
    floor = None
    if carry_from and os.path.exists(carry_from):
        with open(carry_from) as handle:
            committed = json.load(handle)
        baseline = committed.get("baseline")
        floor = committed.get("min_monotasks_per_s")
    result = run_kernel_benchmark(KernelWorkload(), repeats=repeats)
    return trajectory_summary(result, baseline=baseline, floor=floor,
                              repeats=repeats)


def check_kernel(result: dict, baseline_path: str) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for section in ("workload", "invariants"):
        ours, theirs = result.get(section, {}), baseline.get(section, {})
        for key in sorted(set(ours) | set(theirs)):
            if ours.get(key) != theirs.get(key):
                failures.append(
                    f"{section}.{key}: baseline {theirs.get(key)!r} "
                    f"vs current {ours.get(key)!r} (must match exactly)")
    floor = baseline.get("min_monotasks_per_s")
    rate = result.get("current", {}).get("monotasks_per_s", 0.0)
    if floor is not None and rate < floor:
        failures.append(f"monotasks_per_s {rate} fell below the "
                        f"committed floor {floor}")
    if failures:
        print(f"kernel trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"kernel trajectory matches {baseline_path} "
          f"(floor {floor} monotasks/s, measured {rate})")
    return 0


# -- datasvc ------------------------------------------------------------------


def compute_datasvc(repeats: int) -> dict:
    """The seeded fault scenarios, verified byte-stable across repeats."""
    from repro.datasvc.bench import (DataSvcWorkload, run_datasvc_benchmark,
                                     trajectory_summary)
    workload = DataSvcWorkload()
    invariants = run_datasvc_benchmark(workload, repeats=repeats)
    return trajectory_summary(invariants, workload, repeats=repeats)


def check_datasvc(result: dict, baseline_path: str) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for section in ("workload", "invariants"):
        ours = _numbers(section, result.get(section, {}))
        theirs = _numbers(section, baseline.get(section, {}))
        for path in sorted(set(ours) | set(theirs)):
            if ours.get(path) != theirs.get(path):
                failures.append(
                    f"{path}: baseline {theirs.get(path)!r} vs current "
                    f"{ours.get(path)!r} (must match exactly)")
    if failures:
        print(f"datasvc trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"datasvc trajectory matches {baseline_path} (exact)")
    return 0


# -- controlplane -------------------------------------------------------------


def compute_controlplane(repeats: int) -> dict:
    """The seeded multi-driver scenarios, byte-stable across repeats."""
    from repro.controlplane.bench import (ControlPlaneWorkload,
                                          run_controlplane_benchmark,
                                          trajectory_summary)
    workload = ControlPlaneWorkload()
    invariants = run_controlplane_benchmark(workload, repeats=repeats)
    return trajectory_summary(invariants, workload, repeats=repeats)


def check_controlplane(result: dict, baseline_path: str) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for section in ("workload", "invariants"):
        ours = _numbers(section, result.get(section, {}))
        theirs = _numbers(section, baseline.get(section, {}))
        for path in sorted(set(ours) | set(theirs)):
            if ours.get(path) != theirs.get(path):
                failures.append(
                    f"{path}: baseline {theirs.get(path)!r} vs current "
                    f"{ours.get(path)!r} (must match exactly)")
    if failures:
        print(f"controlplane trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"controlplane trajectory matches {baseline_path} (exact)")
    return 0


# -- obs ----------------------------------------------------------------------


def compute_obs(repeats: int) -> dict:
    """The seeded observability scenarios, byte-stable across repeats."""
    from repro.obs.bench import (ObsWorkload, run_obs_benchmark,
                                 trajectory_summary)
    workload = ObsWorkload()
    result = run_obs_benchmark(workload, repeats=repeats)
    return trajectory_summary(result, workload, repeats=repeats)


def check_obs(result: dict, baseline_path: str) -> int:
    """Exact-diff workload + invariants; budget-gate the overhead."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for section in ("workload", "invariants"):
        ours = _numbers(section, result.get(section, {}))
        theirs = _numbers(section, baseline.get(section, {}))
        for path in sorted(set(ours) | set(theirs)):
            if ours.get(path) != theirs.get(path):
                failures.append(
                    f"{path}: baseline {theirs.get(path)!r} vs current "
                    f"{ours.get(path)!r} (must match exactly)")
    slow = result["invariants"]["fail_slow"]
    base_slow = baseline.get("invariants", {}).get("fail_slow", {})
    if slow.get("timeline") != base_slow.get("timeline"):
        failures.append("fail_slow alert timeline drifted (must match "
                        "to the byte)")
    budget = baseline.get("workload", {}).get(
        "overhead_budget_ms_per_sim_s")
    measured = result.get("observed_overhead", {}).get("ms_per_sim_s")
    if budget is not None and measured is not None and measured > budget:
        failures.append(f"self-overhead {measured} ms/sim-s exceeds the "
                        f"committed budget {budget}")
    if failures:
        print(f"obs trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"obs trajectory matches {baseline_path} (exact invariants; "
          f"overhead {measured} of {budget} ms/sim-s budget)")
    return 0


# -- xray ---------------------------------------------------------------------


def compute_xray(repeats: int) -> dict:
    """The seeded capsule/diff scenarios, byte-stable across repeats."""
    from repro.xray.bench import (XrayWorkload, run_xray_benchmark,
                                  trajectory_summary)
    workload = XrayWorkload()
    result = run_xray_benchmark(workload, repeats=repeats)
    return trajectory_summary(result, workload, repeats=repeats)


def check_xray(result: dict, baseline_path: str) -> int:
    """Exact-diff workload + invariants (sha256s included)."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for section in ("workload", "invariants"):
        ours = _flatten(section, result.get(section, {}))
        theirs = _flatten(section, baseline.get(section, {}))
        for path in sorted(set(ours) | set(theirs)):
            if ours.get(path) != theirs.get(path):
                failures.append(
                    f"{path}: baseline {theirs.get(path)!r} vs current "
                    f"{ours.get(path)!r} (must match exactly)")
    if failures:
        print(f"xray trajectory drifted from {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"xray trajectory matches {baseline_path} (exact, "
          f"capsule sha256s included)")
    return 0


def _flatten(prefix: str, value) -> dict:
    """Flatten every leaf (numbers AND strings) to ``path -> value``."""
    out = {}
    if isinstance(value, dict):
        for key in value:
            out.update(_flatten(f"{prefix}.{key}", value[key]))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(_flatten(f"{prefix}[{index}]", item))
    else:
        out[prefix] = value
    return out


# -- driver -------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench",
                        choices=("clarity", "kernel", "datasvc",
                                 "controlplane", "obs", "xray"),
                        default="clarity",
                        help="which trajectory to run (default clarity)")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON summary "
                             "(default BENCH_<bench>.json at the repo root)")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against this committed baseline "
                             "instead of accepting the new result")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="absolute per-field drift allowed under "
                             "--check for the clarity bench (default 0.02)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="kernel bench: repeats per measurement (best "
                             "wall-clock kept); datasvc bench: determinism "
                             "cross-check repeats (default 2)")
    args = parser.parse_args(argv)
    output = args.output or DEFAULT_OUTPUTS[args.bench]

    if args.bench == "datasvc":
        result = compute_datasvc(args.repeats)
        write(result, output)
        mono = result["invariants"]["monospark"]
        print(f"wrote {output}: co-located crash outcomes "
              f"{mono['colocated_crash_outcomes']} vs disaggregated "
              f"{mono['datasvc_crash_outcomes']}")
        if args.check is not None:
            return check_datasvc(result, args.check)
        return 0

    if args.bench == "controlplane":
        result = compute_controlplane(args.repeats)
        write(result, output)
        inv = result["invariants"]
        scaling = inv["driver_scaling"]
        rates = ", ".join(f"{n}={scaling[n]['jobs_per_s']}"
                          for n in sorted(scaling, key=int))
        print(f"wrote {output}: jobs/s by drivers ({rates}); crash with "
              f"failover lost {inv['crash_failover_on']['jobs_lost']} "
              f"(resumed {inv['crash_failover_on']['jobs_resumed']}) vs "
              f"{inv['crash_failover_off']['jobs_lost']} without")
        if args.check is not None:
            return check_controlplane(result, args.check)
        return 0

    if args.bench == "obs":
        result = compute_obs(args.repeats)
        write(result, output)
        slow = result["invariants"]["fail_slow"]
        print(f"wrote {output}: source-slow fired at "
              f"{slow['source_slow_fired_at']}s (fault at "
              f"{result['workload']['slow_at']}s, exclusion at "
              f"{slow['health_excluded_at']}s); overhead "
              f"{result['observed_overhead']['ms_per_sim_s']} ms/sim-s")
        if args.check is not None:
            return check_obs(result, args.check)
        return 0

    if args.bench == "xray":
        result = compute_xray(args.repeats)
        write(result, output)
        blame = result["invariants"]["blame"]
        print(f"wrote {output}: {blame['narrative']}")
        if args.check is not None:
            return check_xray(result, args.check)
        return 0

    if args.bench == "clarity":
        result = compute_clarity()
        write(result, output)
        print(f"wrote {output}: {result['jobs']} jobs, top pick "
              f"{result['advisor_top']}, worst p95 error "
              f"{result['max_error_p95']:.2%}")
        if args.check is not None:
            return check_clarity(result, args.check, args.tolerance)
        return 0

    carry = args.check or DEFAULT_OUTPUTS["kernel"]
    result = compute_kernel(args.repeats, carry)
    write(result, output)
    current = result["current"]
    speedup = result.get("speedup_monotasks")
    print(f"wrote {output}: {result['invariants']['monotasks']} monotasks "
          f"in {current['wall_s']}s wall "
          f"({current['monotasks_per_s']} monotasks/s"
          + (f", {speedup}x over the frozen baseline)" if speedup else ")"))
    if args.check is not None:
        return check_kernel(result, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
