"""Validate trace artifacts: Chrome traces and run capsules (stdlib only).

For Chrome Trace Event Format JSON files, checks the subset of the spec
our exporter emits: JSON object form with a ``traceEvents`` array, known
phase codes, required keys per phase, numeric non-negative
timestamps/durations, paired flow (``s``/``f``) and async (``b``/``e``)
events, and metadata events carrying the args the spec requires.

For run capsules (``repro xray record`` JSONL files, detected by their
``{"type": "capsule", ...}`` header line), checks the envelope every
reader relies on: a known ``schema`` version on every line, known line
types, a header carrying engine/seed/config, and a trailing manifest
whose per-type counts match the body exactly.

Used by the CI trace-smoke job; also handy on any artifact before
loading it into Perfetto or ``repro xray``.

Usage:  python scripts/validate_trace.py ARTIFACT [ARTIFACT2 ...]
Exit status 0 when every file validates, 1 otherwise.
"""

import json
import numbers
import sys

#: Capsule schema versions this validator understands.  Kept in sync
#: with ``repro.xray.capsule.KNOWN_SCHEMAS`` (the script stays
#: stdlib-only so it can run anywhere).
KNOWN_CAPSULE_SCHEMAS = (1,)

#: Line types a capsule may contain (repro.xray.capsule.LINE_TYPES).
CAPSULE_LINE_TYPES = ("capsule", "span", "link", "journal", "serve",
                      "job", "telemetry", "clarity", "summary",
                      "manifest")

#: Phases our exporter emits; anything else is an error.
KNOWN_PHASES = {"X", "M", "s", "f", "b", "e"}

#: Keys every event must carry, beyond phase-specific ones.
COMMON_KEYS = {"name", "ph", "pid"}

METADATA_ARGS = {
    "process_name": "name",
    "thread_name": "name",
    "thread_sort_index": "sort_index",
}


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate_events(events):
    """Yield error strings for one traceEvents array."""
    if not isinstance(events, list):
        yield "traceEvents is not an array"
        return
    if not events:
        yield "traceEvents is empty"
    flow = {"s": {}, "f": {}}
    nestable = {"b": [], "e": []}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            yield f"{where}: not an object"
            continue
        missing = COMMON_KEYS - set(event)
        if missing:
            yield f"{where}: missing keys {sorted(missing)}"
            continue
        ph = event["ph"]
        if ph not in KNOWN_PHASES:
            yield f"{where}: unknown phase {ph!r}"
            continue
        if ph != "M":
            ts = event.get("ts")
            if not _is_number(ts) or ts < 0:
                yield f"{where}: bad ts {ts!r}"
        if ph == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                yield f"{where}: bad dur {dur!r}"
        elif ph == "M":
            name = event["name"]
            wanted = METADATA_ARGS.get(name)
            if wanted is None:
                yield f"{where}: unknown metadata record {name!r}"
            elif wanted not in event.get("args", {}):
                yield f"{where}: metadata {name!r} lacks args.{wanted}"
        elif ph in ("s", "f"):
            if "id" not in event:
                yield f"{where}: flow event without id"
            else:
                flow[ph].setdefault(event["id"], []).append(index)
            if ph == "f" and event.get("bp") not in (None, "e"):
                yield f"{where}: bad binding point {event['bp']!r}"
        elif ph in ("b", "e"):
            if "id" not in event:
                yield f"{where}: async event without id"
            else:
                nestable[ph].append((event.get("cat"), event["id"]))
    for fid in flow["s"]:
        if fid not in flow["f"]:
            yield f"flow id {fid!r} starts but never finishes"
    for fid in flow["f"]:
        if fid not in flow["s"]:
            yield f"flow id {fid!r} finishes but never starts"
    begins, ends = sorted(nestable["b"]), sorted(nestable["e"])
    if begins != ends:
        yield (f"async begin/end mismatch: {len(begins)} begins vs "
               f"{len(ends)} ends")


def validate_capsule_lines(lines):
    """Yield error strings for one capsule's JSONL lines."""
    parsed = []
    for index, raw in enumerate(lines):
        where = f"line {index + 1}"
        try:
            record = json.loads(raw)
        except ValueError as error:
            yield f"{where}: not JSON ({error})"
            return
        if not isinstance(record, dict):
            yield f"{where}: not an object"
            return
        kind = record.get("type")
        if kind not in CAPSULE_LINE_TYPES:
            yield f"{where}: unknown line type {kind!r}"
        schema = record.get("schema")
        if schema is None:
            yield f"{where}: missing schema version"
        elif schema not in KNOWN_CAPSULE_SCHEMAS:
            yield (f"{where}: unknown schema version {schema!r} "
                   f"(known: {list(KNOWN_CAPSULE_SCHEMAS)})")
        parsed.append(record)
    if not parsed:
        yield "empty capsule"
        return
    header, manifest = parsed[0], parsed[-1]
    if header.get("type") != "capsule":
        yield f"first line is {header.get('type')!r}, not the header"
        return
    for key in ("engine", "seed", "config"):
        if key not in header:
            yield f"header lacks {key!r}"
    if manifest.get("type") != "manifest":
        yield f"last line is {manifest.get('type')!r}, not the manifest"
        return
    counts = {}
    for record in parsed[1:-1]:
        kind = record.get("type")
        if kind in ("capsule", "manifest"):
            yield f"body contains a stray {kind!r} line"
            continue
        counts[kind] = counts.get(kind, 0) + 1
    declared = manifest.get("counts")
    if not isinstance(declared, dict):
        yield "manifest lacks a counts object"
    elif {k: int(v) for k, v in declared.items() if v} != counts:
        yield (f"manifest counts {declared} disagree with the body "
               f"{counts}")
    lines_field = manifest.get("lines")
    if lines_field is not None and lines_field != len(parsed):
        yield (f"manifest says {lines_field} lines, file has "
               f"{len(parsed)}")


def validate_file(path):
    """Validate one artifact; returns a list of error strings."""
    try:
        with open(path) as handle:
            first = handle.readline()
    except OSError as error:
        return [f"cannot load {path}: {error}"]
    try:
        sniff = json.loads(first) if first.strip() else None
    except ValueError:
        sniff = None
    if isinstance(sniff, dict) and sniff.get("type") == "capsule":
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        return list(validate_capsule_lines(lines))
    try:
        with open(path) as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot load {path}: {error}"]
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["not the JSON-object trace form (no traceEvents key)"]
    return list(validate_events(trace["traceEvents"]))


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for error in errors:
                print(f"  {error}")
        else:
            with open(path) as handle:
                first = handle.readline()
                if first.strip().startswith("{\"type\": \"capsule\"") or \
                        first.strip().startswith('{"type":"capsule"'):
                    count = sum(1 for line in handle if line.strip()) + 1
                    print(f"ok   {path} (capsule, {count} lines)")
                    continue
            with open(path) as handle:
                count = len(json.load(handle)["traceEvents"])
            print(f"ok   {path} ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
