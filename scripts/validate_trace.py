"""Validate a Chrome Trace Event Format JSON file (stdlib only).

Checks the subset of the Trace Event Format spec our exporter emits:
JSON object form with a ``traceEvents`` array, known phase codes,
required keys per phase, numeric non-negative timestamps/durations,
paired flow (``s``/``f``) and async (``b``/``e``) events, and metadata
events carrying the args the spec requires.  Used by the CI trace-smoke
job; also handy on any trace before loading it into Perfetto.

Usage:  python scripts/validate_trace.py TRACE.json [TRACE2.json ...]
Exit status 0 when every file validates, 1 otherwise.
"""

import json
import numbers
import sys

#: Phases our exporter emits; anything else is an error.
KNOWN_PHASES = {"X", "M", "s", "f", "b", "e"}

#: Keys every event must carry, beyond phase-specific ones.
COMMON_KEYS = {"name", "ph", "pid"}

METADATA_ARGS = {
    "process_name": "name",
    "thread_name": "name",
    "thread_sort_index": "sort_index",
}


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate_events(events):
    """Yield error strings for one traceEvents array."""
    if not isinstance(events, list):
        yield "traceEvents is not an array"
        return
    if not events:
        yield "traceEvents is empty"
    flow = {"s": {}, "f": {}}
    nestable = {"b": [], "e": []}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            yield f"{where}: not an object"
            continue
        missing = COMMON_KEYS - set(event)
        if missing:
            yield f"{where}: missing keys {sorted(missing)}"
            continue
        ph = event["ph"]
        if ph not in KNOWN_PHASES:
            yield f"{where}: unknown phase {ph!r}"
            continue
        if ph != "M":
            ts = event.get("ts")
            if not _is_number(ts) or ts < 0:
                yield f"{where}: bad ts {ts!r}"
        if ph == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                yield f"{where}: bad dur {dur!r}"
        elif ph == "M":
            name = event["name"]
            wanted = METADATA_ARGS.get(name)
            if wanted is None:
                yield f"{where}: unknown metadata record {name!r}"
            elif wanted not in event.get("args", {}):
                yield f"{where}: metadata {name!r} lacks args.{wanted}"
        elif ph in ("s", "f"):
            if "id" not in event:
                yield f"{where}: flow event without id"
            else:
                flow[ph].setdefault(event["id"], []).append(index)
            if ph == "f" and event.get("bp") not in (None, "e"):
                yield f"{where}: bad binding point {event['bp']!r}"
        elif ph in ("b", "e"):
            if "id" not in event:
                yield f"{where}: async event without id"
            else:
                nestable[ph].append((event.get("cat"), event["id"]))
    for fid in flow["s"]:
        if fid not in flow["f"]:
            yield f"flow id {fid!r} starts but never finishes"
    for fid in flow["f"]:
        if fid not in flow["s"]:
            yield f"flow id {fid!r} finishes but never starts"
    begins, ends = sorted(nestable["b"]), sorted(nestable["e"])
    if begins != ends:
        yield (f"async begin/end mismatch: {len(begins)} begins vs "
               f"{len(ends)} ends")


def validate_file(path):
    """Validate one trace file; returns a list of error strings."""
    try:
        with open(path) as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot load {path}: {error}"]
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["not the JSON-object trace form (no traceEvents key)"]
    return list(validate_events(trace["traceEvents"]))


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for error in errors:
                print(f"  {error}")
        else:
            with open(path) as handle:
                count = len(json.load(handle)["traceEvents"])
            print(f"ok   {path} ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
