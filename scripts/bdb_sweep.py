import sys, time
from repro import AnalyticsContext, hdd_cluster
from repro.workloads.bigdata import BdbScale, generate_bdb_tables, run_query, QUERIES
from repro.workloads.scaling import scaled_memory_overrides

frac = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
scale = BdbScale(fraction=frac)
res = {}
t00 = time.time()
for tag, eng, opts in (("spark","spark",{}), ("flush","spark",{"flush_writes":True}), ("mono","monospark",{})):
    cluster = hdd_cluster(num_machines=5, **scaled_memory_overrides(frac))
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine=eng, **opts)
    for q in QUERIES:
        r = run_query(ctx, q, scale)
        res[(tag,q)] = r.duration
print(f"total wall {time.time()-t00:.0f}s")
print(f"{'q':3s} {'spark':>8s} {'flush':>8s} {'mono':>8s} {'m/s':>5s} {'m/f':>5s}")
for q in QUERIES:
    s, f, m = res[("spark",q)], res[("flush",q)], res[("mono",q)]
    print(f"{q:3s} {s:8.1f} {f:8.1f} {m:8.1f} {m/s:5.2f} {m/f:5.2f}")
