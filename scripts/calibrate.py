"""Calibration sweep: check the paper's headline shapes quickly."""
import time
from repro import AnalyticsContext, hdd_cluster, ssd_cluster, GB, MB
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort
from repro.workloads.scaling import scaled_memory_overrides

FRACTION = 0.1  # 600GB -> 60GB

def sort_run(engine, machines=20, disks=2, kind="hdd", total=600*GB*FRACTION,
             values=10, maps=480, **opts):
    cluster = (hdd_cluster if kind == "hdd" else ssd_cluster)(
        num_machines=machines, num_disks=disks,
        **scaled_memory_overrides(FRACTION))
    w = SortWorkload(total_bytes=total, values_per_key=values,
                     num_map_tasks=maps)
    generate_sort_input(cluster, w)
    ctx = AnalyticsContext(cluster, engine=engine, **opts)
    t0 = time.time()
    r = run_sort(ctx, w)
    stages = ctx.metrics.stage_records(r.job_id)
    return r.duration, [round(s.duration,1) for s in stages], time.time()-t0, ctx

for eng in ("spark", "monospark"):
    d, st, wall, _ = sort_run(eng)
    print(f"sort60GB hdd {eng:10s} total={d:7.1f}s stages={st} wall={wall:.0f}s")
