import sys
sys.path.insert(0, "benchmarks")
from repro import AnalyticsContext, GB, MB
from repro.api.ops import OpCost
from repro.datamodel import Partition
from helpers import make_cluster

def convoy_job(round_robin):
    # 1 machine, 1 disk: read 128MB -> compute -> write 128MB, 48 tasks.
    cluster = make_cluster("hdd", 1, 1, fraction=0.05)
    n = 48
    payloads = [Partition(records=[(i,0)], record_count=1.0, data_bytes=128*MB)
                for i in range(n)]
    cluster.dfs.create_file("in", payloads, [128*MB]*n)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           round_robin_phases=round_robin)
    (ctx.text_file("in").map(lambda kv: kv, cost=OpCost(per_record_s=0.9),
                             size_ratio=1.0).save_as_text_file("out"))
    return ctx.last_result.duration

print("convoy  RR:", round(convoy_job(True),1), " FIFO:", round(convoy_job(False),1))

def assign_job(override=None, extra=1):
    # fig8-style read+compute, 5 machines
    cluster = make_cluster("hdd", 5, 2, fraction=0.05)
    n = 200
    payloads = [Partition(records=[(i,0)], record_count=1.0, data_bytes=96*MB)
                for i in range(n)]
    cluster.dfs.create_file("in", payloads, [96*MB]*n)
    opts = {"extra_multitasks": extra}
    if override: opts = {"concurrency_override": override}
    ctx = AnalyticsContext(cluster, engine="monospark", **opts)
    (ctx.text_file("in").map(lambda kv: kv, cost=OpCost(per_record_s=1.5),
                             size_ratio=1.0).count())
    return ctx.last_result.duration

print("assign cores-only:", round(assign_job(8),1),
      " rule:", round(assign_job(),1),
      " no+1:", round(assign_job(extra=0),1),
      " 2x:", round(assign_job(30),1))
