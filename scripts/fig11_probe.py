import sys
sys.path.insert(0, "benchmarks")
from helpers import run_sort_experiment
from repro.model import WhatIf, hardware_profile, predict, profile_job

FRACTION = 0.05
for values in (10, 25, 50):
    ctx1, r1, w = run_sort_experiment("monospark", kind="ssd", disks=1,
                                      fraction=FRACTION, values_per_key=values)
    ctx2, r2, _ = run_sort_experiment("monospark", kind="ssd", disks=2,
                                      fraction=FRACTION, values_per_key=values)
    profiles = profile_job(ctx1.metrics, r1.job_id)
    p = predict(profiles, r1.duration, hardware_profile(ctx1.cluster),
                WhatIf(hardware=hardware_profile(ctx2.cluster)))
    print(f"V={values:3d} 1ssd={r1.duration:6.1f} pred2ssd={p.predicted_s:6.1f} "
          f"actual2ssd={r2.duration:6.1f} err={p.error_vs(r2.duration)*100:5.1f}% "
          f"bottl={[m.bottleneck for m in p.stage_models_old]}")
