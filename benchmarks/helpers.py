"""Shared machinery for the figure/table reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures:
it runs the workload(s) on the simulated cluster, prints a
paper-vs-measured table, persists the table under
``benchmarks/results/``, and asserts the paper's qualitative shape.

Scale: experiments run at a fraction of the paper's data volume
(the simulator is time-accurate but a 600 GB trace is needlessly slow to
emulate); capacities that interact with volume (RAM, buffer cache) are
scaled by the same fraction so bottleneck structure is preserved, and
reported times are the simulated seconds at that fraction.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro import AnalyticsContext, GB
from repro.cluster import Cluster, hdd_cluster, ssd_cluster
from repro.engine.base import JobResult
from repro.metrics.report import format_table
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, title: str, headers: Sequence[str],
         rows: Sequence[Sequence[object]],
         notes: Sequence[str] = ()) -> str:
    """Print and persist one experiment's table."""
    table = format_table(headers, rows, title=title)
    text = table + ("\n" + "\n".join(notes) if notes else "")
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def make_cluster(kind: str, machines: int, disks: int,
                 fraction: float, seed: int = 0) -> Cluster:
    factory = hdd_cluster if kind == "hdd" else ssd_cluster
    return factory(num_machines=machines, num_disks=disks, seed=seed,
                   **scaled_memory_overrides(fraction))


def run_sort_experiment(engine: str, kind: str = "hdd", machines: int = 20,
                        disks: int = 2, total_bytes: float = 600 * GB,
                        fraction: float = 0.05, values_per_key: int = 25,
                        num_map_tasks: int = 480,
                        in_memory_input: bool = False,
                        **engine_options):
    """One paper-style sort run; returns (ctx, JobResult, workload)."""
    cluster = make_cluster(kind, machines, disks, fraction)
    workload = SortWorkload(total_bytes=total_bytes * fraction,
                            values_per_key=values_per_key,
                            num_map_tasks=num_map_tasks)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine=engine, **engine_options)
    input_rdd = None
    if in_memory_input:
        input_rdd = ctx.text_file("sort-input")
        input_rdd.cache()
        input_rdd.count()  # materialize deserialized in memory
    result = run_sort(ctx, workload, input_rdd=input_rdd)
    return ctx, result, workload


def stage_durations(ctx: AnalyticsContext, result: JobResult) -> List[float]:
    records = ctx.metrics.stage_records(result.job_id)
    return [record.duration for record in records]


def once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
