"""Tail latency under a gray failure, with and without health exclusion.

Not a paper figure -- the paper's clusters fail cleanly.  This benchmark
degrades one machine's NIC to a tenth of its bandwidth partway into a
continuous word-count request stream and serves the same trace twice on
MonoSpark: once with the online health monitor (which attributes the
slowness to the sick machine's network and excludes it) and once
without.  The monitor-on run should show materially lower tail latency,
because jobs stop fetching shuffle data through the degraded uplink.
"""

from helpers import emit, make_cluster, once

from repro import AnalyticsContext
from repro.faults import FaultInjector, fail_slow_plan
from repro.health import HealthMonitor, HealthPolicy
from repro.serve import (AdmissionController, JobServer, PoissonArrivals,
                         wordcount_template)

FRACTION = 0.01
MACHINES = 4
SEED = 42
DURATION_S = 600.0
RATE = 0.1            # ~60 arrivals over the horizon
SLO_S = 30.0
DEGRADE_MACHINE = 1
DEGRADE_AT = 30.0
FACTOR = 10.0


def serve_stream(monitor_on):
    cluster = make_cluster("hdd", MACHINES, 2, FRACTION, seed=SEED)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           scheduling_policy="fair")
    plan = fail_slow_plan(machine_id=DEGRADE_MACHINE, at=DEGRADE_AT,
                          factor=FACTOR)
    FaultInjector(ctx.engine, plan).start()
    health = (HealthMonitor(ctx.engine, HealthPolicy())
              if monitor_on else None)
    server = JobServer(ctx,
                       admission=AdmissionController(max_queued_jobs=6),
                       policy="weighted_fair", max_concurrent_jobs=3,
                       seed=SEED, health=health)
    server.add_tenant("interactive", weight=1.0, slo_s=SLO_S)
    server.add_workload(
        "interactive",
        wordcount_template(ctx, num_blocks=8, block_mb=32.0, seed=SEED),
        PoissonArrivals(RATE, horizon_s=DURATION_S))
    report = server.run()
    ctx.engine.env.run()  # drain the monitor's last pending tick
    return ctx, report


def run_all():
    return {label: serve_stream(monitor_on)
            for label, monitor_on in (("monitor on", True),
                                      ("monitor off", False))}


def test_gray_failure_exclusion(benchmark):
    results = once(benchmark, run_all)

    rows = []
    notes = [f"{DURATION_S:.0f}s Poisson word-count stream on monospark, "
             f"machine {DEGRADE_MACHINE} NIC degraded {FACTOR:g}x at "
             f"{DEGRADE_AT:.0f}s (permanent), queue bound 6, "
             f"3 concurrent jobs"]
    for label in ("monitor on", "monitor off"):
        ctx, report = results[label]
        stats = report.tenant("interactive")
        excluded = sorted(ctx.engine.excluded_machines)
        attainment = ("-" if stats.attainment is None
                      else f"{100 * stats.attainment:.1f}%")
        rows.append([
            label, stats.submitted, stats.completed, stats.shed,
            f"{stats.p50_s:.2f}", f"{stats.p95_s:.2f}",
            f"{stats.p99_s:.2f}", attainment,
            ",".join(f"m{m}" for m in excluded) or "-"])
    on_ctx, on_report = results["monitor on"]
    for event in on_ctx.metrics.health_records(kind="exclude"):
        notes.append(f"t={event.at:.1f}s: excluded m{event.machine_id} "
                     f"({event.resource}, rel rate "
                     f"{event.relative_rate:.3f}, {event.detail})")

    emit("gray_failure", "Gray failure: health exclusion on vs off "
         "(monospark)",
         ["run", "jobs", "done", "shed", "p50 (s)", "p95 (s)", "p99 (s)",
          "attained", "excluded"],
         rows, notes=notes)

    off_ctx, off_report = results["monitor off"]
    on_stats = on_report.tenant("interactive")
    off_stats = off_report.tenant("interactive")

    # The monitor found the sick machine and blamed its network.
    excludes = on_ctx.metrics.health_records(kind="exclude",
                                            machine_id=DEGRADE_MACHINE)
    assert excludes, "monitor never excluded the degraded machine"
    assert all(e.resource == "network" for e in excludes)
    assert DEGRADE_MACHINE in on_ctx.engine.excluded_machines
    # Without the monitor nothing is excluded and the tail stays slow.
    assert not off_ctx.engine.excluded_machines
    assert on_stats.p95_s < off_stats.p95_s
    # The report carries the exclusion timeline and attribution.
    assert "Exclusion timeline" in on_report.format()
    assert "Fail-slow attribution" in on_report.format()
