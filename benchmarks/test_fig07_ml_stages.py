"""Figure 7: the machine-learning workload, per stage.

Paper: "MonoSpark provides performance on-par with Spark" for a
least-squares block-coordinate-descent workload on 15 machines with 2
SSDs: CPU-efficient native math, heavy network use, in-memory shuffle
data (no disk at all).
"""

import pytest

from repro.cluster import ssd_cluster
from repro.workloads.ml import MlWorkload, make_ml_context, run_ml_workload

from helpers import emit, once

ITERATIONS = 4


def run_both():
    workload = MlWorkload()
    results = {}
    for engine in ("spark", "monospark"):
        cluster = ssd_cluster(num_machines=15)
        ctx = make_ml_context(cluster, engine, workload)
        iteration_results = run_ml_workload(ctx, iterations=ITERATIONS)
        stage_rows = []
        for result in iteration_results:
            for record in ctx.metrics.stage_records(result.job_id):
                stage_rows.append(record.duration)
        results[engine] = (iteration_results, stage_rows, cluster)
    return results


def test_fig07_ml_stages(benchmark):
    results = once(benchmark, run_both)
    spark_stages = results["spark"][1]
    mono_stages = results["monospark"][1]

    rows = []
    for index, (spark_s, mono_s) in enumerate(
            zip(spark_stages, mono_stages)):
        rows.append([f"stage {index}", f"{spark_s:.2f}", f"{mono_s:.2f}",
                     f"{mono_s / spark_s:.2f}" if spark_s else "-"])
    emit("fig07_ml_stages",
         "Figure 7: least-squares workload per stage (s), 15 x 2 SSD",
         ["stage", "spark", "monospark", "mono/spark"], rows,
         notes=["Paper: MonoSpark provides performance on-par with Spark."])

    # Parity per iteration (sum of its two stages).
    spark_iters = [r.duration for r in results["spark"][0]]
    mono_iters = [r.duration for r in results["monospark"][0]]
    for spark_s, mono_s in zip(spark_iters, mono_iters):
        assert mono_s / spark_s < 1.15
        assert mono_s / spark_s > 0.6

    # The workload never touches disk (in-memory shuffle + cached input).
    for engine in ("spark", "monospark"):
        cluster = results[engine][2]
        assert all(d.bytes_read == 0 and d.bytes_written == 0
                   for m in cluster.machines for d in m.disks)
