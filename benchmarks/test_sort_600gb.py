"""§5.2 "Sort": the 600 GB disk sort on 20 workers with 2 HDDs each.

Paper: "Spark sorts the data in a total of 88 minutes (36 minutes for
the map stage and 52 minutes for the reduce stage), and MonoSpark sorts
the data in 57 minutes (22 minutes for the map stage and 35 minutes for
the reduce stage)" -- MonoSpark is ~35% faster overall because its
per-disk schedulers avoid seek contention (§5.4).
"""

import pytest

from helpers import emit, once, run_sort_experiment, stage_durations

FRACTION = 0.05  # 600 GB -> 30 GB, capacities scaled to match
PAPER = {"spark": (88.0, 36.0, 52.0), "monospark": (57.0, 22.0, 35.0)}


def run_both():
    results = {}
    for engine in ("spark", "monospark"):
        ctx, result, _ = run_sort_experiment(engine, fraction=FRACTION)
        stages = stage_durations(ctx, result)
        # Stage ids: the reduce (result) stage is compiled first.
        reduce_s, map_s = stages
        results[engine] = (result.duration, map_s, reduce_s, ctx)
    return results


def test_sort_600gb(benchmark):
    results = once(benchmark, run_both)

    rows = []
    for engine in ("spark", "monospark"):
        total, map_s, reduce_s, _ = results[engine]
        paper_total, paper_map, paper_reduce = PAPER[engine]
        rows.append([engine, f"{map_s:.1f}", f"{reduce_s:.1f}",
                     f"{total:.1f}", f"{paper_map:.0f} min",
                     f"{paper_reduce:.0f} min", f"{paper_total:.0f} min"])
    ratio = results["monospark"][0] / results["spark"][0]
    emit("sort_600gb",
         f"600 GB sort (fraction {FRACTION}), 20 workers x 2 HDD",
         ["engine", "map (s)", "reduce (s)", "total (s)",
          "paper map", "paper reduce", "paper total"],
         rows,
         notes=[f"mono/spark = {ratio:.2f} (paper: 57/88 = 0.65)"])

    # MonoSpark wins in both stages, as in the paper.
    assert results["monospark"][1] < results["spark"][1]
    assert results["monospark"][2] < results["spark"][2]
    assert 0.5 < ratio < 0.95

    # Mechanism check (§5.4): Spark's fine-grained interleaving seeks
    # far more than MonoSpark's one-monotask-per-disk access.
    spark_ctx = results["spark"][3]
    mono_ctx = results["monospark"][3]
    spark_seeks = sum(d.seeks for m in spark_ctx.cluster.machines
                      for d in m.disks)
    mono_seeks = sum(d.seeks for m in mono_ctx.cluster.machines
                     for d in m.disks)
    assert mono_seeks < spark_seeks / 2
