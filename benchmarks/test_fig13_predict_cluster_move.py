"""Figure 13: predicting a simultaneous hardware *and* software change.

Paper: three 100 GB sort workloads (10/20/50 longs per key) move from a
5-machine HDD cluster reading on-disk input to a 20-machine SSD cluster
with input stored deserialized in memory.  "The monotasks model
correctly predicts the resulting 10x change in runtime with an error of
23% in the worst case."  One acknowledged error source: with 20 machines
only ~5% of input is local vs ~20% on 5 machines, so the real runs send
more data over the network than the model assumes -- we fold that into
the what-if's network-bytes scale as the paper's discussion suggests.
"""

import pytest

from repro import GB
from repro.model import WhatIf, hardware_profile, predict, profile_job

from helpers import emit, once, run_sort_experiment

FRACTION = 0.1
TOTAL_BYTES = 100 * GB
VALUES = (10, 25, 50)
MAP_TASKS = 600  # constant across both clusters, as in the paper
SMALL_MACHINES = 5
BIG_MACHINES = 20


def run_experiment():
    outcomes = {}
    for values in VALUES:
        ctx_small, result_small, _ = run_sort_experiment(
            "monospark", kind="hdd", machines=SMALL_MACHINES, disks=2,
            total_bytes=TOTAL_BYTES, fraction=FRACTION,
            values_per_key=values, num_map_tasks=MAP_TASKS)
        ctx_big, result_big, _ = run_sort_experiment(
            "monospark", kind="ssd", machines=BIG_MACHINES, disks=2,
            total_bytes=TOTAL_BYTES, fraction=FRACTION,
            values_per_key=values, num_map_tasks=MAP_TASKS,
            in_memory_input=True)
        profiles = profile_job(ctx_small.metrics, result_small.job_id)
        # §6.4's acknowledged correction: with 4x the machines, less of
        # each task's shuffle data is machine-local, so more bytes cross
        # the network than were measured on the small cluster.
        locality_scale = ((1 - 1 / BIG_MACHINES)
                          / (1 - 1 / SMALL_MACHINES))
        what_if = WhatIf(hardware=hardware_profile(ctx_big.cluster),
                         input_in_memory_deserialized=True,
                         network_bytes_scale=locality_scale)
        prediction = predict(profiles, result_small.duration,
                             hardware_profile(ctx_small.cluster), what_if)
        outcomes[values] = (result_small.duration, prediction.predicted_s,
                            result_big.duration,
                            prediction.error_vs(result_big.duration))
    return outcomes


def test_fig13_predict_cluster_move(benchmark):
    outcomes = once(benchmark, run_experiment)

    rows = []
    for values in VALUES:
        measured, predicted, actual, error = outcomes[values]
        rows.append([f"{values} longs", f"{measured:.1f}",
                     f"{predicted:.1f}", f"{actual:.1f}",
                     f"{measured / actual:.1f}x",
                     f"{error * 100:.1f}%"])
    emit("fig13_predict_cluster_move",
         "Figure 13: 5 x HDD on-disk -> 20 x SSD in-memory (100 GB sorts)",
         ["workload", "5-HDD measured (s)", "predicted (s)",
          "actual 20-SSD (s)", "speedup", "error"],
         rows,
         notes=["Paper: ~10x speedup predicted within 23% worst case."])

    for values in VALUES:
        measured, _, actual, error = outcomes[values]
        # A large improvement (paper: ~10x; our calibration lands at
        # 5-7x because the scaled sort is less HDD-dominated), predicted
        # within the paper's 23% worst-case error bar.
        assert measured / actual > 4.5
        assert error <= 0.25
