"""Figure 16: attributing resource use across concurrent jobs.

Paper: two sort jobs with different resource profiles (10-value:
CPU-heavy; 50-value: I/O-heavy) run concurrently on Spark.  Estimating
each job's resource use by scaling executor totals by slot share "is
consistently incorrect, sometimes by a factor of two or more ... The
median and 75th percentile error for all resources in both stages of
both jobs is 17% and 68%, respectively, with Spark.  Monotask times can
easily be used to decouple resource use for the same two jobs: with
MonoSpark, the error is consistently less than 1%."
"""

import pytest

from repro import AnalyticsContext, GB
from repro.api.plan import DfsOutput
from repro.metrics.utilization import percentile
from repro.model.sparkmodel import (slot_share_stage_usage,
                                    true_stage_usage)
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort, sort_boundaries,
                                     PARTITION_S_PER_RECORD,
                                     SORT_S_PER_RECORD)
from repro.api.ops import OpCost

from helpers import emit, make_cluster, once

FRACTION = 0.05
TOTAL = 600 * GB * FRACTION / 2  # each job sorts half the paper's volume


def build_sort_plan(ctx, workload, input_name, output_name, name):
    source = ctx.text_file(input_name)
    partitioned = source.map(
        lambda record: record,
        cost=OpCost(per_record_s=PARTITION_S_PER_RECORD), size_ratio=1.0)
    sorted_rdd = partitioned.sort_by_key(
        num_partitions=workload.reduce_tasks,
        boundaries=sort_boundaries(workload),
        cost=OpCost(per_record_s=SORT_S_PER_RECORD))
    return ctx.compile(sorted_rdd, DfsOutput(file_name=output_name),
                       name=name)


def run_concurrent(engine):
    cluster = make_cluster("hdd", machines=20, disks=2, fraction=FRACTION)
    cpu_heavy = SortWorkload(total_bytes=TOTAL, values_per_key=10,
                             num_map_tasks=240)
    io_heavy = SortWorkload(total_bytes=TOTAL, values_per_key=50,
                            num_map_tasks=240)
    generate_sort_input(cluster, cpu_heavy, name="in-10")
    generate_sort_input(cluster, io_heavy, name="in-50")
    ctx = AnalyticsContext(cluster, engine=engine)
    plans = [
        build_sort_plan(ctx, cpu_heavy, "in-10", "out-10", "sort-10"),
        build_sort_plan(ctx, io_heavy, "in-50", "out-50", "sort-50"),
    ]
    results = ctx.run_jobs(plans)
    return ctx, results


def spark_attribution_errors(ctx, results):
    """Slot-share estimate vs per-task ground truth, per stage/resource."""
    errors = []
    for result in results:
        for stage in ctx.metrics.stage_records(result.job_id):
            truth = true_stage_usage(ctx.metrics, result.job_id,
                                     stage.stage_id)
            estimate = slot_share_stage_usage(ctx.metrics, ctx.cluster,
                                              result.job_id, stage.stage_id)
            errors.extend(estimate.relative_errors(truth).values())
    return errors


def monospark_attribution_errors(ctx, results):
    """Monotask self-reports vs simulator hardware ground truth.

    MonoSpark *measures* per-job use directly from monotask reports; we
    validate them against what the hardware actually served during the
    run (cluster-wide, both jobs together).
    """
    reported_disk = sum(m.nbytes for m in ctx.metrics.monotasks
                        if m.resource == "disk")
    served_disk = sum(d.bytes_read + d.bytes_written
                      for machine in ctx.cluster.machines
                      for d in machine.disks)
    reported_net = sum(m.nbytes for m in ctx.metrics.monotasks
                       if m.resource == "network")
    served_net = ctx.cluster.network.bytes_transferred
    return [abs(reported_disk - served_disk) / served_disk,
            abs(reported_net - served_net) / served_net]


def run_experiment():
    spark_ctx, spark_results = run_concurrent("spark")
    spark_errors = spark_attribution_errors(spark_ctx, spark_results)
    mono_ctx, mono_results = run_concurrent("monospark")
    mono_errors = monospark_attribution_errors(mono_ctx, mono_results)
    return spark_errors, mono_errors


def test_fig16_concurrent_attribution(benchmark):
    spark_errors, mono_errors = once(benchmark, run_experiment)

    spark_median = percentile(spark_errors, 50)
    spark_p75 = percentile(spark_errors, 75)
    mono_max = max(mono_errors)
    emit("fig16_concurrent_attribution",
         "Figure 16: per-job resource attribution error, concurrent sorts",
         ["system", "median error", "p75 error", "max error"],
         [["spark (slot-share)", f"{spark_median * 100:.0f}%",
           f"{spark_p75 * 100:.0f}%",
           f"{max(spark_errors) * 100:.0f}%"],
          ["monospark (monotask reports)", f"{mono_max * 100:.2f}%",
           f"{mono_max * 100:.2f}%", f"{mono_max * 100:.2f}%"]],
         notes=["Paper: Spark median 17%, p75 68%; MonoSpark < 1%."])

    # Slot-share attribution misassigns resources between the two jobs.
    assert spark_median > 0.08
    assert spark_p75 > 0.2
    # Monotask self-reports match the hardware's ground truth.
    assert mono_max < 0.01
