"""Ablation: round-robin phase queues (§3.3 "Queueing monotasks").

The paper's scenario: multitasks made of a disk read, a compute, and a
disk write, with both CPU and disk heavily used.  Without round-robin
between the phase queues, bursts of disk writes trap the reads that feed
the CPU -- "this cycle ... harms utilization because it prevents CPU and
disk from being used concurrently".  The effect needs the CPU to be a
co-bottleneck, so the ablation uses a core-starved worker.
"""

import pytest

from repro import AnalyticsContext, MB
from repro.api.ops import OpCost
from repro.cluster import Cluster
from repro.config import HDD, MachineSpec
from repro.datamodel import Partition

from helpers import emit, once

TASKS = 48
COMPUTE_S = 4.0
CORES = 2


def run_with(round_robin):
    cluster = Cluster(1, MachineSpec(cores=CORES, disks=(HDD,)))
    payloads = [Partition(records=[(i, 0)], record_count=1.0,
                          data_bytes=128 * MB) for i in range(TASKS)]
    cluster.dfs.create_file("in", payloads, [128 * MB] * TASKS)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           round_robin_phases=round_robin)
    (ctx.text_file("in")
        .map(lambda kv: kv, cost=OpCost(per_record_s=COMPUTE_S),
             size_ratio=1.0)
        .save_as_text_file("out"))
    return ctx.last_result.duration


def run_experiment():
    return {"round-robin": run_with(True), "fifo": run_with(False)}


def test_ablation_phase_queues(benchmark):
    results = once(benchmark, run_experiment)
    ratio = results["fifo"] / results["round-robin"]
    emit("ablation_phase_queues",
         "Ablation: disk-queue policy (read-compute-write convoy, "
         f"{CORES}-core worker)",
         ["policy", "runtime (s)"],
         [["round-robin over phases", f"{results['round-robin']:.1f}"],
          ["single FIFO queue", f"{results['fifo']:.1f}"]],
         notes=[f"fifo/round-robin = {ratio:.2f}; §3.3 predicts the FIFO",
                "queue lets write convoys starve the reads that feed the",
                "CPU."])
    # Round-robin keeps CPU and disk concurrently busy; FIFO pays for
    # the convoys.
    assert results["round-robin"] < results["fifo"]
