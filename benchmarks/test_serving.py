"""Tail latency under continuous multi-tenant load, on both engines.

Not a paper figure -- the paper measures batch jobs one at a time.  This
benchmark runs the same open-loop two-tenant request stream (an
interactive word-count tenant with a latency SLO plus a CPU-bound batch
ML tenant) against Spark and MonoSpark, with a machine crashing and
restarting mid-stream, and reports per-tenant p50/p95/p99 latency, the
queueing-delay vs service-time split, shed counts, and SLO attainment.
The clarity contrast: the MonoSpark report attributes each tenant's
queueing to a specific resource; the Spark report cannot.
"""

from helpers import emit, make_cluster, once

from repro import AnalyticsContext
from repro.faults import FaultInjector, FaultPlan, MachineCrash
from repro.serve import (AdmissionController, JobServer, PoissonArrivals,
                         ml_template, wordcount_template)

FRACTION = 0.01
MACHINES = 4
SEED = 42
DURATION_S = 600.0
INTERACTIVE_RATE = 0.1   # ~60 arrivals over the horizon
BATCH_RATE = 0.03        # ~18 arrivals
SLO_S = 30.0
CRASH_AT = 150.0
RESTART_AFTER = 60.0


def serve_stream(engine):
    cluster = make_cluster("hdd", MACHINES, 2, FRACTION, seed=SEED)
    ctx = AnalyticsContext(cluster, engine=engine,
                           scheduling_policy="fair")
    plan = FaultPlan([MachineCrash(at=CRASH_AT, machine_id=1,
                                   restart_after=RESTART_AFTER)])
    FaultInjector(ctx.engine, plan).start()

    server = JobServer(ctx,
                       admission=AdmissionController(max_queued_jobs=6),
                       policy="weighted_fair", max_concurrent_jobs=3,
                       seed=SEED)
    server.add_tenant("interactive", weight=2.0, slo_s=SLO_S)
    server.add_tenant("batch", weight=1.0)
    server.add_workload(
        "interactive",
        wordcount_template(ctx, num_blocks=8, block_mb=32.0, seed=SEED),
        PoissonArrivals(INTERACTIVE_RATE, horizon_s=DURATION_S))
    server.add_workload(
        "batch",
        ml_template(ctx, num_partitions=MACHINES, seed=SEED),
        PoissonArrivals(BATCH_RATE, horizon_s=DURATION_S))
    report = server.run()
    return ctx, report


def run_all():
    return {engine: serve_stream(engine)
            for engine in ("spark", "monospark")}


def test_serving_tail_latency(benchmark):
    results = once(benchmark, run_all)

    rows = []
    notes = [f"{DURATION_S:.0f}s Poisson stream, crash machine 1 at "
             f"{CRASH_AT:.0f}s (restart {RESTART_AFTER:.0f}s later), "
             f"weighted fair 2:1, queue bound 6, 3 concurrent jobs"]
    for engine in ("spark", "monospark"):
        _, report = results[engine]
        for stats in report.stats:
            attainment = ("-" if stats.attainment is None
                          else f"{100 * stats.attainment:.1f}%")
            rows.append([
                engine, stats.tenant, stats.submitted, stats.completed,
                stats.shed, f"{stats.p50_s:.2f}", f"{stats.p95_s:.2f}",
                f"{stats.p99_s:.2f}", f"{stats.mean_queue_delay_s:.2f}",
                f"{stats.mean_service_s:.2f}", attainment])
        if report.queue_attribution:
            for tenant, by_resource in sorted(
                    report.queue_attribution.items()):
                split = ", ".join(f"{res} {by_resource[res]:.1f}s"
                                  for res in ("cpu", "disk", "network"))
                notes.append(f"{engine} queueing attribution "
                             f"[{tenant}]: {split}")
        else:
            notes.append(f"{engine}: queueing attribution unavailable "
                         f"(no monotask records)")
    emit("serving",
         f"two-tenant serving under a mid-stream crash, {MACHINES} "
         f"workers x 2 HDD",
         ["engine", "tenant", "jobs", "done", "shed", "p50 (s)",
          "p95 (s)", "p99 (s)", "queue (s)", "service (s)", "SLO"],
         rows, notes=notes)

    for engine in ("spark", "monospark"):
        ctx, report = results[engine]
        # A real stream: >= 50 requests across >= 2 tenants, all
        # accounted for (completed + failed + shed).
        submitted = sum(s.submitted for s in report.stats)
        assert submitted >= 50
        assert len(report.stats) == 2
        for stats in report.stats:
            assert stats.completed > 0
            assert stats.p99_s >= stats.p50_s > 0
        # The crash fired and the machine came back.
        assert [f.kind for f in ctx.metrics.faults] == \
            ["machine-crash", "machine-restart"]
        # No leaked events after the stream drains.
        env = ctx.cluster.env
        env.run()
        assert env.queue_size == 0

    # The clarity contrast, as data: only MonoSpark attributes queueing
    # to resources.
    _, spark_report = results["spark"]
    _, mono_report = results["monospark"]
    assert not spark_report.queue_attribution
    assert mono_report.queue_attribution
    assert any(v > 0 for by_resource in
               mono_report.queue_attribution.values()
               for v in by_resource.values())
