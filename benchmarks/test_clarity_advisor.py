"""Capacity-advisor validation against ground-truth re-simulation.

Not a paper figure, but the paper's §6.2 methodology applied online: a
seeded serving stream runs with the clarity pipeline attached, the
advisor ranks three hardware what-ifs (add a disk, HDD -> SSD, doubled
network) by predicted p95 service time, and each candidate cluster is
then actually rebuilt and the identical stream replayed.  The advisor
passes if its ranking matches the re-simulated ranking and every
relative p95 prediction error stays inside the paper's 30% worst-case
envelope.
"""

from helpers import emit, once

from repro.clarity.validate import (ClarityWorkload, ERROR_ENVELOPE,
                                    validate_advisor)

WORKLOAD = ClarityWorkload()


def test_clarity_advisor_validation(benchmark):
    result = once(benchmark, lambda: validate_advisor(WORKLOAD))

    rows = []
    for outcome in result.outcomes:
        rows.append([
            outcome.name,
            f"{outcome.predicted_p50_s:.2f}", f"{outcome.actual_p50_s:.2f}",
            f"{outcome.predicted_p95_s:.2f}", f"{outcome.actual_p95_s:.2f}",
            f"{100 * outcome.error_p95:.1f}%"])
    dominant = result.bottleneck.dominant
    notes = [
        f"{result.jobs} jobs served (seed {result.seed}), baseline "
        f"p50 {result.baseline_p50_s:.2f}s / p95 {result.baseline_p95_s:.2f}s",
        f"window bottleneck: {dominant[0]} ({100 * dominant[1]:.1f}% of "
        f"critical-path seconds)",
        f"predicted ranking: {' < '.join(result.predicted_ranking)}",
        f"actual ranking:    {' < '.join(result.actual_ranking)}",
        f"ranking matches re-simulation: {result.ranking_matches}; "
        f"worst p95 error {100 * result.max_error_p95:.1f}% "
        f"(envelope {100 * ERROR_ENVELOPE:.0f}%)",
    ]
    emit("clarity_advisor",
         f"capacity advisor vs ground truth, {WORKLOAD.machines} workers "
         f"x {WORKLOAD.disks} HDD",
         ["candidate", "pred p50", "actual p50", "pred p95", "actual p95",
          "p95 err"],
         rows, notes=notes)

    assert result.jobs >= 3
    assert len(result.outcomes) >= 3
    # The acceptance criteria: ranking matches and errors inside the
    # paper's envelope.
    assert result.ranking_matches
    assert result.max_error_p95 <= ERROR_ENVELOPE
    # The stream is disk-bound by construction, and the advisor's top
    # pick must be a disk candidate.
    assert dominant[0].startswith("disk")
    assert result.advisor.top.name in ("hdd-to-ssd", "add-disk")
