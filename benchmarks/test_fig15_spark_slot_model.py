"""Figure 15: the slot-based model cannot predict hardware changes.

Paper: applying the monotasks methodology to Spark's only scheduling
dimension -- slots -- fails: "Spark sets the number of slots to be equal
to the number of CPU cores, so changing the number of disk drives does
not change the number of slots.  As a result, this model is inaccurate:
it does not account for the slowdown that occurs when queries become
disk bound."  (Scaling slots 8 -> 4 instead would predict 2x for every
query, wrong for all CPU-bound ones.)
"""

import pytest

from repro import AnalyticsContext
from repro.model import slot_model_prediction
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25


def run_bdb_spark(disks):
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=disks,
                           fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine="spark")
    return {query: run_query(ctx, query, scale).duration
            for query in QUERIES}


def run_experiment():
    two_disk = run_bdb_spark(disks=2)
    one_disk = run_bdb_spark(disks=1)
    return two_disk, one_disk


def test_fig15_spark_slot_model(benchmark):
    two_disk, one_disk = once(benchmark, run_experiment)

    rows = []
    slot_errors = {}
    for query in QUERIES:
        # Slots (= cores) don't change with the disk count, so the slot
        # model predicts exactly the 2-disk runtime.
        predicted = slot_model_prediction(two_disk[query], 8, 8)
        actual = one_disk[query]
        slot_errors[query] = abs(predicted - actual) / actual
        halves = slot_model_prediction(two_disk[query], 8, 4)
        rows.append([query, f"{two_disk[query]:.1f}", f"{predicted:.1f}",
                     f"{halves:.1f}", f"{actual:.1f}",
                     f"{slot_errors[query] * 100:.0f}%"])
    emit("fig15_spark_slot_model",
         "Figure 15: slot-model predictions for 2 HDD -> 1 HDD (Spark)",
         ["query", "2-disk (s)", "slot model (=no change)",
          "slot model (4 slots)", "actual 1-disk (s)", "error"],
         rows,
         notes=["Paper: the slot model cannot express a disk-count change",
                "at all; it mispredicts every disk-sensitive query."])

    # Some queries really do slow down when a disk is removed...
    disk_sensitive = [q for q in QUERIES
                      if one_disk[q] > two_disk[q] * 1.2]
    assert disk_sensitive, "expected at least one disk-sensitive query"
    # ...and the slot model misses all of them.
    for query in disk_sensitive:
        assert slot_errors[query] > 0.15
