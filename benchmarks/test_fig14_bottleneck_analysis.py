"""Figure 14: bottleneck analysis from monotask runtimes.

Paper: replicates the NSDI'15 blocked-time analysis "with monotasks, the
necessary instrumentation ... is built into the framework's execution
model".  Findings to match: "for the big data benchmark, CPU is the
bottleneck for most queries, improving disk speed could reduce runtime
of some queries, and improving network speed has little effect."
"""

import pytest

from repro import AnalyticsContext
from repro.metrics.events import CPU, DISK, NETWORK
from repro.model import analyze_bottlenecks, hardware_profile, profile_job
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25


def run_experiment():
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=2, fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine="monospark")
    reports = {}
    for query in QUERIES:
        result = run_query(ctx, query, scale)
        profiles = profile_job(ctx.metrics, result.job_id)
        reports[query] = analyze_bottlenecks(
            profiles, result.duration, hardware_profile(cluster))
    return reports


def test_fig14_bottleneck_analysis(benchmark):
    reports = once(benchmark, run_experiment)

    rows = []
    for query in QUERIES:
        report = reports[query]
        rows.append([
            query, f"{report.measured_s:.1f}",
            f"{report.predicted_runtime_without(DISK):.1f}",
            f"{report.predicted_runtime_without(NETWORK):.1f}",
            f"{report.predicted_runtime_without(CPU):.1f}",
            report.job_bottleneck,
        ])
    emit("fig14_bottleneck_analysis",
         "Figure 14: runtime with an infinitely fast resource (BDB)",
         ["query", "measured (s)", "no disk (s)", "no network (s)",
          "no CPU (s)", "bottleneck"],
         rows,
         notes=["Paper findings: CPU bottlenecks most queries; faster disk",
                "helps some; faster network has little effect."])

    bottlenecks = [reports[q].job_bottleneck for q in QUERIES]
    # CPU is the bottleneck for most queries...
    assert bottlenecks.count(CPU) >= 6
    # ...network optimization has little effect for nearly every query...
    small_network_gain = sum(
        1 for q in QUERIES
        if reports[q].speedup_fraction(NETWORK) < 0.15)
    assert small_network_gain >= 8
    # ...and disk optimization helps at least one query noticeably
    # (query 1c, whose write-through output is disk-bound).
    assert any(reports[q].speedup_fraction(DISK) > 0.10 for q in QUERIES)
