"""Figure 18: MonoSpark auto-configures task concurrency (§7).

Paper: three sort jobs (single long / 25 longs / 100 longs per key) run
under Spark with 2/4/8/16/(32) tasks per machine and under MonoSpark.
"The best Spark configuration differs across workloads ... MonoSpark
automatically uses the ideal amount of concurrency for each resource,
and as a result, performs at least as well as the best Spark
configuration for all workloads.  In some cases, MonoSpark performs as
much as 30% better."
"""

import pytest

from repro import GB, AnalyticsContext
from repro.autoconf import sweep_spark_concurrency
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort

from helpers import emit, make_cluster, once

FRACTION = 0.03
SLOT_OPTIONS = (2, 4, 8, 16, 32)
VALUES = (1, 25, 100)


def run_workload_sweep(values):
    # Plenty of task waves: MonoSpark needs them for its coarse-grained
    # pipelining (§5.3), and the paper's workloads had them by default.
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=values, num_map_tasks=480)

    def make_cluster_with_input():
        cluster = make_cluster("hdd", machines=20, disks=2,
                               fraction=FRACTION)
        generate_sort_input(cluster, workload)
        return cluster

    def run(ctx):
        return run_sort(ctx, workload)

    return sweep_spark_concurrency(make_cluster_with_input, run,
                                   slot_options=SLOT_OPTIONS)


def run_experiment():
    return {values: run_workload_sweep(values) for values in VALUES}


def test_fig18_autoconfiguration(benchmark):
    sweeps = once(benchmark, run_experiment)

    rows = []
    for values in VALUES:
        sweep = sweeps[values]
        row = [f"{values} longs"]
        row.extend(f"{sweep.spark_seconds[slots]:.1f}"
                   for slots in SLOT_OPTIONS)
        row.append(f"{sweep.monospark_seconds:.1f}")
        row.append(f"slots={sweep.best_spark_slots}")
        rows.append(row)
    emit("fig18_autoconfiguration",
         "Figure 18: sort runtime (s) vs Spark tasks/machine; MonoSpark "
         "self-configures",
         ["workload"] + [f"spark{slots}" for slots in SLOT_OPTIONS]
         + ["monospark", "best spark"],
         rows,
         notes=["Paper: MonoSpark performs at least as well as the best",
                "Spark configuration for all three jobs (up to 30% better)."])

    for values in VALUES:
        sweep = sweeps[values]
        # MonoSpark matches or beats the best hand-tuned Spark...
        assert sweep.monospark_vs_best_spark <= 1.05, (
            f"{values} longs: mono {sweep.monospark_seconds:.1f} vs best "
            f"spark {sweep.best_spark:.1f}")
        # ...and badly-tuned Spark configurations really are bad.
        assert sweep.worst_spark > sweep.best_spark * 1.15
