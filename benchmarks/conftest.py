"""Benchmark session configuration.

Benchmarks print paper-vs-measured tables; run with ``-s`` to see them
live.  Every table is also persisted under ``benchmarks/results/``.
"""

import sys
import os

# Make `helpers` importable from every benchmark module regardless of
# the rootdir pytest was invoked from.
sys.path.insert(0, os.path.dirname(__file__))
