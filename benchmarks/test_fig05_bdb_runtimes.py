"""Figure 5: Big Data Benchmark runtimes, Spark vs. MonoSpark.

Paper: "For all queries except 1c, MonoSpark is at most 5% slower and as
much as 21% faster than Spark.  Query 1c takes 55% longer with
MonoSpark" because Spark leaves its output in the OS buffer cache while
MonoSpark writes through; when Spark is configured to flush writes, 1c
is "only 9% slower".

Setup: scale factor 5 (fraction-scaled), 5 workers, 2 HDDs each,
compressed sequence files -- the paper's configuration.
"""

import pytest

from repro import AnalyticsContext
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25
CONFIGS = (
    ("spark", "spark", {}),
    ("spark-flushed", "spark", {"flush_writes": True}),
    ("monospark", "monospark", {}),
)


def run_all_queries():
    scale = BdbScale(fraction=FRACTION)
    results = {}
    for tag, engine, options in CONFIGS:
        cluster = make_cluster("hdd", machines=5, disks=2,
                               fraction=FRACTION)
        generate_bdb_tables(cluster, scale)
        ctx = AnalyticsContext(cluster, engine=engine, **options)
        for query in QUERIES:
            results[(tag, query)] = run_query(ctx, query, scale).duration
    return results


def test_fig05_bdb_runtimes(benchmark):
    results = once(benchmark, run_all_queries)

    rows = []
    for query in QUERIES:
        spark = results[("spark", query)]
        flushed = results[("spark-flushed", query)]
        mono = results[("monospark", query)]
        rows.append([query, f"{spark:.1f}", f"{flushed:.1f}",
                     f"{mono:.1f}", f"{mono / spark:.2f}",
                     f"{mono / flushed:.2f}"])
    emit("fig05_bdb_runtimes",
         "Figure 5: BDB query runtimes (s), 5 workers x 2 HDD, "
         f"scale fraction {FRACTION}",
         ["query", "spark", "spark-flushed", "monospark",
          "mono/spark", "mono/flushed"],
         rows,
         notes=[
             "Paper: mono within -21%..+5% of Spark for all queries except",
             "1c (+55% vs default Spark; +9% vs write-through Spark).",
             "Known deviation: our flushed-Spark 1c pays an un-warmed read",
             "path, so mono beats it (see EXPERIMENTS.md).",
         ])

    for query in QUERIES:
        ratio = results[("monospark", query)] / results[("spark", query)]
        if query == "1c":
            # The write-through penalty: mono must be clearly slower.
            assert ratio > 1.1, f"1c should penalize MonoSpark: {ratio:.2f}"
        else:
            assert ratio < 1.15, f"{query}: mono too slow ({ratio:.2f})"
            assert ratio > 0.5, f"{query}: mono implausibly fast ({ratio:.2f})"
    # Forcing Spark to write through closes most of the 1c gap.
    assert (results[("spark-flushed", "1c")]
            > results[("spark", "1c")] * 1.2)
