"""Figure 8: sensitivity to the number of tasks (waves of multitasks).

Paper: a job that reads input and computes on it, on 20 workers (160
cores).  "When the number of tasks is equal to the number of cores ...
MonoSpark is slower than Spark, but as the number of tasks increases,
MonoSpark can do as well as Spark by pipelining at the granularity of
monotasks" -- parity from roughly three waves.
"""

import pytest

from repro import AnalyticsContext, GB
from repro.api.ops import OpCost
from repro.datamodel import Partition

from helpers import emit, make_cluster, once

MACHINES = 20
CORES = MACHINES * 8
TASK_COUNTS = (CORES, 2 * CORES, 3 * CORES, 6 * CORES, 12 * CORES)
TOTAL_BYTES = 40 * GB
TOTAL_CPU_S = 800.0  # compute-heavy, as the Fig 8 shape requires


def run_once(engine, num_tasks):
    cluster = make_cluster("hdd", MACHINES, 2, fraction=0.1)
    block_bytes = TOTAL_BYTES / num_tasks
    payloads = [Partition(records=[(i, 0)], record_count=1.0,
                          data_bytes=block_bytes)
                for i in range(num_tasks)]
    cluster.dfs.create_file("input", payloads, [block_bytes] * num_tasks)
    ctx = AnalyticsContext(cluster, engine=engine)
    per_task_cpu = TOTAL_CPU_S / num_tasks
    (ctx.text_file("input")
        .map(lambda kv: kv, cost=OpCost(per_record_s=per_task_cpu),
             size_ratio=1.0)
        .count())
    return ctx.last_result.duration


def run_sweep():
    return {(engine, tasks): run_once(engine, tasks)
            for engine in ("spark", "monospark")
            for tasks in TASK_COUNTS}


def test_fig08_task_granularity(benchmark):
    results = once(benchmark, run_sweep)

    rows = []
    for tasks in TASK_COUNTS:
        spark = results[("spark", tasks)]
        mono = results[("monospark", tasks)]
        rows.append([tasks, f"{tasks // CORES}", f"{spark:.1f}",
                     f"{mono:.1f}", f"{mono / spark:.2f}"])
    emit("fig08_task_granularity",
         "Figure 8: runtime vs number of tasks, 20 workers (160 cores)",
         ["tasks", "waves", "spark (s)", "monospark (s)", "mono/spark"],
         rows,
         notes=["Paper: Spark faster at 1-2 waves; parity by ~3 waves."])

    one_wave = results[("monospark", CORES)] / results[("spark", CORES)]
    assert one_wave > 1.1, f"one wave should favor Spark: {one_wave:.2f}"
    for tasks in TASK_COUNTS[2:]:
        ratio = results[("monospark", tasks)] / results[("spark", tasks)]
        assert ratio < 1.1, f"{tasks} tasks: no parity ({ratio:.2f})"
    # MonoSpark improves monotonically-ish as waves increase.
    mono_series = [results[("monospark", tasks)] for tasks in TASK_COUNTS]
    assert mono_series[0] > min(mono_series[2:])
