"""Ablation: flash-scheduler concurrency (§3.3 "Disk scheduler").

Paper: "Flash drives ... can provide higher throughput when multiple
operations are outstanding.  The flash scheduler exposes a configuration
parameter ... For the flash drives we used, we found that using four
outstanding monotasks achieved nearly the maximum throughput."
"""

import pytest

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05
OUTSTANDING = (1, 2, 4, 8)


def run_experiment():
    results = {}
    for outstanding in OUTSTANDING:
        ctx, result, _ = run_sort_experiment(
            "monospark", kind="ssd", disks=2, fraction=FRACTION,
            values_per_key=50, ssd_outstanding=outstanding)
        results[outstanding] = result.duration
    return results


def test_ablation_ssd_concurrency(benchmark):
    results = once(benchmark, run_experiment)
    best = min(results.values())
    rows = [[n, f"{seconds:.1f}", f"{seconds / best:.2f}"]
            for n, seconds in sorted(results.items())]
    emit("ablation_ssd_concurrency",
         "Ablation: outstanding monotasks per SSD (disk-heavy sort)",
         ["outstanding", "runtime (s)", "vs best"], rows,
         notes=["Paper: four outstanding monotasks reach near-maximum",
                "flash throughput."])
    # One outstanding monotask cannot saturate the flash device...
    assert results[1] > results[4] * 1.2
    # ...four captures most of the available gain (our SSD model still
    # rewards deeper queues slightly via better phase overlap)...
    assert results[4] <= best * 1.2
    # ...with clearly diminishing returns after two.
    gain_1_to_2 = results[1] - results[2]
    gain_4_to_8 = results[4] - results[8]
    assert gain_1_to_2 > gain_4_to_8
