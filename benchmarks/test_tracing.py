"""Tracing cost and critical-path attribution on a shuffle workload.

Not a paper figure -- the acceptance gate for the `repro.trace`
subsystem.  Runs the paper's sort (scaled down) on both engines with
span tracing on and reports, per engine, how many spans/links/trace
events the run recorded on top of the existing metric records
(the "overhead" of tracing is bookkeeping volume; simulated time is
unchanged by construction), plus the critical-path verdict:

* MonoSpark's segments decompose the job's wall clock by resource and
  sum to it exactly;
* Spark's path is a single blended-task resource -- not attributable.

The table is a deterministic function of the seed, so a rerun must
reproduce it byte-for-byte (asserted below by running twice).
"""

from helpers import emit, once, run_sort_experiment

from repro.metrics.chrometrace import trace_events
from repro.trace import critical_path

FRACTION = 0.01
MACHINES = 4
MAP_TASKS = 32


def run_engine(engine):
    ctx, result, _ = run_sort_experiment(
        engine, machines=MACHINES, disks=2, fraction=FRACTION,
        num_map_tasks=MAP_TASKS)
    return ctx, result


def summarize(engine, ctx, result):
    metrics = ctx.metrics
    job_id = result.job_id
    spans = metrics.spans_for_job(job_id)
    links = metrics.links_for_job(job_id)
    events = trace_events(metrics, job_id=job_id)
    report = critical_path(metrics, job_id, engine=engine)
    records = (len(metrics.monotasks) + len(metrics.tasks)
               + len(metrics.attempts) + len(metrics.transfers)
               + len(metrics.stages) + len(metrics.jobs))
    if report.attributable:
        top = sorted(report.fractions().items(),
                     key=lambda item: (-item[1], item[0]))[:2]
        verdict = "  ".join(f"{label} {100 * share:.1f}%"
                            for label, share in top)
    else:
        verdict = "not attributable (blended tasks)"
    residual = abs(report.total_attributed - report.duration)
    row = [engine, records, len(spans), len(links), len(events),
           len(report.segments), f"{result.duration:.2f}",
           f"{residual:.1e}", verdict]
    return row, report


def run_all():
    out = {}
    for engine in ("monospark", "spark"):
        ctx, result = run_engine(engine)
        out[engine] = summarize(engine, ctx, result)
    return out


def test_tracing_attribution(benchmark):
    results = once(benchmark, run_all)

    rows = [results[engine][0] for engine in ("monospark", "spark")]
    notes = [f"sort at fraction {FRACTION} on {MACHINES}x2 HDD, "
             f"{MAP_TASKS} map tasks; residual = |sum(segments) - "
             f"wall-clock|, exact by construction on monospark",
             "records = pre-existing metric records; tracing adds the "
             "span/link columns on top without changing simulated time"]
    text = emit(
        "tracing",
        "Causal tracing: span volume and critical-path attribution",
        ["engine", "records", "spans", "links", "trace events",
         "segments", "job (s)", "residual (s)", "critical path"],
        rows, notes=notes)

    mono = results["monospark"][1]
    spark = results["spark"][1]
    assert mono.attributable
    assert abs(mono.total_attributed - mono.duration) < 1e-9
    assert len(mono.by_label()) >= 3  # cpu/disk/queue/network decompose
    assert not spark.attributable
    assert set(spark.by_label()) <= {"task", "driver"}

    # Byte stability: the same seed must reproduce the table exactly.
    again = run_all()
    rows_again = [again[engine][0] for engine in ("monospark", "spark")]
    assert rows_again == rows, "tracing benchmark is not deterministic"
    assert text  # persisted under benchmarks/results/tracing.txt
