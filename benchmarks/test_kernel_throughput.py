"""Kernel-throughput benchmark: simulated monotasks/sec, observed.

Runs the seeded serving stream from ``repro.kernelbench`` -- the
MonoSpark engine with the full always-on clarity/telemetry pipeline
attached -- and checks it against the committed ``BENCH_kernel.json``:
the deterministic workload invariants must match exactly (same seed =>
identical counts on any machine), and the measured throughput must
clear the committed conservative floor.  The committed file also keeps
the frozen pre-optimization baseline, so the emitted table shows the
speedup trajectory.
"""

import json
import os

from helpers import emit, once

from repro.kernelbench import KernelWorkload, run_kernel_benchmark

BASELINE_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_kernel.json")

WORKLOAD = KernelWorkload()


def test_kernel_throughput(benchmark):
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)

    result = once(benchmark,
                  lambda: run_kernel_benchmark(WORKLOAD, repeats=2))
    frozen = committed.get("baseline", {})
    speedup = (result.monotasks_per_s / frozen["monotasks_per_s"]
               if frozen.get("monotasks_per_s") else float("nan"))

    rows = [
        ["pre-optimization (frozen)", frozen.get("wall_s", "-"),
         frozen.get("monotasks_per_s", "-"),
         frozen.get("events_per_s", "-"), "1.0x"],
        ["this run", f"{result.wall_s:.3f}",
         f"{result.monotasks_per_s:.1f}", f"{result.events_per_s:.1f}",
         f"{speedup:.2f}x"],
    ]
    notes = [
        f"{result.jobs} jobs / {result.monotasks} monotasks / "
        f"{result.events_scheduled} kernel events in "
        f"{result.sim_time_s:.0f} simulated seconds (seed "
        f"{WORKLOAD.seed}), telemetry sampled every "
        f"{WORKLOAD.telemetry_interval_s:.0f}s",
        f"committed CI floor: {committed['min_monotasks_per_s']} "
        f"monotasks/s",
    ]
    emit("kernel_throughput",
         f"kernel throughput, {WORKLOAD.machines} workers x "
         f"{WORKLOAD.disks} HDD, observed serving stream",
         ["kernel", "wall s", "monotasks/s", "events/s", "speedup"],
         rows, notes=notes)

    # Deterministic invariants: exact match against the committed file.
    assert result.invariants() == committed["invariants"]
    assert WORKLOAD.params() == committed["workload"]
    # Throughput: conservative floor only (wall-clock is machine-bound).
    assert result.monotasks_per_s >= committed["min_monotasks_per_s"]
