"""§6.3: predicting the benefit of in-memory, deserialized input.

Paper: for a job that sorts on-disk data, the model predicted the
runtime with input stored deserialized in memory as 38.0 s (from a
measured 48.5 s); the actual runtime was 36.7 s -- a 4% error.  The
prediction requires subtracting input-read disk time *and* input
deserialization CPU time, which only monotasks can report separately
("Deserialization time cannot be measured in Spark because of
record-level pipelining").
"""

import pytest

from repro.model import WhatIf, hardware_profile, predict, profile_job

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05


def run_experiment():
    ctx_disk, result_disk, _ = run_sort_experiment(
        "monospark", fraction=FRACTION, values_per_key=10)
    ctx_mem, result_mem, _ = run_sort_experiment(
        "monospark", fraction=FRACTION, values_per_key=10,
        in_memory_input=True)
    profiles = profile_job(ctx_disk.metrics, result_disk.job_id)
    prediction = predict(profiles, result_disk.duration,
                         hardware_profile(ctx_disk.cluster),
                         WhatIf(input_in_memory_deserialized=True))
    return (result_disk.duration, prediction.predicted_s,
            result_mem.duration, prediction.error_vs(result_mem.duration),
            profiles)


def test_sec63_predict_inmemory(benchmark):
    measured, predicted, actual, error, profiles = once(
        benchmark, run_experiment)

    emit("sec63_predict_inmemory",
         "Sec 6.3: predict in-memory deserialized input (sort)",
         ["on-disk measured (s)", "predicted in-memory (s)",
          "actual in-memory (s)", "error"],
         [[f"{measured:.1f}", f"{predicted:.1f}", f"{actual:.1f}",
           f"{error * 100:.1f}%"]],
         notes=["Paper: measured 48.5 s, predicted 38.0 s, actual 36.7 s",
                "(4% error)."])

    # The prediction must capture a real improvement...
    assert predicted < measured
    assert actual < measured
    # ...accurately (paper: 4%; allow simulator slack).
    assert error <= 0.15
    # Only the input-reading (map) stage contributed deserialization
    # savings -- the quantity Spark cannot measure at all.
    map_stage = next(p for p in profiles if p.reads_dfs_input)
    assert map_stage.input_deserialize_s > 0
