"""Figure 12: predicting the effect of removing one of two disks.

Paper: for the Big Data Benchmark, "the monotasks model correctly
predicts that most queries change little from eliminating a disk: the
predictions for all queries except query 3c are within 9% of the actual
runtime", with 3c overestimated by 28% (its balanced on-disk shuffle
stage achieves higher utilization once the disk becomes the clear
bottleneck).
"""

import pytest

from repro import AnalyticsContext
from repro.model import WhatIf, hardware_profile, predict, profile_job
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25


def run_bdb(disks):
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=disks,
                           fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine="monospark")
    results = {}
    for query in QUERIES:
        results[query] = run_query(ctx, query, scale)
    return ctx, results


def run_experiment():
    ctx2, results2 = run_bdb(disks=2)
    ctx1, results1 = run_bdb(disks=1)
    hw2 = hardware_profile(ctx2.cluster)
    hw1 = hardware_profile(ctx1.cluster)
    outcomes = {}
    for query in QUERIES:
        measured = results2[query].duration
        profiles = profile_job(ctx2.metrics, results2[query].job_id)
        prediction = predict(profiles, measured, hw2, WhatIf(hardware=hw1))
        actual = results1[query].duration
        outcomes[query] = (measured, prediction.predicted_s, actual,
                           prediction.error_vs(actual))
    return outcomes


def test_fig12_predict_1_disk(benchmark):
    outcomes = once(benchmark, run_experiment)

    rows = []
    for query in QUERIES:
        measured, predicted, actual, error = outcomes[query]
        rows.append([query, f"{measured:.1f}", f"{predicted:.1f}",
                     f"{actual:.1f}", f"{error * 100:.1f}%"])
    emit("fig12_predict_1_disk",
         "Figure 12: predict 2 HDD -> 1 HDD per machine (BDB, MonoSpark)",
         ["query", "2-disk measured (s)", "predicted 1-disk (s)",
          "actual 1-disk (s)", "error"],
         rows,
         notes=["Paper: all queries within 9% except 3c (28% over).",
                "The paper's error bar for all what-if questions is 28%."])

    errors = {q: outcomes[q][3] for q in QUERIES}
    # The paper's overall bound: every prediction within 28%.
    for query, error in errors.items():
        assert error <= 0.28, f"{query}: error {error:.2f}"
    # And most queries are predicted much more tightly.
    within_12 = sum(1 for error in errors.values() if error <= 0.12)
    assert within_12 >= 7
