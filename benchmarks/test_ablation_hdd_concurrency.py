"""Ablation: why one monotask per spinning disk (§3.3).

Paper: "The hard disk scheduler runs one monotask per disk, because
running multiple concurrent monotasks reduces throughput due to seek
time."  Letting the mono disk scheduler admit several concurrent
monotasks reintroduces exactly the interleaving MonoSpark exists to
avoid.
"""

import pytest

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05
OUTSTANDING = (1, 2, 4, 8)


def run_experiment():
    results = {}
    for outstanding in OUTSTANDING:
        ctx, result, _ = run_sort_experiment(
            "monospark", kind="hdd", fraction=FRACTION, machines=5,
            values_per_key=50, hdd_outstanding=outstanding)
        results[outstanding] = result.duration
    return results


def test_ablation_hdd_concurrency(benchmark):
    results = once(benchmark, run_experiment)
    rows = [[n, f"{seconds:.1f}", f"{seconds / results[1]:.2f}"]
            for n, seconds in sorted(results.items())]
    emit("ablation_hdd_concurrency",
         "Ablation: outstanding monotasks per HDD (disk-heavy sort)",
         ["outstanding", "runtime (s)", "vs 1"], rows,
         notes=["Paper: one monotask per disk; concurrency reduces HDD",
                "throughput due to seek time."])
    # One per disk is the best configuration...
    assert results[1] == min(results.values())
    # ...and heavy concurrency measurably hurts.
    assert results[8] > results[1] * 1.1
