"""Sort under a mid-job machine crash: recovery in both engines.

Not a paper figure -- the paper inherits Spark's fault-tolerance story
("like Spark, MonoSpark re-executes tasks to recover from failures",
§4) and never measures it.  This benchmark exercises that inherited
story: one worker dies partway through the sort and restarts later;
both engines must finish via retries and lineage re-execution, at a
bounded overhead over the fault-free run.
"""

from helpers import emit, make_cluster, once

from repro import GB, AnalyticsContext
from repro.faults import FaultInjector, FaultPlan, MachineCrash
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort)

FRACTION = 0.01
MACHINES = 8
NUM_TASKS = 64
CRASH_MACHINE = 1
RESTART_AFTER = 15.0


def run_engine(engine, plan=None):
    cluster = make_cluster("hdd", MACHINES, 2, FRACTION)
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=25, num_map_tasks=NUM_TASKS)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine=engine)
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    result = run_sort(ctx, workload)
    return ctx, result


def run_all():
    results = {}
    for engine in ("spark", "monospark"):
        _, baseline = run_engine(engine)
        crash_at = baseline.duration * 0.35
        plan = FaultPlan([MachineCrash(at=crash_at,
                                       machine_id=CRASH_MACHINE,
                                       restart_after=RESTART_AFTER)])
        ctx, crashed = run_engine(engine, plan)
        results[engine] = (baseline, crashed, ctx)
    return results


def test_sort_survives_machine_crash(benchmark):
    results = once(benchmark, run_all)

    rows = []
    for engine in ("spark", "monospark"):
        baseline, crashed, ctx = results[engine]
        outcomes = ctx.metrics.attempt_outcome_counts(crashed.job_id)
        retries = ctx.metrics.retry_count(crashed.job_id)
        rows.append([engine, f"{baseline.duration:.1f}",
                     f"{crashed.duration:.1f}",
                     f"{crashed.duration / baseline.duration:.2f}x",
                     outcomes.get("killed", 0),
                     outcomes.get("fetch-failed", 0), retries])
    emit("fault_recovery",
         f"600 GB sort (fraction {FRACTION}) with a mid-job crash, "
         f"{MACHINES} workers x 2 HDD",
         ["engine", "fault-free (s)", "crashed (s)", "overhead",
          "killed", "fetch-failed", "retries"],
         rows,
         notes=[f"machine {CRASH_MACHINE} dies at 35% of the fault-free "
                f"runtime, restarts {RESTART_AFTER:.0f}s later"])

    for engine in ("spark", "monospark"):
        baseline, crashed, ctx = results[engine]
        # Recovery happened (the crash killed work / lost map output) ...
        assert ctx.metrics.retry_count(crashed.job_id) > 0
        assert [f.kind for f in ctx.metrics.faults] == \
            ["machine-crash", "machine-restart"]
        # ... the job finished, slower than fault-free but not unboundedly
        # (losing 1/8 of the cluster for a while should not triple time).
        assert crashed.duration > baseline.duration
        assert crashed.duration < baseline.duration * 3.0
        # ... and a churn-heavy run leaks nothing into the event queue.
        env = ctx.cluster.env
        env.run()
        assert env.queue_size == 0
