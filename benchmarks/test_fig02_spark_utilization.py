"""Figure 2: Spark's resource utilization is non-uniform.

Paper: "the resource utilization oscillates between being bottlenecked
on CPU and being bottlenecked on one of the disks, as a result of
fine-grained changes in each task's resource usage" -- observed over a
30-second window with 8 concurrent tasks on one machine.
"""

import pytest

from repro.metrics.utilization import sample_utilization

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05


def run_spark_sort():
    ctx, result, _ = run_sort_experiment("spark", machines=20,
                                         fraction=FRACTION)
    return ctx, result


def test_fig02_spark_utilization(benchmark):
    ctx, result = once(benchmark, run_spark_sort)
    machine = ctx.cluster.machine(0)
    # Sample a window in the middle of the job, like the paper's plot.
    start = result.start + result.duration * 0.2
    end = result.start + result.duration * 0.8
    step = (end - start) / 30
    cpu = sample_utilization(machine.cpu.tracker, start, end, step)
    disk0 = sample_utilization(machine.disks[0].tracker, start, end, step)

    rows = []
    bottleneck_flips = 0
    previous = None
    for (t, cpu_util), (_, disk_util) in zip(cpu, disk0):
        leader = "cpu" if cpu_util >= disk_util else "disk"
        if previous is not None and leader != previous:
            bottleneck_flips += 1
        previous = leader
        rows.append([f"{t - result.start:.1f}", f"{cpu_util:.2f}",
                     f"{disk_util:.2f}", leader])
    emit("fig02_spark_utilization",
         "Figure 2: Spark utilization oscillation (machine 0, sort)",
         ["t (s)", "cpu util", "disk0 util", "leader"], rows,
         notes=[f"bottleneck flipped {bottleneck_flips} times in 30 samples",
                "Paper: utilization oscillates between CPU and disk."])

    cpu_values = [u for _, u in cpu]
    disk_values = [u for _, u in disk0]
    # Non-uniform: utilization swings substantially within the window...
    assert max(cpu_values) - min(cpu_values) > 0.25
    assert max(disk_values) - min(disk_values) > 0.25
    # ...and the bottleneck actually alternates.
    assert bottleneck_flips >= 2
