"""Ablation: the multitask assignment rule (§3.4).

Paper: assign "enough multitasks that all resources can have the maximum
allowed number of concurrent monotasks running, plus one additional
monotask" -- for 8 cores + 2 HDDs + network limit 4 that is 15.
Assigning only as many multitasks as cores (Spark's default) leaves the
CPU idle whenever tasks are in their I/O phases; over-assignment is
harmless because the per-resource schedulers queue the excess.
"""

import pytest

from repro import AnalyticsContext, MB
from repro.api.ops import OpCost
from repro.datamodel import Partition

from helpers import emit, make_cluster, once

TASKS = 200
BLOCK_MB = 96
COMPUTE_S = 4.0
CONFIGS = {
    "cores only (8)": {"concurrency_override": 8},
    "rule without +1 (14)": {"extra_multitasks": 0},
    "rule (15)": {},
    "2x rule (30)": {"concurrency_override": 30},
}


def run_with(**options):
    cluster = make_cluster("hdd", 5, 2, fraction=0.05)
    payloads = [Partition(records=[(i, 0)], record_count=1.0,
                          data_bytes=BLOCK_MB * MB) for i in range(TASKS)]
    cluster.dfs.create_file("in", payloads, [BLOCK_MB * MB] * TASKS)
    ctx = AnalyticsContext(cluster, engine="monospark", **options)
    (ctx.text_file("in")
        .map(lambda kv: kv, cost=OpCost(per_record_s=COMPUTE_S),
             size_ratio=1.0)
        .count())
    return ctx.last_result.duration


def run_experiment():
    return {label: run_with(**options)
            for label, options in CONFIGS.items()}


def test_ablation_assignment(benchmark):
    results = once(benchmark, run_experiment)
    best = min(results.values())
    rows = [[label, f"{seconds:.1f}", f"{seconds / best:.2f}"]
            for label, seconds in results.items()]
    emit("ablation_assignment",
         "Ablation: multitasks assigned concurrently per machine "
         "(read+compute job)",
         ["assignment", "runtime (s)", "vs best"], rows,
         notes=["Paper's rule: max concurrent monotasks + 1 (= 15 here)."])
    # The rule is near-optimal...
    assert results["rule (15)"] <= best * 1.05
    # ...while a slot-per-core assignment starves the CPU during I/O.
    assert results["cores only (8)"] > results["rule (15)"] * 1.05
    # Over-assignment is safe: queues absorb it without harming runtime.
    assert results["2x rule (30)"] <= results["rule (15)"] * 1.1
