"""Ablation: multi-tenant task scheduling (§8 "Multitask scheduling").

Paper: the multitask scheduler "could be used to implement more
sophisticated policies, e.g., to share machines between different
users."  Implemented as ``scheduling_policy="fair"``: a small job
arriving behind a large tenant is served round-robin instead of waiting
out the backlog, at negligible cost to the large job.
"""

import pytest

from repro import AnalyticsContext, GB
from repro.api.plan import DfsOutput
from repro.api.ops import OpCost
from repro.workloads.sortgen import (PARTITION_S_PER_RECORD,
                                     SORT_S_PER_RECORD, SortWorkload,
                                     generate_sort_input, sort_boundaries)

from helpers import emit, make_cluster, once

FRACTION = 0.02


def build_sort_plan(ctx, workload, input_name, output_name, name):
    sorted_rdd = (ctx.text_file(input_name)
                  .map(lambda record: record,
                       cost=OpCost(per_record_s=PARTITION_S_PER_RECORD),
                       size_ratio=1.0)
                  .sort_by_key(num_partitions=workload.reduce_tasks,
                               boundaries=sort_boundaries(workload),
                               cost=OpCost(per_record_s=SORT_S_PER_RECORD)))
    return ctx.compile(sorted_rdd, DfsOutput(file_name=output_name),
                       name=name)


def run_with(policy):
    cluster = make_cluster("hdd", 5, 2, fraction=FRACTION)
    big = SortWorkload(total_bytes=480 * GB * FRACTION,
                       values_per_key=25, num_map_tasks=240)
    small = SortWorkload(total_bytes=48 * GB * FRACTION,
                         values_per_key=25, num_map_tasks=24)
    generate_sort_input(cluster, big, name="big-in", seed=1)
    generate_sort_input(cluster, small, name="small-in", seed=2)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           scheduling_policy=policy)
    plans = [build_sort_plan(ctx, big, "big-in", "big-out", "big"),
             build_sort_plan(ctx, small, "small-in", "small-out", "small")]
    results = ctx.run_jobs(plans)
    return results[0].duration, results[1].duration


def run_experiment():
    return {policy: run_with(policy) for policy in ("fifo", "fair")}


def test_ablation_fair_scheduling(benchmark):
    results = once(benchmark, run_experiment)
    rows = [[policy, f"{big:.1f}", f"{small:.1f}"]
            for policy, (big, small) in results.items()]
    small_gain = results["fifo"][1] / results["fair"][1]
    big_cost = results["fair"][0] / results["fifo"][0]
    emit("ablation_fair_scheduling",
         "Ablation: multi-tenant scheduling (10x job behind a small one)",
         ["policy", "big job (s)", "small job (s)"], rows,
         notes=[f"fair speeds the small tenant {small_gain:.1f}x while "
                f"costing the big one {100 * (big_cost - 1):.0f}%."])
    # The small tenant benefits substantially...
    assert small_gain > 1.5
    # ...without meaningfully hurting the big one.
    assert big_cost < 1.1
