"""Ablation: load-aware disk write placement (§8 "Disk scheduling").

Paper: "The disk monotask scheduler currently balances requests across
available disks, independent of load.  A better strategy would consider
the load on each disk in deciding which disk should write data; for
example, writing to the disk with the shorter queue."  Both policies are
implemented; under skewed read load (all input blocks on one disk), the
shortest-queue policy routes writes to the idle disk.
"""

import pytest

from repro import AnalyticsContext, MB
from repro.datamodel import Partition

from helpers import emit, make_cluster, once

TASKS = 32
BLOCK_MB = 96


def run_with(policy):
    cluster = make_cluster("hdd", 1, 2, fraction=0.05)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=BLOCK_MB * MB)
                for i in range(TASKS)]
    dfs_file = cluster.dfs.create_file("in", payloads,
                                       [BLOCK_MB * MB] * TASKS)
    for block in dfs_file.blocks:
        block.replicas = [(0, 0)]  # all reads hammer disk 0
    ctx = AnalyticsContext(cluster, engine="monospark",
                           write_disk_policy=policy)
    ctx.text_file("in").save_as_text_file("out")
    machine = cluster.machine(0)
    skew = (machine.disks[0].bytes_written
            / max(1.0, sum(d.bytes_written for d in machine.disks)))
    return ctx.last_result.duration, skew


def run_experiment():
    return {policy: run_with(policy)
            for policy in ("round_robin", "shortest_queue")}


def test_ablation_write_policy(benchmark):
    results = once(benchmark, run_experiment)
    rows = [[policy, f"{seconds:.1f}", f"{skew * 100:.0f}%"]
            for policy, (seconds, skew) in results.items()]
    emit("ablation_write_policy",
         "Ablation: write placement under skewed read load (all input "
         "on disk 0)",
         ["policy", "runtime (s)", "writes on loaded disk"], rows,
         notes=["Paper §8: writing to the disk with the shorter queue is",
                "the suggested improvement over load-unaware balancing."])
    rr_seconds, rr_skew = results["round_robin"]
    sq_seconds, sq_skew = results["shortest_queue"]
    # The load-aware policy steers writes away from the loaded disk...
    assert sq_skew < rr_skew - 0.1
    # ...and never loses on runtime (usually wins).
    assert sq_seconds <= rr_seconds * 1.01
