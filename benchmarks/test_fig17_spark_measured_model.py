"""Figure 17: the model fed with measured Spark resource usage.

Paper: even granting Spark per-stage resource totals measured in
isolation (impossible to attribute when jobs share the cluster, Fig 16),
feeding them into the monotasks model mispredicts the 1-disk runtimes:
"a Spark-based model has an error of 20-30% for most queries", because
contention changes Spark's *effective* resource throughput and
deserialization time cannot be separated.  The same scenario predicted
from MonoSpark's own monotask reports (Figure 12) is much tighter.
"""

import pytest

from repro import AnalyticsContext
from repro.model import (WhatIf, hardware_profile, predict, profile_job,
                         spark_stage_profiles)
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25


def run_bdb(engine, disks):
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=disks,
                           fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine=engine)
    return ctx, {query: run_query(ctx, query, scale) for query in QUERIES}


def run_experiment():
    spark2_ctx, spark2 = run_bdb("spark", disks=2)
    spark1_ctx, spark1 = run_bdb("spark", disks=1)
    mono2_ctx, mono2 = run_bdb("monospark", disks=2)
    mono1_ctx, mono1 = run_bdb("monospark", disks=1)

    hw2 = hardware_profile(spark2_ctx.cluster)
    hw1 = hardware_profile(spark1_ctx.cluster)
    outcomes = {}
    for query in QUERIES:
        spark_profiles = spark_stage_profiles(spark2_ctx.metrics,
                                              spark2[query].job_id)
        spark_prediction = predict(spark_profiles, spark2[query].duration,
                                   hw2, WhatIf(hardware=hw1))
        spark_error = spark_prediction.error_vs(spark1[query].duration)

        mono_profiles = profile_job(mono2_ctx.metrics, mono2[query].job_id)
        mono_prediction = predict(mono_profiles, mono2[query].duration,
                                  hw2, WhatIf(hardware=hw1))
        mono_error = mono_prediction.error_vs(mono1[query].duration)
        outcomes[query] = (spark_prediction.predicted_s,
                           spark1[query].duration, spark_error, mono_error)
    return outcomes


def test_fig17_spark_measured_model(benchmark):
    outcomes = once(benchmark, run_experiment)

    rows = []
    for query in QUERIES:
        predicted, actual, spark_error, mono_error = outcomes[query]
        rows.append([query, f"{predicted:.1f}", f"{actual:.1f}",
                     f"{spark_error * 100:.0f}%",
                     f"{mono_error * 100:.0f}%"])
    emit("fig17_spark_measured_model",
         "Figure 17: measured-usage Spark model vs MonoSpark model "
         "(predict 1 disk)",
         ["query", "spark-model predicted (s)", "actual 1-disk (s)",
          "spark-model error", "mono-model error (Fig 12)"],
         rows,
         notes=["Paper: Spark-based model errs 20-30% for most queries,",
                "and underestimates the 1-disk slowdown."])

    spark_errors = [outcomes[q][2] for q in QUERIES]
    mono_errors = [outcomes[q][3] for q in QUERIES]
    # The Spark-based model is clearly worse overall.
    assert sum(spark_errors) > 1.5 * sum(mono_errors)
    # And for at least a few queries it misses badly.
    assert sum(1 for e in spark_errors if e > 0.15) >= 3
