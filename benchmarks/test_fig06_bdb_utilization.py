"""Figure 6: utilization of the two most-utilized resources (BDB).

Paper: "First, multiple resources were well-utilized during most stages.
Second, MonoSpark utilized resources as well as or better than Spark."
The figure shows 25/50/75th-percentile boxes (5th/95th whiskers) of the
bottleneck and second-most-utilized resource over the benchmark's
stages.
"""

import pytest

from repro import AnalyticsContext
from repro.metrics.utilization import machine_utilization, percentile
from repro.workloads.bigdata import BdbScale, QUERIES, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25
#: Ignore near-instant stages (ramp effects dominate them).
MIN_STAGE_SECONDS = 2.0


def collect_utilizations(engine):
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=2, fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine=engine)
    best, second = [], []
    for query in QUERIES:
        result = run_query(ctx, query, scale)
        for stage in ctx.metrics.stage_records(result.job_id):
            if stage.duration < MIN_STAGE_SECONDS:
                continue
            for machine in cluster.machines:
                summary = machine_utilization(machine, stage.start,
                                              stage.end)
                ranked = summary.ranked()
                best.append(ranked[0][1])
                second.append(ranked[1][1])
    return best, second


def run_experiment():
    return {engine: collect_utilizations(engine)
            for engine in ("spark", "monospark")}


def test_fig06_bdb_utilization(benchmark):
    results = once(benchmark, run_experiment)

    rows = []
    stats = {}
    for engine, (best, second) in results.items():
        for label, values in (("bottleneck", best), ("second", second)):
            stats[(engine, label)] = percentile(values, 50)
            rows.append([engine, label,
                         f"{percentile(values, 5):.2f}",
                         f"{percentile(values, 25):.2f}",
                         f"{percentile(values, 50):.2f}",
                         f"{percentile(values, 75):.2f}",
                         f"{percentile(values, 95):.2f}"])
    emit("fig06_bdb_utilization",
         "Figure 6: utilization of top-2 resources over BDB stages "
         "(per machine x stage)",
         ["engine", "resource", "p5", "p25", "p50", "p75", "p95"], rows,
         notes=["Paper: multiple resources well-utilized in most stages;",
                "MonoSpark utilizes resources as well as or better than",
                "Spark."])

    # The bottleneck resource is highly utilized in the median stage...
    assert stats[("monospark", "bottleneck")] > 0.8
    # ...a second resource does real work too...
    assert stats[("monospark", "second")] > 0.3
    # ...and MonoSpark's bottleneck utilization >= Spark's.
    assert (stats[("monospark", "bottleneck")]
            >= stats[("spark", "bottleneck")] - 0.02)
