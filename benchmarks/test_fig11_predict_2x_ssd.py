"""Figure 11: predicting the runtime with twice as many SSDs.

Paper: sort 600 GB with values of 10/20/50 longs on 20 machines with one
SSD each; use the monotask runtimes to predict the runtime with two SSDs
per worker.  "With only 10 values ... the workload is CPU-bound, so the
model predicts no change ... the error is the largest (9%) ... For the
other two workloads, the model predicts the correct runtime within a 5%
error."
"""

import pytest

from repro.model import WhatIf, hardware_profile, predict, profile_job

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05
VALUES = (10, 25, 50)
PAPER_MAX_ERROR = {10: 0.09, 25: 0.05, 50: 0.05}


def run_experiment():
    outcomes = {}
    for values in VALUES:
        ctx1, result1, _ = run_sort_experiment(
            "monospark", kind="ssd", disks=1, fraction=FRACTION,
            values_per_key=values)
        ctx2, result2, _ = run_sort_experiment(
            "monospark", kind="ssd", disks=2, fraction=FRACTION,
            values_per_key=values)
        profiles = profile_job(ctx1.metrics, result1.job_id)
        prediction = predict(profiles, result1.duration,
                             hardware_profile(ctx1.cluster),
                             WhatIf(hardware=hardware_profile(ctx2.cluster)))
        outcomes[values] = (result1.duration, prediction.predicted_s,
                            result2.duration,
                            prediction.error_vs(result2.duration))
    return outcomes


def test_fig11_predict_2x_ssd(benchmark):
    outcomes = once(benchmark, run_experiment)

    rows = []
    for values in VALUES:
        measured, predicted, actual, error = outcomes[values]
        rows.append([f"{values} longs", f"{measured:.1f}",
                     f"{predicted:.1f}", f"{actual:.1f}",
                     f"{error * 100:.1f}%",
                     f"{PAPER_MAX_ERROR[values] * 100:.0f}%"])
    emit("fig11_predict_2x_ssd",
         "Figure 11: predict 1 SSD -> 2 SSDs per worker (20 machines)",
         ["workload", "1-SSD measured (s)", "predicted 2-SSD (s)",
          "actual 2-SSD (s)", "error", "paper error"],
         rows)

    for values in VALUES:
        _, _, _, error = outcomes[values]
        assert error <= 0.15, f"{values} longs: error {error:.2f}"
    # The CPU-bound 10-longs workload barely benefits from a second SSD;
    # the disk-heavier 50-longs workload clearly does.
    cpu_bound_gain = outcomes[10][0] / outcomes[10][2]
    disk_bound_gain = outcomes[50][0] / outcomes[50][2]
    assert disk_bound_gain > cpu_bound_gain
