"""Figure 9: utilization during the map stage of BDB query 2c.

Paper: "the per-resource schedulers in MonoSpark keep the bottleneck
resource, CPU, fully utilized: the average utilization is over 92% for
all machines.  With Spark ... tasks bottleneck on the disk while CPU
cores are unused, leading to lower utilization of the CPU (75-83%
across all machines)".
"""

import pytest

from repro import AnalyticsContext
from repro.metrics.utilization import machine_utilization
from repro.workloads.bigdata import BdbScale, generate_bdb_tables, run_query

from helpers import emit, make_cluster, once

FRACTION = 0.25


def run_query_2c(engine):
    scale = BdbScale(fraction=FRACTION)
    cluster = make_cluster("hdd", machines=5, disks=2, fraction=FRACTION)
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine=engine)
    result = run_query(ctx, "2c", scale)
    # The map stage is the one that reads the uservisits table.
    map_stage = next(s for s in ctx.metrics.stage_records(result.job_id)
                     if "DfsFileRDD" in s.name)
    per_machine = [
        machine_utilization(machine, map_stage.start, map_stage.end)
        for machine in cluster.machines
    ]
    return per_machine


def run_both():
    return {engine: run_query_2c(engine)
            for engine in ("spark", "monospark")}


def test_fig09_query2c_utilization(benchmark):
    results = once(benchmark, run_both)

    rows = []
    cpu_means = {}
    for engine, summaries in results.items():
        cpu = [s.cpu for s in summaries]
        disk = [max(s.disks) for s in summaries]
        cpu_means[engine] = sum(cpu) / len(cpu)
        rows.append([engine, f"{min(cpu):.2f}", f"{cpu_means[engine]:.2f}",
                     f"{max(cpu):.2f}", f"{sum(disk) / len(disk):.2f}"])
    emit("fig09_query2c_utilization",
         "Figure 9: query 2c map stage utilization across 5 machines",
         ["engine", "cpu min", "cpu mean", "cpu max", "disk mean"], rows,
         notes=["Paper: MonoSpark keeps CPU (the bottleneck) >92% busy on",
                "all machines; Spark reaches only 75-83%."])

    # MonoSpark keeps the bottleneck (CPU) essentially fully utilized.
    assert all(s.cpu > 0.88 for s in results["monospark"])
    # Spark's fine-grained pipelining leaves CPU partly idle.
    assert cpu_means["spark"] < cpu_means["monospark"] - 0.05
    assert cpu_means["spark"] < 0.9
