"""Ablation: the network scheduler's outstanding-multitask limit (§3.3).

Paper: "we limit the number of outstanding requests to those coming from
four multitasks, based on an experimental parameter sweep."  One
multitask at a time under-utilizes the receiving link (a single slow
remote disk stalls it); too many destroys the coarse-grained pipelining
between fetch and compute.
"""

import pytest

from helpers import emit, once, run_sort_experiment

FRACTION = 0.05
LIMITS = (1, 2, 4, 8, 16)


def run_experiment():
    results = {}
    for limit in LIMITS:
        ctx, result, _ = run_sort_experiment(
            "monospark", fraction=FRACTION, machines=20,
            network_limit=limit)
        results[limit] = result.duration
    return results


def test_ablation_network_limit(benchmark):
    results = once(benchmark, run_experiment)
    best = min(results.values())
    rows = [[limit, f"{seconds:.1f}", f"{seconds / best:.2f}"]
            for limit, seconds in sorted(results.items())]
    emit("ablation_network_limit",
         "Ablation: receiver outstanding-multitask limit (sort, 20 "
         "machines)",
         ["limit", "runtime (s)", "vs best"], rows,
         notes=["Paper picked 4 from a parameter sweep."])
    # The paper's choice of 4 is within a few percent of the sweep's best.
    assert results[4] <= best * 1.1
    # A limit of 1 under-utilizes the receiving link.
    assert results[1] >= results[4]
