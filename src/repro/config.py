"""Hardware specifications and software cost models.

All the constants that determine *simulated time* live here, so that an
experiment can change hardware (disk count, HDD vs. SSD, network speed,
cluster size) or software behaviour (compression, write-through, slot
counts) by constructing new spec objects rather than editing engine code.

The default values are calibrated to the paper's EC2 setup: m2.4xlarge-
and i2.2xlarge-class machines with 8 vCPUs, ~60 GB of memory, two HDDs or
one/two SSDs, and a ~1 Gbps network.  The CPU-side costs reflect Spark
1.3's (in)efficiency, which the paper is explicit about inheriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError

__all__ = [
    "DiskSpec",
    "HDD",
    "SSD",
    "MachineSpec",
    "CostModel",
    "M2_4XLARGE",
    "I2_2XLARGE",
    "KB",
    "MB",
    "GB",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DiskSpec:
    """A physical disk model.

    ``seek_time_s`` is charged whenever the head switches between request
    streams (or starts a new request); ``throughput_bps`` is the
    sequential transfer rate; ``max_concurrency`` is how many requests the
    device can service concurrently without losing throughput (1 for a
    spinning disk, >1 for flash).
    """

    kind: str
    throughput_bps: float
    seek_time_s: float
    max_concurrency: int = 1
    #: Granularity at which the device interleaves concurrent request
    #: streams: one seek is paid per switch.  ~4 MB matches OS readahead
    #: windows for concurrent sequential readers on spinning disks.
    interleave_bytes: int = 4 * MB

    def __post_init__(self) -> None:
        if self.throughput_bps <= 0:
            raise ConfigError(f"disk throughput must be positive: {self}")
        if self.seek_time_s < 0:
            raise ConfigError(f"disk seek time must be >= 0: {self}")
        if self.max_concurrency < 1:
            raise ConfigError(f"disk concurrency must be >= 1: {self}")
        if self.interleave_bytes <= 0:
            raise ConfigError(f"disk interleave must be positive: {self}")


#: A datacenter hard disk: ~130 MB/s sequential, 8 ms average seek.
HDD = DiskSpec(kind="hdd", throughput_bps=130 * MB, seek_time_s=0.008,
               max_concurrency=1)

#: An i2-class SSD: ~450 MB/s, negligible seek, parallel internally.
SSD = DiskSpec(kind="ssd", throughput_bps=450 * MB, seek_time_s=0.0001,
               max_concurrency=4)


@dataclass(frozen=True)
class MachineSpec:
    """A worker machine: cores, memory, disks, NIC, and OS cache."""

    cores: int = 8
    memory_bytes: float = 60 * GB
    disks: tuple[DiskSpec, ...] = (HDD, HDD)
    #: Full-duplex NIC bandwidth in bytes/s (~1 Gbps = 125 MB/s).
    network_bps: float = 125 * MB
    #: OS page cache available for buffered writes/reads.
    buffer_cache_bytes: float = 30 * GB
    #: Dirty-data threshold at which the flusher starts writing back.
    dirty_background_bytes: float = 2 * GB
    #: Memory-copy bandwidth for cache hits and in-memory moves.
    memcpy_bps: float = 4 * GB

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"machine needs >= 1 core: {self}")
        if not self.disks:
            raise ConfigError("machine needs at least one disk")
        if self.memory_bytes <= 0 or self.network_bps <= 0:
            raise ConfigError(f"invalid machine spec: {self}")
        if self.buffer_cache_bytes < 0 or self.dirty_background_bytes < 0:
            raise ConfigError(f"invalid cache spec: {self}")

    def with_disks(self, *disks: DiskSpec) -> "MachineSpec":
        """A copy of the spec with a different disk complement."""
        return replace(self, disks=tuple(disks))


#: The paper's HDD machines (m2.4xlarge): 8 vCPU, ~60 GB, 2 HDD, ~1 Gbps.
M2_4XLARGE = MachineSpec(cores=8, memory_bytes=60 * GB, disks=(HDD, HDD),
                         network_bps=125 * MB)

#: The paper's SSD machines (i2.2xlarge): 8 vCPU, ~60 GB, 2 SSD, ~1 Gbps.
I2_2XLARGE = MachineSpec(cores=8, memory_bytes=60 * GB, disks=(SSD, SSD),
                         network_bps=125 * MB)


@dataclass(frozen=True)
class CostModel:
    """Software-side costs charged to the CPU, in seconds.

    Serialization and deserialization dominate Spark 1.3's CPU profile,
    so they are modeled per byte; per-record costs cover object creation
    and function-call overhead.  Workload operators add their own compute
    on top via :class:`repro.api.ops.OpCost`.
    """

    deserialize_s_per_byte: float = 1.0 / (150 * MB)
    serialize_s_per_byte: float = 1.0 / (200 * MB)
    #: Per-record object creation / reflection overheads dominate small
    #: records on Spark 1.3 (the paper's version, which it notes "is
    #: known to have various CPU inefficiencies").
    deserialize_s_per_record: float = 1.0e-6
    serialize_s_per_record: float = 0.5e-6
    #: Decompression/compression, applied when a dataset is compressed.
    decompress_s_per_byte: float = 1.0 / (400 * MB)
    compress_s_per_byte: float = 1.0 / (250 * MB)
    #: Fixed CPU cost to launch a task (deserialize the task descriptor)
    #: and to finish it (serialize metrics back to the scheduler).
    task_setup_s: float = 0.002
    task_cleanup_s: float = 0.001
    #: CPU cost to issue an I/O request (monotask creation, syscalls).
    io_request_cpu_s: float = 0.0002

    def __post_init__(self) -> None:
        for name in (
            "deserialize_s_per_byte", "serialize_s_per_byte",
            "deserialize_s_per_record", "serialize_s_per_record",
            "decompress_s_per_byte", "compress_s_per_byte",
            "task_setup_s", "task_cleanup_s", "io_request_cpu_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"cost model field {name} must be >= 0")
