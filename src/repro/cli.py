"""Command-line interface: run the paper's workloads and analyses.

Examples::

    python -m repro sort --engine monospark --machines 20 --fraction 0.05
    python -m repro bdb --query 2c --engine spark --fraction 0.1
    python -m repro ml --iterations 3
    python -m repro wordcount --engine monospark
    python -m repro whatif --disks 4 --in-memory
    python -m repro diagnose --degrade-machine 3 --disk-factor 0.3
    python -m repro trace --output trace.json
    python -m repro faults --crash-machine 1 --restart-after 20
    python -m repro serve --duration 300 --rate 0.1 --max-queued 8
    python -m repro clarity advise --duration 120 --rate 0.05
    python -m repro health --degrade-machine 1 --factor 10
    python -m repro datasvc --nodes 3 --replication 2 --crash-machine 1
    python -m repro controlplane --drivers 4 --crash-driver 3 --crash-at 20
    python -m repro obs alerts --degrade-machine 1 --factor 10
    python -m repro obs events --min-severity warning
    python -m repro obs watch --jobs 20
    python -m repro xray record clean.capsule
    python -m repro xray record degraded.capsule --degrade-machine 1
    python -m repro xray query clean.capsule --group-by machine --metric queue
    python -m repro xray diff clean.capsule degraded.capsule
    python -m repro xray regress clean.capsule degraded.capsule --threshold 0.5

Every command prints simulated runtimes; ``whatif``/``diagnose``/``trace``
additionally exercise the §6 performance-clarity machinery, ``serve``
runs a continuous multi-tenant request stream with SLO accounting, and
``health`` degrades one machine's NIC mid-stream and shows the online
health monitor detecting, attributing, and excluding it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import GB, MB, AnalyticsContext
from repro.cluster import hdd_cluster, ssd_cluster
from repro.config import SSD
from repro.metrics import format_seconds, render_timeline
from repro.metrics.chrometrace import write_chrome_trace
from repro.model import (WhatIf, diagnose_stragglers, hardware_profile,
                         predict, profile_job)
from repro.workloads.bigdata import (BdbScale, QUERIES, generate_bdb_tables,
                                     run_query)
from repro.workloads.ml import MlWorkload, make_ml_context, run_ml_workload
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort)
from repro.workloads.wordcount import generate_text_input, word_count

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monotasks (SOSP 2017) reproduction: run the paper's "
                    "workloads on a simulated cluster.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, default_machines=20):
        p.add_argument("--engine", choices=("spark", "monospark"),
                       default="monospark")
        p.add_argument("--machines", type=int, default=default_machines)
        p.add_argument("--disks", type=int, default=2)
        p.add_argument("--kind", choices=("hdd", "ssd"), default="hdd")
        p.add_argument("--fraction", type=float, default=0.05,
                       help="scale of the paper's data volume (default "
                            "0.05)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sort", help="the paper's 600 GB-class sort")
    common(p)
    p.add_argument("--values", type=int, default=25,
                   help="longs per key (CPU:I/O ratio knob)")
    p.add_argument("--tasks", type=int, default=480)

    p = sub.add_parser("bdb", help="a Big Data Benchmark query")
    common(p, default_machines=5)
    p.add_argument("--query", choices=QUERIES, default="2c")

    p = sub.add_parser("ml", help="least-squares block coordinate descent")
    p.add_argument("--engine", choices=("spark", "monospark"),
                   default="monospark")
    p.add_argument("--machines", type=int, default=15)
    p.add_argument("--iterations", type=int, default=3)

    p = sub.add_parser("wordcount", help="the Figure 1 word count")
    common(p, default_machines=4)

    p = sub.add_parser("whatif",
                       help="measure a sort once, predict new configs")
    common(p)
    p.add_argument("--values", type=int, default=25)
    p.add_argument("--tasks", type=int, default=480)
    p.add_argument("--new-disks", type=int, default=None,
                   help="predict with this many disks per machine")
    p.add_argument("--new-machines", type=int, default=None)
    p.add_argument("--ssd", action="store_true",
                   help="predict with SSD-speed disks")
    p.add_argument("--in-memory", action="store_true",
                   help="predict input cached deserialized in memory")

    p = sub.add_parser("diagnose",
                       help="inject degradation, find it from monotasks")
    common(p, default_machines=10)
    p.add_argument("--degrade-machine", type=int, default=None)
    p.add_argument("--disk-factor", type=float, default=1.0)
    p.add_argument("--cpu-factor", type=float, default=1.0)

    p = sub.add_parser("trace",
                       help="run a job and export / analyze its trace")
    p.add_argument("action", nargs="?", default="export",
                   choices=["export", "critical-path", "span-stats"],
                   help="export a chrome://tracing JSON (default), "
                        "attribute the job's critical path, or print "
                        "span/link statistics")
    common(p, default_machines=4)
    p.add_argument("--output", default="trace.json")
    p.add_argument("--timeline", action="store_true",
                   help="also print the ASCII timeline")
    p.add_argument("--spans-jsonl", default=None,
                   help="also stream spans/links to this JSONL file")
    p.add_argument("--workload", default="wordcount",
                   choices=["wordcount", "sort"],
                   help="wordcount (map-only-ish) or sort (shuffle-"
                        "heavy; shows disk/network on the path)")

    p = sub.add_parser("faults",
                       help="crash a machine mid-sort, watch recovery")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--tasks", type=int, default=32)
    p.add_argument("--crash-machine", type=int, default=1)
    p.add_argument("--crash-at", type=float, default=None,
                   help="crash time in seconds (default: 30%% of the "
                        "fault-free runtime)")
    p.add_argument("--restart-after", type=float, default=15.0,
                   help="seconds until the machine restarts (empty)")
    p.add_argument("--no-restart", action="store_true",
                   help="the machine never comes back")
    p.add_argument("--speculation", action="store_true",
                   help="enable straggler speculation")

    p = sub.add_parser("serve",
                       help="serve a multi-tenant job stream with SLOs")
    common(p, default_machines=4)
    p.add_argument("--duration", type=float, default=300.0,
                   help="arrival horizon in simulated seconds")
    p.add_argument("--rate", type=float, default=0.1,
                   help="interactive tenant arrivals per second")
    p.add_argument("--batch-rate", type=float, default=0.05,
                   help="batch tenant arrivals per second")
    p.add_argument("--slo", type=float, default=30.0,
                   help="interactive tenant SLO in seconds")
    p.add_argument("--policy",
                   choices=("fifo", "weighted_fair", "deadline"),
                   default="weighted_fair")
    p.add_argument("--max-queued", type=int, default=None,
                   help="shed arrivals beyond this queue length")
    p.add_argument("--max-backlog", type=float, default=None,
                   help="shed arrivals beyond this estimated backlog (s)")
    p.add_argument("--max-concurrent", type=int, default=None,
                   help="bound on concurrently running jobs")
    p.add_argument("--crash-machine", type=int, default=None,
                   help="crash this machine mid-stream")
    p.add_argument("--crash-at", type=float, default=60.0)
    p.add_argument("--restart-after", type=float, default=30.0)

    p = sub.add_parser("clarity",
                       help="serve a job stream with the always-on "
                            "clarity pipeline attached")
    p.add_argument("action", nargs="?", default="report",
                   choices=["report", "watch", "advise"],
                   help="report: serve then print the SLO report with "
                        "the clarity window folded in (default); watch: "
                        "print rolling bottleneck snapshots during the "
                        "serve; advise: rank capacity what-ifs over the "
                        "window")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--duration", type=float, default=120.0,
                   help="arrival horizon in simulated seconds")
    p.add_argument("--rate", type=float, default=0.05,
                   help="sort-job arrivals per second")
    p.add_argument("--sort-gb", type=float, default=0.5,
                   help="data volume of each served sort job (GB)")
    p.add_argument("--tasks", type=int, default=32,
                   help="map/reduce tasks per served job")
    p.add_argument("--window", type=float, default=600.0,
                   help="rolling bottleneck window in seconds")
    p.add_argument("--interval", type=float, default=30.0,
                   help="watch: snapshot interval in seconds")

    p = sub.add_parser("health",
                       help="degrade a NIC mid-stream, watch online "
                            "detection and exclusion")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--degrade-machine", type=int, default=1)
    p.add_argument("--degrade-at", type=float, default=5.0)
    p.add_argument("--factor", type=float, default=10.0,
                   help="NIC slowdown factor (>1 = slower)")
    p.add_argument("--jobs", type=int, default=12,
                   help="sequential word-count jobs to run")
    p.add_argument("--interval", type=float, default=5.0,
                   help="heartbeat/estimation interval in seconds")
    p.add_argument("--no-monitor", action="store_true",
                   help="run without the health monitor (for contrast)")

    p = sub.add_parser("datasvc",
                       help="disaggregated shuffle/storage data tier: "
                            "crash and corruption contrast")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--nodes", type=int, default=3,
                   help="dedicated storage nodes (default 3)")
    p.add_argument("--replication", type=int, default=2,
                   help="replicas per stored block (default 2)")
    p.add_argument("--records", type=int, default=4000,
                   help="driver-side word-count records (default 4000)")
    p.add_argument("--partitions", type=int, default=8)
    p.add_argument("--crash-machine", type=int, default=1,
                   help="compute machine crashed just after its maps "
                        "finish")
    p.add_argument("--restart-after", type=float, default=1.0)
    p.add_argument("--corrupt-node", type=int, default=0,
                   help="storage node whose replica gets a flipped "
                        "checksum")

    p = sub.add_parser("controlplane",
                       help="sharded multi-driver serving: crash a "
                            "driver mid-run and watch checkpointed "
                            "failover adopt its tenants")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--drivers", type=int, default=2,
                   help="driver replicas sharding the tenants "
                        "(default 2)")
    p.add_argument("--tenants", type=int, default=4,
                   help="tenants spread over the ring (default 4)")
    p.add_argument("--duration", type=float, default=40.0,
                   help="arrival horizon in simulated seconds")
    p.add_argument("--rate", type=float, default=0.5,
                   help="per-tenant arrivals per second")
    p.add_argument("--control-service", type=float, default=0.05,
                   help="driver seconds serialized per dispatch")
    p.add_argument("--crash-driver", type=int, default=None,
                   help="crash this driver replica mid-run")
    p.add_argument("--crash-at", type=float, default=20.0)
    p.add_argument("--restart-after", type=float, default=None,
                   help="bring the crashed driver back after this many "
                        "seconds (default: stays dead)")
    p.add_argument("--partition-driver", type=int, default=None,
                   help="partition this driver from its peers mid-run")
    p.add_argument("--heal-after", type=float, default=None,
                   help="heal the partition after this many seconds")
    p.add_argument("--no-failover", action="store_true",
                   help="disable checkpointing and failover (for "
                        "contrast; crashed shards lose their requests)")

    p = sub.add_parser("obs",
                       help="stream a fail-slow scenario through the "
                            "alerting plane: burn-rate SLO alerts, "
                            "source attribution, event journal")
    p.add_argument("action", nargs="?", default="alerts",
                   choices=["alerts", "events", "watch"],
                   help="alerts: run the scenario, print the alert "
                        "timeline and serve report (default); events: "
                        "print the unified event journal; watch: print "
                        "alert transitions live as the stream runs")
    common(p, default_machines=4)
    p.set_defaults(fraction=0.01)
    p.add_argument("--degrade-machine", type=int, default=1)
    p.add_argument("--degrade-at", type=float, default=5.0)
    p.add_argument("--factor", type=float, default=10.0,
                   help="NIC slowdown factor (>1 = slower; 1 = healthy "
                        "run, nothing should fire)")
    p.add_argument("--jobs", type=int, default=20,
                   help="word-count requests in the arrival trace")
    p.add_argument("--period", type=float, default=2.5,
                   help="seconds between arrivals")
    p.add_argument("--slo", type=float, default=3.0,
                   help="tenant SLO in seconds (the burn-rate target)")
    p.add_argument("--min-severity", default="info",
                   choices=["info", "warning", "critical"],
                   help="events: lowest journal severity to print")
    p.add_argument("--journal", default=None,
                   help="also tee the journal to this JSONL file")
    p.add_argument("--no-monitor", action="store_true",
                   help="run without the health monitor (alerts still "
                        "fire; nothing excludes the machine)")

    p = sub.add_parser("xray",
                       help="record run capsules, query them, and diff "
                            "two runs into ranked per-resource blame")
    xray = p.add_subparsers(dest="xray_action", required=True)

    x = xray.add_parser("record",
                        help="simulate the canonical serving run and "
                             "record it into a capsule file")
    x.add_argument("output", help="capsule path to write (JSONL)")
    x.add_argument("--engine", choices=("spark", "monospark"),
                   default="monospark")
    x.add_argument("--machines", type=int, default=4)
    x.add_argument("--disks", type=int, default=2)
    x.add_argument("--seed", type=int, default=1)
    x.add_argument("--jobs", type=int, default=12,
                   help="word-count requests in the arrival trace")
    x.add_argument("--num-blocks", type=int, default=4)
    x.add_argument("--block-mb", type=float, default=48.0)
    x.add_argument("--period", type=float, default=2.5,
                   help="seconds between arrivals")
    x.add_argument("--slo", type=float, default=3.0)
    x.add_argument("--tenant", default="analytics")
    x.add_argument("--degrade-machine", type=int, default=None,
                   help="degrade this machine's NIC mid-run (the "
                        "canonical fail-slow fault)")
    x.add_argument("--degrade-at", type=float, default=5.0)
    x.add_argument("--factor", type=float, default=10.0,
                   help="NIC slowdown factor (>1 = slower)")
    x.add_argument("--health", action="store_true",
                   help="also run the health monitor (exclusion "
                        "mitigates the fault, muddying the diff demo)")

    x = xray.add_parser("query",
                        help="trace analytics over one capsule: "
                             "group/aggregate spans, RED tenant rates")
    x.add_argument("capsule", help="capsule path to load")
    x.add_argument("--group-by", default="resource",
                   choices=["resource", "machine", "phase", "stage",
                            "tenant", "kind"])
    x.add_argument("--metric", choices=("duration", "queue"),
                   default="duration",
                   help="service seconds or scheduler queueing seconds")
    x.add_argument("--rates", action="store_true",
                   help="print RED-style per-tenant rates instead")
    x.add_argument("--kind", default=None,
                   help="span kind filter (default: leaf layer -- "
                        "monotask when present, attempt otherwise)")
    x.add_argument("--resource", default=None)
    x.add_argument("--phase", default=None)
    x.add_argument("--machine", type=int, default=None)
    x.add_argument("--tenant", default=None)
    x.add_argument("--job", type=int, default=None)

    x = xray.add_parser("diff",
                        help="why is run B slower than run A? ranked "
                             "per-resource x machine x phase blame")
    x.add_argument("a", help="baseline capsule (run A)")
    x.add_argument("b", help="comparison capsule (run B)")
    x.add_argument("--noise-floor", type=float, default=0.05,
                   help="ignore per-cell deltas below this many "
                        "seconds (default 0.05)")
    x.add_argument("--min-fraction", type=float, default=0.02,
                   help="...and below this fraction of the total delta")
    x.add_argument("--json", action="store_true",
                   help="print the machine-readable report instead")

    x = xray.add_parser("regress",
                        help="CI gate: diff B against baseline A, exit "
                             "3 if the regression exceeds the threshold")
    x.add_argument("a", help="baseline capsule (run A)")
    x.add_argument("b", help="candidate capsule (run B)")
    x.add_argument("--threshold", type=float, default=0.5,
                   help="fail past this many seconds of total "
                        "critical-path regression (default 0.5)")
    x.add_argument("--noise-floor", type=float, default=0.05)

    p = sub.add_parser("reproduce",
                       help="regenerate one of the paper's figures "
                            "(runs its benchmark)")
    p.add_argument("figure",
                   help="e.g. fig05, fig11, sort, ablation_write_policy; "
                        "'list' shows all targets")
    return parser


def _make_cluster(args):
    factory = hdd_cluster if args.kind == "hdd" else ssd_cluster
    return factory(num_machines=args.machines, num_disks=args.disks,
                   seed=args.seed,
                   **scaled_memory_overrides(args.fraction))


def _sort_workload(args) -> SortWorkload:
    return SortWorkload(total_bytes=600 * GB * args.fraction,
                        values_per_key=args.values,
                        num_map_tasks=args.tasks)


def _report_job(ctx, label: str) -> None:
    result = ctx.last_result
    print(f"{label}: {format_seconds(result.duration)} simulated "
          f"on {ctx.cluster.describe()}")
    for stage in ctx.metrics.stage_records(result.job_id):
        print(f"  stage {stage.stage_id} ({stage.name}): "
              f"{format_seconds(stage.duration)}, {stage.num_tasks} tasks")


def _cmd_sort(args) -> int:
    cluster = _make_cluster(args)
    workload = _sort_workload(args)
    generate_sort_input(cluster, workload, seed=args.seed)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    run_sort(ctx, workload)
    _report_job(ctx, f"sort ({args.engine})")
    return 0


def _cmd_bdb(args) -> int:
    cluster = _make_cluster(args)
    scale = BdbScale(fraction=args.fraction)
    generate_bdb_tables(cluster, scale, seed=args.seed)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    run_query(ctx, args.query, scale)
    _report_job(ctx, f"BDB query {args.query} ({args.engine})")
    return 0


def _cmd_ml(args) -> int:
    cluster = ssd_cluster(num_machines=args.machines)
    ctx = make_ml_context(cluster, args.engine, MlWorkload())
    results = run_ml_workload(ctx, iterations=args.iterations)
    for index, result in enumerate(results):
        print(f"iteration {index}: {format_seconds(result.duration)}")
    return 0


def _cmd_wordcount(args) -> int:
    cluster = _make_cluster(args)
    generate_text_input(cluster, num_blocks=args.machines * 4,
                        block_bytes=64 * MB, seed=args.seed)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    word_count(ctx)
    _report_job(ctx, f"word count ({args.engine})")
    return 0


def _cmd_whatif(args) -> int:
    cluster = _make_cluster(args)
    workload = _sort_workload(args)
    generate_sort_input(cluster, workload, seed=args.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    result = run_sort(ctx, workload)
    profiles = profile_job(ctx.metrics, result.job_id)
    hardware = hardware_profile(cluster)
    new_hardware = hardware.scaled(
        machines=args.new_machines,
        disks_per_machine=args.new_disks,
        disk_throughput_bps=(SSD.throughput_bps if args.ssd else None))
    what_if = WhatIf(hardware=new_hardware,
                     input_in_memory_deserialized=args.in_memory)
    prediction = predict(profiles, result.duration, hardware, what_if)
    print(f"measured: {format_seconds(result.duration)} on "
          f"{cluster.describe()}")
    print(f"what-if ({what_if.describe()}): "
          f"{format_seconds(prediction.predicted_s)} predicted "
          f"({result.duration / prediction.predicted_s:.2f}x)")
    return 0


def _cmd_diagnose(args) -> int:
    cluster = _make_cluster(args)
    if args.degrade_machine is not None:
        cluster.degrade_machine(args.degrade_machine,
                                cpu_factor=args.cpu_factor,
                                disk_factor=args.disk_factor)
    workload = SortWorkload(total_bytes=600 * GB * args.fraction,
                            values_per_key=25,
                            num_map_tasks=args.machines * 24)
    generate_sort_input(cluster, workload, seed=args.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    result = run_sort(ctx, workload)
    report = diagnose_stragglers(ctx.metrics, result.job_id)
    print(f"job took {format_seconds(result.duration)}")
    for machine_id, health in sorted(report.machines.items()):
        disk = (f"{health.disk_bps / MB:7.1f} MB/s"
                if health.disk_bps else "      -")
        cpu = (f"{health.cpu_slowdown:5.2f}x"
               if health.cpu_slowdown else "    -")
        print(f"  machine {machine_id:3d}: disk {disk}, cpu {cpu}")
    print(f"slow disks: {report.slow_disks or 'none'}; "
          f"slow CPUs: {report.slow_cpus or 'none'}")
    return 0 if report.healthy else 3


def _cmd_trace(args) -> int:
    from repro.trace import JsonlSpanSink, critical_path

    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    sink = None
    if args.spans_jsonl:
        sink = JsonlSpanSink(args.spans_jsonl)
        ctx.metrics.add_span_sink(sink)
    if args.workload == "sort":
        workload = SortWorkload(total_bytes=600 * GB * args.fraction,
                                values_per_key=25,
                                num_map_tasks=args.machines * 8)
        generate_sort_input(cluster, workload, seed=args.seed)
        run_sort(ctx, workload)
    else:
        generate_text_input(cluster, num_blocks=args.machines * 4,
                            block_bytes=64 * MB, seed=args.seed)
        word_count(ctx)
    job_id = ctx.last_result.job_id
    if sink is not None:
        sink.close()
        print(f"wrote {sink.spans_written} spans and {sink.links_written} "
              f"links to {args.spans_jsonl}")
    if args.engine == "monospark" and args.timeline:
        print(render_timeline(ctx.metrics, job_id))
    if args.action == "critical-path":
        print(critical_path(ctx.metrics, job_id, engine=args.engine).format())
        return 0
    if args.action == "span-stats":
        spans = ctx.metrics.spans_for_job(job_id)
        links = ctx.metrics.links_for_job(job_id)
        by_kind: dict = {}
        for span in spans:
            by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
        print(f"job {job_id}: {len(spans)} spans, {len(links)} links")
        for kind in sorted(by_kind):
            print(f"  {kind:<10} {by_kind[kind]}")
        link_kinds: dict = {}
        for link in links:
            link_kinds[link.kind] = link_kinds.get(link.kind, 0) + 1
        for kind in sorted(link_kinds):
            print(f"  link:{kind:<10} {link_kinds[kind]}")
        return 0
    result = write_chrome_trace(ctx.metrics, args.output, job_id=job_id)
    print(f"wrote {result.events} events to {result.path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultInjector, FaultPlan, MachineCrash, RecoveryPolicy
    from repro.metrics.report import format_fault_report

    if not 0 <= args.crash_machine < args.machines:
        print(f"--crash-machine must be in [0, {args.machines})")
        return 2
    policy = RecoveryPolicy(speculation=args.speculation)
    workload = SortWorkload(total_bytes=600 * GB * args.fraction,
                            values_per_key=25,
                            num_map_tasks=args.tasks)

    def run_once(plan=None):
        cluster = _make_cluster(args)
        generate_sort_input(cluster, workload, seed=args.seed)
        ctx = AnalyticsContext(cluster, engine=args.engine, recovery=policy)
        if plan is not None:
            FaultInjector(ctx.engine, plan).start()
        result = run_sort(ctx, workload)
        return ctx, result

    ctx, baseline = run_once()
    print(f"fault-free: {format_seconds(baseline.duration)} simulated on "
          f"{ctx.cluster.describe()}")
    crash_at = (args.crash_at if args.crash_at is not None
                else baseline.duration * 0.3)
    restart_after = None if args.no_restart else args.restart_after
    plan = FaultPlan([MachineCrash(at=crash_at,
                                   machine_id=args.crash_machine,
                                   restart_after=restart_after)])
    ctx, result = run_once(plan)
    restart_note = (f", restart after {format_seconds(restart_after)}"
                    if restart_after is not None else ", no restart")
    print(f"crash machine {args.crash_machine} at "
          f"{format_seconds(crash_at)}{restart_note}: "
          f"{format_seconds(result.duration)} "
          f"({result.duration / baseline.duration:.2f}x)")
    print()
    print(format_fault_report(ctx.metrics, result.job_id))
    return 0


def _cmd_serve(args) -> int:
    from repro.faults import FaultInjector, FaultPlan, MachineCrash
    from repro.serve import (AdmissionController, JobServer, PoissonArrivals,
                             ml_template, wordcount_template)

    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine,
                           scheduling_policy="fair")
    if args.crash_machine is not None:
        plan = FaultPlan([MachineCrash(at=args.crash_at,
                                       machine_id=args.crash_machine,
                                       restart_after=args.restart_after)])
        FaultInjector(ctx.engine, plan).start()
    admission = None
    if args.max_queued is not None or args.max_backlog is not None:
        admission = AdmissionController(max_queued_jobs=args.max_queued,
                                        max_backlog_s=args.max_backlog)
    server = JobServer(ctx, admission=admission, policy=args.policy,
                       max_concurrent_jobs=args.max_concurrent,
                       seed=args.seed)
    server.add_tenant("interactive", weight=2.0, slo_s=args.slo)
    server.add_tenant("batch", weight=1.0)
    server.add_workload(
        "interactive",
        wordcount_template(ctx, num_blocks=args.machines * 2, block_mb=32.0,
                           seed=args.seed),
        PoissonArrivals(args.rate, horizon_s=args.duration))
    server.add_workload(
        "batch",
        ml_template(ctx, num_partitions=args.machines, seed=args.seed),
        PoissonArrivals(args.batch_rate, horizon_s=args.duration))
    print(server.run().format())
    return 0


def _cmd_clarity(args) -> int:
    from repro.clarity import CapacityAdvisor, ClarityAggregator
    from repro.model import hardware_profile
    from repro.serve import JobServer, PoissonArrivals, sort_template

    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine,
                           scheduling_policy="fair")
    aggregator = ClarityAggregator(window_s=args.window,
                                   engine=ctx.engine.name)
    server = JobServer(ctx, policy="fifo", max_concurrent_jobs=1,
                       seed=args.seed, clarity=aggregator)
    server.add_tenant("analytics")
    template = sort_template(ctx, total_gb=args.sort_gb,
                             num_tasks=args.tasks, seed=args.seed)
    server.add_workload(
        "analytics", template,
        PoissonArrivals(args.rate, horizon_s=args.duration))
    env = ctx.engine.env

    if args.action == "watch":
        def snapshots():
            elapsed = 0.0
            while elapsed < args.duration:
                yield env.timeout(args.interval)
                elapsed += args.interval
                print(aggregator.bottleneck(now=env.now,
                                            window_s=args.window).format())
                print()
        env.process(snapshots())

    report = server.run()
    if args.action == "watch":
        print("final " + aggregator.bottleneck().format())
        return 0
    if args.action == "advise":
        print(aggregator.bottleneck().format())
        print()
        advisor = CapacityAdvisor(hardware_profile(cluster))
        advice = advisor.advise(aggregator.observations())
        print(advice.format())
        # Like `diagnose`, a window the engine cannot explain exits 3.
        return 0 if advice.attributable else 3
    print(report.format())
    return 0


def _cmd_health(args) -> int:
    from repro.faults import FaultInjector, fail_slow_plan
    from repro.health import HealthMonitor, HealthPolicy
    from repro.serve import wordcount_template

    if not 0 <= args.degrade_machine < args.machines:
        print(f"--degrade-machine must be in [0, {args.machines})")
        return 2
    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    env = ctx.engine.env
    plan = fail_slow_plan(machine_id=args.degrade_machine,
                          at=args.degrade_at, factor=args.factor)
    FaultInjector(ctx.engine, plan).start()
    monitor = None
    if not args.no_monitor:
        monitor = HealthMonitor(
            ctx.engine, HealthPolicy(interval_s=args.interval))
        monitor.start()
    template = wordcount_template(ctx, num_blocks=args.machines * 2,
                                  block_mb=32.0, seed=args.seed)
    print(f"degrade machine {args.degrade_machine} NIC {args.factor:g}x "
          f"at {format_seconds(args.degrade_at)} on "
          f"{ctx.cluster.describe()}; monitor "
          f"{'off' if args.no_monitor else 'on'}")
    for i in range(args.jobs):
        driver = ctx.engine.submit_job(template.instantiate(ctx))
        start = env.now
        env.run(until=driver)
        print(f"job {i:2d}: {format_seconds(env.now - start)}")
    if monitor is not None:
        monitor.stop()
    env.run()
    events = ctx.metrics.health_events
    if events:
        print()
        print("health events:")
        for h in events:
            relative = ("" if h.relative_rate != h.relative_rate
                        else f" rel={h.relative_rate:.3f}")
            detail = f" ({h.detail})" if h.detail else ""
            resource = f" {h.resource}" if h.resource else ""
            print(f"  t={h.at:7.1f}  {h.kind:10s} machine "
                  f"{h.machine_id}{resource}{relative}{detail}")
        excluded = sorted(ctx.engine.excluded_machines)
        print(f"excluded at end: {excluded if excluded else 'none'}")
    elif monitor is not None:
        print("\nno health events (nothing fell below the cluster-typical "
              "rate)")
    return 0


def _cmd_datasvc(args) -> int:
    from repro.datasvc import DataService
    from repro.faults import (BlockCorruption, FaultInjector, FaultPlan,
                              MachineCrash)

    if args.nodes < 1:
        print("--nodes must be at least 1")
        return 2
    if args.replication < 1:
        print("--replication must be at least 1")
        return 2
    if not 0 <= args.crash_machine < args.machines:
        print(f"--crash-machine must be in [0, {args.machines})")
        return 2
    if not 0 <= args.corrupt_node < args.nodes:
        print(f"--corrupt-node must be in [0, {args.nodes})")
        return 2
    records = [f"w{i % 17} w{i % 11}" for i in range(args.records)]

    def run_once(disaggregated, plan=None):
        cluster = _make_cluster(args)
        service = None
        options = {}
        if disaggregated:
            service = DataService(cluster, num_nodes=args.nodes,
                                  replication=args.replication)
            options["datasvc"] = service
        ctx = AnalyticsContext(cluster, engine=args.engine, **options)
        if plan is not None:
            FaultInjector(ctx.engine, plan).start()
        rdd = ctx.parallelize(records, num_partitions=args.partitions)
        (rdd.flat_map(lambda line: line.split())
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect())
        return ctx, service

    def outcomes(ctx):
        counts = ctx.metrics.attempt_outcome_counts(ctx.last_result.job_id)
        return {kind: count for kind, count in sorted(counts.items())
                if count}

    ctx, _ = run_once(False)
    baseline = ctx.last_result
    crash_at = min(s.end for s in
                   ctx.metrics.stage_records(baseline.job_id)) * 1.02
    print(f"fault-free co-located: {format_seconds(baseline.duration)} "
          f"simulated on {ctx.cluster.describe()}")
    ctx, _ = run_once(True)
    corrupt_at = min(s.end for s in
                     ctx.metrics.stage_records(ctx.last_result.job_id)) * 0.9
    print(f"fault-free disaggregated ({args.nodes} storage nodes, "
          f"{args.replication}x replication): "
          f"{format_seconds(ctx.last_result.duration)}")
    print()

    plan = FaultPlan([MachineCrash(at=crash_at,
                                   machine_id=args.crash_machine,
                                   restart_after=args.restart_after)])
    ctx, _ = run_once(False, plan)
    print(f"crash machine {args.crash_machine} at "
          f"{format_seconds(crash_at)} (maps done, reduces fetching):")
    print(f"  co-located:    {outcomes(ctx)} -- the crash took its map "
          f"output with it")
    ctx, service = run_once(True, plan)
    crash_outcomes = outcomes(ctx)
    print(f"  disaggregated: {crash_outcomes} -- map output lives on the "
          f"data tier")

    plan = FaultPlan([BlockCorruption(at=corrupt_at,
                                      node_index=args.corrupt_node)])
    ctx, service = run_once(True, plan)
    stats = service.stats()
    print()
    print(f"corrupt a replica on storage node {args.corrupt_node}: "
          f"{stats['integrity_faults']:g} integrity fault(s) detected, "
          f"{stats['failovers']:g} failover(s), "
          f"{stats['re_replications']:g} re-replication(s)")
    for node, count in sorted(service.suspicion_counts().items()):
        print(f"  storage node s{node}: {count} integrity suspicion(s)")
    return 0 if not crash_outcomes.get("fetch-failed") else 3


def _cmd_controlplane(args) -> int:
    from repro.controlplane import ControlPlane, ControlPlanePolicy
    from repro.faults import (DriverCrash, DriverPartition, FaultInjector,
                              FaultPlan)
    from repro.serve import PoissonArrivals, wordcount_template

    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    policy = ControlPlanePolicy(control_service_s=args.control_service,
                                checkpoint=not args.no_failover,
                                failover=not args.no_failover)
    plane = ControlPlane(ctx, num_drivers=args.drivers, config=policy,
                         seed=args.seed)
    template = wordcount_template(ctx, num_blocks=2, block_mb=4.0,
                                  seed=args.seed)
    for i in range(args.tenants):
        plane.add_workload(f"tenant{i}", template,
                           PoissonArrivals(args.rate,
                                           horizon_s=args.duration))
    faults = []
    if args.crash_driver is not None:
        faults.append(DriverCrash(at=args.crash_at,
                                  driver_id=args.crash_driver,
                                  restart_after=args.restart_after))
    if args.partition_driver is not None:
        faults.append(DriverPartition(at=args.crash_at,
                                      driver_id=args.partition_driver,
                                      heal_after=args.heal_after))
    if faults:
        FaultInjector(ctx.engine, FaultPlan(faults)).start()
    report = plane.run()
    print(report.format())
    if report.jobs_lost:
        print(f"\n{report.jobs_lost} request(s) lost with their driver "
              f"-- run without --no-failover to keep them")
        return 3
    return 0


def _cmd_obs(args) -> int:
    from repro.faults import FaultInjector, fail_slow_plan
    from repro.health import HealthMonitor, HealthPolicy
    from repro.obs import ObservabilityPlane
    from repro.serve import JobServer, TraceArrivals, wordcount_template

    if not 0 <= args.degrade_machine < args.machines:
        print(f"--degrade-machine must be in [0, {args.machines})")
        return 2
    cluster = _make_cluster(args)
    ctx = AnalyticsContext(cluster, engine=args.engine)
    env = ctx.engine.env
    if args.factor != 1.0:
        plan = fail_slow_plan(machine_id=args.degrade_machine,
                              at=args.degrade_at, factor=args.factor)
        FaultInjector(ctx.engine, plan).start()
    monitor = None
    if not args.no_monitor:
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
    obs = ObservabilityPlane(journal_path=args.journal)
    server = JobServer(ctx, seed=args.seed, health=monitor, obs=obs)
    server.add_tenant("analytics", slo_s=args.slo)
    template = wordcount_template(ctx, num_blocks=args.machines,
                                  block_mb=16.0, seed=args.seed)
    server.add_workload(
        "analytics", template,
        TraceArrivals([1.0 + args.period * i for i in range(args.jobs)]))
    print(f"degrade machine {args.degrade_machine} NIC {args.factor:g}x "
          f"at {format_seconds(args.degrade_at)} on "
          f"{ctx.cluster.describe()}; SLO {args.slo:g}s; monitor "
          f"{'off' if args.no_monitor else 'on'}")

    if args.action == "watch":
        def follow():
            seen = 0
            while True:
                yield env.timeout(obs.interval_s)
                transitions = obs.alert_timeline()
                for record in transitions[seen:]:
                    exemplar = (f"  exemplar={record.trace_id}/"
                                f"{record.span_id}"
                                if record.span_id >= 0 else "")
                    value = ("" if record.value != record.value
                             else f" value={record.value:.3f}")
                    print(f"  t={record.at:7.2f}  {record.kind:9s} "
                          f"{record.rule}{{{record.labels}}}"
                          f"{value}{exemplar}")
                seen = len(transitions)
        env.process(follow())

    report = server.run()
    obs.close()
    if args.action == "watch":
        firing = obs.firing()
        names = [f"{a.rule}{{{_labels_str(a)}}}" for a in firing]
        print(f"still firing at drain: {', '.join(names) or 'none'}")
        return 0
    if args.action == "events":
        print(obs.journal.format(min_severity=args.min_severity))
        if args.journal:
            print(f"\nwrote {obs.journal_sink.written} journal events "
                  f"to {args.journal}")
        return 0
    print(report.format())
    return 0


def _cmd_xray(args) -> int:
    from repro.xray import (CanonicalRun, Capsule, CapsuleQuery,
                            diff_capsules, record_run)

    if args.xray_action == "record":
        run = CanonicalRun(
            engine=args.engine, machines=args.machines, disks=args.disks,
            seed=args.seed, tenant=args.tenant, slo_s=args.slo,
            num_blocks=args.num_blocks, block_mb=args.block_mb,
            jobs=args.jobs, period_s=args.period,
            degrade_machine=args.degrade_machine,
            degrade_at=args.degrade_at, degrade_factor=args.factor,
            health=args.health)
        capsule = record_run(args.output, run)
        print(capsule.describe())
        return 0

    if args.xray_action == "query":
        query = CapsuleQuery(Capsule.load(args.capsule))
        if args.rates:
            print(query.format_rates(query.tenant_rates()))
            return 0
        rows = query.aggregate(
            group_by=args.group_by, metric=args.metric, kind=args.kind,
            resource=args.resource, phase=args.phase,
            machine=args.machine, tenant=args.tenant, job=args.job)
        print(query.format_aggregate(rows, args.group_by, args.metric))
        return 0

    report = diff_capsules(Capsule.load(args.a), Capsule.load(args.b),
                           noise_floor_s=args.noise_floor,
                           min_fraction=getattr(args, "min_fraction", 0.02))
    if args.xray_action == "regress":
        print(report.format())
        if report.regression(args.threshold):
            print(f"\nREGRESSION: {report.delta_total:+.3f}s exceeds "
                  f"the {args.threshold:g}s threshold")
            return 3
        print(f"\nok: {report.delta_total:+.3f}s within the "
              f"{args.threshold:g}s threshold")
        return 0
    if args.json:
        import json
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
        return 0
    print(report.format())
    return 0


def _labels_str(alert) -> str:
    from repro.obs import format_labels
    return format_labels(alert.labels)


def _cmd_reproduce(args) -> int:
    import glob
    import os
    import subprocess
    bench_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "benchmarks")
    if not os.path.isdir(bench_dir):
        print("benchmarks/ not found; run from a source checkout")
        return 2
    targets = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "test_*.py"))):
        name = os.path.basename(path)[len("test_"):-len(".py")]
        targets[name] = path
        prefix = name.split("_")[0]
        if prefix.startswith(("fig", "sec", "sort")):
            targets[prefix] = path  # fig05 etc. as shorthand
    if args.figure == "list":
        for name in sorted(n for n in targets if "_" in n):
            print(name)
        return 0
    path = targets.get(args.figure)
    if path is None:
        print(f"unknown figure {args.figure!r}; try 'repro reproduce list'")
        return 2
    return subprocess.call([sys.executable, "-m", "pytest", path,
                            "--benchmark-only", "-s", "-q"])


_COMMANDS = {
    "sort": _cmd_sort,
    "bdb": _cmd_bdb,
    "ml": _cmd_ml,
    "wordcount": _cmd_wordcount,
    "whatif": _cmd_whatif,
    "diagnose": _cmd_diagnose,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "serve": _cmd_serve,
    "clarity": _cmd_clarity,
    "health": _cmd_health,
    "datasvc": _cmd_datasvc,
    "controlplane": _cmd_controlplane,
    "obs": _cmd_obs,
    "xray": _cmd_xray,
    "reproduce": _cmd_reproduce,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
