"""Causal span tracing, critical-path attribution, and live telemetry.

The paper's performance-clarity thesis as a subsystem: spans record the
causal structure of execution (:mod:`repro.trace.spans`), the critical
path explains where a job's wall-clock time went
(:mod:`repro.trace.critpath`), and telemetry exposes live cluster state
(:mod:`repro.trace.telemetry`).
"""

from repro.trace.critpath import (CriticalPathReport, PathSegment,
                                  critical_path)
from repro.trace.sink import JsonlSpanSink
from repro.trace.spans import (LINK_DAG_EDGE, LINK_QUEUE_WAIT,
                               LINK_REDISPATCH, LINK_RETRY,
                               LINK_SHUFFLE_FETCH, LINK_SPECULATION,
                               SPAN_ATTEMPT, SPAN_JOB, SPAN_MONOTASK,
                               SPAN_STAGE, SpanLink, SpanRecord,
                               TraceContext, link_to_json, span_to_json)
from repro.trace.telemetry import (TelemetryRegistry, TelemetrySample,
                                   TelemetrySampler, render_prometheus)

__all__ = [
    "TraceContext",
    "SpanRecord",
    "SpanLink",
    "SPAN_JOB",
    "SPAN_STAGE",
    "SPAN_ATTEMPT",
    "SPAN_MONOTASK",
    "LINK_DAG_EDGE",
    "LINK_SHUFFLE_FETCH",
    "LINK_QUEUE_WAIT",
    "LINK_RETRY",
    "LINK_SPECULATION",
    "LINK_REDISPATCH",
    "span_to_json",
    "link_to_json",
    "JsonlSpanSink",
    "critical_path",
    "CriticalPathReport",
    "PathSegment",
    "TelemetryRegistry",
    "TelemetrySampler",
    "TelemetrySample",
    "render_prometheus",
]
