"""Live telemetry: simulated-time-sampled gauges and counters.

Event records answer "what happened"; telemetry answers "what does the
cluster look like *right now*" -- per-resource queue depths, outstanding
network flows, buffer-cache dirty bytes, excluded machines.  Components
register callback-backed series in a :class:`TelemetryRegistry`; a
:class:`TelemetrySampler` process snapshots every series on a fixed
simulated-time cadence, and :func:`render_prometheus` exports the
current values in the Prometheus text exposition format (v0.0.4) so the
same numbers a health monitor consumes in-simulation are also readable
by standard tooling.

The registry never *computes* anything itself: a series is a zero-arg
callback into the owning component (scheduler queue, network, cache),
so sampling reads the live simulation state without copies or
double-bookkeeping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.clarity.tsdb import TimeSeriesStore
from repro.errors import SimulationError
from repro.simulator import Environment

__all__ = [
    "TelemetryRegistry",
    "TelemetrySampler",
    "TelemetrySample",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sorted (key, value) pairs -- hashable, deterministic label identity.
Labels = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class TelemetrySample:
    """One sampled value of one labeled series."""

    t: float
    name: str
    labels: Labels
    value: float


@dataclass
class _Metric:
    name: str
    help_text: str
    kind: str  # "gauge" | "counter"
    series: Dict[Labels, Callable[[], float]] = field(default_factory=dict)


class TelemetryRegistry:
    """Named gauge/counter series backed by live callbacks.

    Sampled history lives in a per-series ring-buffer
    :class:`~repro.clarity.tsdb.TimeSeriesStore` (``capacity_per_series``
    points per series, optionally age-bounded by ``retention_s``), so an
    always-on serving run holds a sliding window of telemetry rather
    than an ever-growing flat list, and :meth:`history` is a per-series
    lookup instead of a scan over every sample ever taken.
    """

    def __init__(self, capacity_per_series: int = 4096,
                 retention_s: Optional[float] = None) -> None:
        self._metrics: Dict[str, _Metric] = {}
        #: Ring-buffered time-series history appended by :meth:`sample`.
        self.store = TimeSeriesStore(
            capacity_per_series=capacity_per_series,
            retention_s=retention_s)

    @property
    def retention_s(self) -> Optional[float]:
        """The store's age bound (None when only capacity-bounded)."""
        return self.store.retention_s

    def gauge(self, name: str, help_text: str,
              callback: Callable[[], float], **labels: object) -> None:
        """Register a gauge series (a value that can go up and down)."""
        self._register(name, help_text, "gauge", callback, labels)

    def counter(self, name: str, help_text: str,
                callback: Callable[[], float], **labels: object) -> None:
        """Register a counter series (monotonically non-decreasing)."""
        self._register(name, help_text, "counter", callback, labels)

    def _register(self, name: str, help_text: str, kind: str,
                  callback: Callable[[], float],
                  labels: Dict[str, object]) -> None:
        if not _NAME_RE.match(name):
            raise SimulationError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise SimulationError(
                    f"invalid label name {label!r} on metric {name!r}")
            if label.startswith("__"):
                # Prometheus reserves double-underscore label names for
                # internal use; exporting one breaks real scrapers.
                raise SimulationError(
                    f"label name {label!r} on metric {name!r} is "
                    f"reserved (double-underscore prefix)")
        metric = self._metrics.get(name)
        if metric is None:
            metric = _Metric(name, help_text, kind)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise SimulationError(
                f"metric {name!r} registered as both {metric.kind} "
                f"and {kind}")
        elif metric.help_text != help_text:
            # Two registrations disagreeing about what the metric means
            # is a bug in the caller, and the exposition format has one
            # HELP line per metric -- first writer would silently win.
            raise SimulationError(
                f"metric {name!r} registered with conflicting help "
                f"text: {metric.help_text!r} vs {help_text!r}")
        key: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        if key in metric.series:
            raise SimulationError(
                f"duplicate series {name}{dict(key)!r}")
        metric.series[key] = callback

    # -- reading -------------------------------------------------------------------

    def metric_names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def read(self) -> Dict[str, List[Tuple[Labels, float]]]:
        """Current value of every series, by metric name (sorted)."""
        out: Dict[str, List[Tuple[Labels, float]]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = [(labels, float(metric.series[labels]()))
                         for labels in sorted(metric.series)]
        return out

    def latest(self, name: str, **labels: object) -> float:
        """Current value of one series (calls its callback now)."""
        metric = self._metrics.get(name)
        if metric is None:
            raise SimulationError(f"unknown metric {name!r}")
        key: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        callback = metric.series.get(key)
        if callback is None:
            raise SimulationError(
                f"unknown series {name}{dict(key)!r}; have "
                f"{[dict(k) for k in sorted(metric.series)]}")
        return float(callback())

    def sample(self, now: float) -> None:
        """Snapshot every series into :attr:`store` at time ``now``."""
        for name, series in self.read().items():
            for labels, value in series:
                self.store.append(name, now, value, labels=labels)

    def history(self, name: str, **labels: object) -> List[Tuple[float, float]]:
        """(t, value) points retained for one series (per-series lookup)."""
        key: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self.store.points(name, labels=key)

    @property
    def samples(self) -> List[TelemetrySample]:
        """Every retained sample, flattened and time-ordered.

        A compatibility view over :attr:`store`: bounded by the ring
        buffers, so on long runs it is the recent window, not all of
        history.  Prefer :meth:`history` or :attr:`store` queries.
        """
        out = [TelemetrySample(t=t, name=name, labels=labels, value=value)
               for name, labels in self.store.series()
               for t, value in self.store.points(name, labels=labels)]
        out.sort(key=lambda s: (s.t, s.name, s.labels))
        return out

    def render_prometheus(self, now: Optional[float] = None,
                          windows: Sequence[float] = (),
                          window_aggs: Sequence[str] = ("mean", "p95"),
                          ) -> str:
        """The current values in Prometheus text exposition format."""
        return render_prometheus(self, now=now, windows=windows,
                                 window_aggs=window_aggs)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _window_suffix(window_s: float) -> str:
    # "60" -> "60s", "1.5" -> "1_5s": metric names cannot contain ".".
    return f"{window_s:g}".replace(".", "_").replace("+", "").replace(
        "-", "_") + "s"


def _series_line(name: str, labels: Labels, value: float) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in labels)
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(registry: TelemetryRegistry,
                      now: Optional[float] = None,
                      windows: Sequence[float] = (),
                      window_aggs: Sequence[str] = ("mean", "p95"),
                      ) -> str:
    """Render a registry's live values as a Prometheus exposition page.

    Output is deterministic: metrics sorted by name, series by label
    set.  ``now`` (simulated seconds) is attached as a trailing comment,
    not a Prometheus timestamp, because simulated time is not epoch
    milliseconds.

    For each window in ``windows`` (seconds) and each aggregation in
    ``window_aggs``, additional recording-rule-style gauges named
    ``<metric>:<agg>_<window>s`` are emitted from the registry's sampled
    ring-buffer history -- e.g. ``repro_serve_running_jobs:p95_60s``.
    Series with no samples in the window are omitted.
    """
    lines: List[str] = []
    if now is not None:
        lines.append(f"# simulated_time_seconds {now!r}")
    for name, series in registry.read().items():
        metric = registry._metrics[name]
        lines.append(f"# HELP {name} {metric.help_text}")
        lines.append(f"# TYPE {name} {metric.kind}")
        for labels, value in series:
            lines.append(_series_line(name, labels, value))
        for window_s in windows:
            for agg in window_aggs:
                agg_lines: List[str] = []
                for labels, _ in series:
                    value = registry.store.aggregate(
                        name, agg, window_s=window_s, now=now, labels=labels)
                    if value is None:
                        continue
                    agg_lines.append(_series_line(
                        f"{name}:{agg}_{_window_suffix(window_s)}",
                        labels, value))
                if agg_lines:
                    agg_name = f"{name}:{agg}_{_window_suffix(window_s)}"
                    lines.append(
                        f"# HELP {agg_name} {window_s:g}s-window {agg} of "
                        f"{name}")
                    lines.append(f"# TYPE {agg_name} gauge")
                    lines.extend(agg_lines)
    return "\n".join(lines) + "\n"


class TelemetrySampler:
    """Samples a registry on a fixed simulated-time cadence.

    Start it before ``env.run`` (or any time mid-run); it snapshots
    immediately, then every ``interval_s`` until stopped.  Like the
    health monitor's tick loop, it schedules a timeout per tick, so runs
    driven by ``env.run(until=...)`` simply stop observing at ``until``;
    call :meth:`stop` before an open-ended ``env.run()`` drain.
    """

    def __init__(self, env: Environment, registry: TelemetryRegistry,
                 interval_s: float = 1.0) -> None:
        if not interval_s > 0:
            raise SimulationError(
                f"sampler interval must be positive, got {interval_s!r}")
        self.env = env
        self.registry = registry
        self.interval_s = interval_s
        self._running = False
        self._process = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.env.process(self._run())

    def stop(self) -> None:
        """Stop sampling after the current tick (idempotent)."""
        self._running = False

    def _run(self):
        while self._running:
            self.registry.sample(self.env.now)
            yield self.env.timeout(self.interval_s)
