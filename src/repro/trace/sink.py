"""Streaming span/link sinks for long serving runs.

The in-memory span list in :class:`~repro.metrics.collector.
MetricsCollector` is fine for batch jobs, but a serving run that lives
for hours of simulated time should stream its trace out instead of
holding it.  A sink attached via ``MetricsCollector.add_span_sink``
receives every span when it *closes* (spans are emitted complete, never
half-open) and every link when it is recorded.

Every emitted line carries a ``schema`` version field
(:data:`TRACE_SCHEMA`) so downstream readers -- the capsule loader in
``repro.xray`` and ``scripts/validate_trace.py`` -- can refuse lines
they do not understand instead of misparsing them.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.trace.spans import SpanLink, SpanRecord, link_to_json, span_to_json

__all__ = ["JsonlSpanSink", "TRACE_SCHEMA"]

#: Version stamped into every JSONL line this module writes.  Bump when
#: the per-line shape changes incompatibly.
TRACE_SCHEMA = 1


class JsonlSpanSink:
    """Writes one JSON object per line: finished spans and links.

    Usage::

        with JsonlSpanSink("trace.jsonl") as sink:
            ctx.metrics.add_span_sink(sink)
            ... run jobs ...

    The output is deterministic: key order is fixed by the
    ``span_to_json``/``link_to_json`` helpers and floats are emitted
    with ``repr`` precision, so identical runs produce identical files.
    Each line gains a trailing ``schema`` field with :data:`TRACE_SCHEMA`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w")
        self.spans_written = 0
        self.links_written = 0

    def span_finished(self, span: SpanRecord) -> None:
        """Write one closed span."""
        if self._write(span_to_json(span)):
            self.spans_written += 1

    def link_recorded(self, link: SpanLink) -> None:
        """Write one causal link."""
        if self._write(link_to_json(link)):
            self.links_written += 1

    def _write(self, record: dict) -> bool:
        if self._handle is None:
            return False  # Closed: late stragglers are dropped, not an error.
        record["schema"] = TRACE_SCHEMA
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        return True

    def flush(self) -> None:
        """Push buffered lines to the OS (no-op after close)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
