"""Streaming span/link sinks for long serving runs.

The in-memory span list in :class:`~repro.metrics.collector.
MetricsCollector` is fine for batch jobs, but a serving run that lives
for hours of simulated time should stream its trace out instead of
holding it.  A sink attached via ``MetricsCollector.add_span_sink``
receives every span when it *closes* (spans are emitted complete, never
half-open) and every link when it is recorded.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.trace.spans import SpanLink, SpanRecord, link_to_json, span_to_json

__all__ = ["JsonlSpanSink"]


class JsonlSpanSink:
    """Writes one JSON object per line: finished spans and links.

    Usage::

        sink = JsonlSpanSink("trace.jsonl")
        ctx.metrics.add_span_sink(sink)
        ... run jobs ...
        sink.close()

    The output is deterministic: key order is fixed by the
    ``span_to_json``/``link_to_json`` helpers and floats are emitted
    with ``repr`` precision, so identical runs produce identical files.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w")
        self.spans_written = 0
        self.links_written = 0

    def span_finished(self, span: SpanRecord) -> None:
        """Write one closed span."""
        if self._write(span_to_json(span)):
            self.spans_written += 1

    def link_recorded(self, link: SpanLink) -> None:
        """Write one causal link."""
        if self._write(link_to_json(link)):
            self.links_written += 1

    def _write(self, record: dict) -> bool:
        if self._handle is None:
            return False  # Closed: late stragglers are dropped, not an error.
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        return True

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
