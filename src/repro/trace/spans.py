"""The causal span model: what performance clarity looks like as data.

A *span* is one timed unit of the execution hierarchy -- job, stage,
task attempt, or monotask phase -- identified by a ``span_id`` and
parented into a tree per job (the *trace*).  A *link* is a causal edge
that the tree cannot express: stage DAG edges, shuffle producer ->
consumer fetches, resource-queue waits, retries, speculation, and
health-driven re-dispatch.

The span tree is the paper's §3 thesis made recordable: because each
monotask uses exactly one resource, every leaf span carries an exact
``(resource, machine, phase)`` label plus its queue time, so walking
the tree answers "which causal chain of waits and work determined this
job's runtime" (see :mod:`repro.trace.critpath`).  The Spark-style
engine produces the same job/stage/attempt spans but *no* monotask
leaves -- its blended tasks cannot be decomposed, which is the §6.6
contrast in span form.

Everything here is a plain dataclass so spans serialize losslessly to
JSONL (:mod:`repro.trace.sink`) and to Chrome trace events
(:mod:`repro.metrics.chrometrace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "TraceContext",
    "SpanRecord",
    "SpanLink",
    "SPAN_JOB",
    "SPAN_STAGE",
    "SPAN_ATTEMPT",
    "SPAN_MONOTASK",
    "SPAN_FAILOVER",
    "LINK_DAG_EDGE",
    "LINK_SHUFFLE_FETCH",
    "LINK_QUEUE_WAIT",
    "LINK_RETRY",
    "LINK_SPECULATION",
    "LINK_REDISPATCH",
    "LINK_DATASVC_READ",
    "LINK_DATASVC_WRITE",
    "LINK_FAILOVER_RESUME",
    "span_to_json",
    "link_to_json",
]

#: Span kinds, from root to leaf.
SPAN_JOB = "job"
SPAN_STAGE = "stage"
SPAN_ATTEMPT = "attempt"
SPAN_MONOTASK = "monotask"
#: A control-plane failover: detection of a dead driver through the
#: adopter finishing checkpoint restore (not parented under any job).
SPAN_FAILOVER = "failover"

#: Causal link kinds.
LINK_DAG_EDGE = "dag-edge"
LINK_SHUFFLE_FETCH = "shuffle-fetch"
LINK_QUEUE_WAIT = "queue-wait"
LINK_RETRY = "retry"
LINK_SPECULATION = "speculation"
LINK_REDISPATCH = "redispatch"
#: Data-service causal edges: a storage-node read serving a client
#: fetch, and a client write landing in the data tier.
LINK_DATASVC_READ = "datasvc-read"
LINK_DATASVC_WRITE = "datasvc-write"
#: A failover span to the root span of each in-flight job the adopting
#: driver resumed (rather than replayed) after a driver crash.
LINK_FAILOVER_RESUME = "failover-resume"


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span, parent) triple threaded through the engines.

    Minted once per job by the :class:`~repro.metrics.collector.
    MetricsCollector`, then re-derived at each level: the stage runner
    gets the job's context, each task attempt gets a stage-parented
    context, and each monotask a attempt-parented one.  Immutable so a
    context can be shared freely between concurrent attempts.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int] = None

    def child(self, span_id: int) -> "TraceContext":
        """A context for a new span parented under this one."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            parent_id=self.span_id)


@dataclass(slots=True)
class SpanRecord:
    """One timed node of a job's span tree."""

    span_id: int
    trace_id: str
    parent_id: Optional[int]
    kind: str  # SPAN_JOB | SPAN_STAGE | SPAN_ATTEMPT | SPAN_MONOTASK
    name: str
    start: float
    end: float = float("nan")
    #: Machine the span ran on; -1 for driver-side spans (job/stage).
    machine_id: int = -1
    #: Resource a leaf span used (cpu/disk/network); "" above the leaves.
    resource: str = ""
    #: Monotask phase (input_read/compute/...); "" above the leaves.
    phase: str = ""
    #: Seconds spent waiting at the resource scheduler before service.
    queue_s: float = 0.0
    nbytes: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Service seconds (end minus start; NaN while open)."""
        return self.end - self.start

    @property
    def submitted(self) -> float:
        """When the span's work was submitted (start minus queue time)."""
        return self.start - self.queue_s

    @property
    def finished(self) -> bool:
        """True once the span has been closed."""
        return self.end == self.end  # not NaN


@dataclass
class SpanLink:
    """A causal edge between two spans that the tree cannot express."""

    from_span_id: int
    to_span_id: int
    kind: str
    trace_id: str
    at: float = float("nan")
    detail: str = ""


def span_to_json(span: SpanRecord) -> Dict[str, Any]:
    """A stable, JSONL-ready dict for one span."""
    record: Dict[str, Any] = {
        "type": "span",
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "machine_id": span.machine_id,
    }
    if span.resource:
        record["resource"] = span.resource
    if span.phase:
        record["phase"] = span.phase
    if span.queue_s:
        record["queue_s"] = span.queue_s
    if span.nbytes:
        record["nbytes"] = span.nbytes
    if span.attrs:
        record["attrs"] = dict(sorted(span.attrs.items()))
    return record


def link_to_json(link: SpanLink) -> Dict[str, Any]:
    """A stable, JSONL-ready dict for one link."""
    record: Dict[str, Any] = {
        "type": "link",
        "from": link.from_span_id,
        "to": link.to_span_id,
        "kind": link.kind,
        "trace_id": link.trace_id,
    }
    if link.at == link.at:
        record["at"] = link.at
    if link.detail:
        record["detail"] = link.detail
    return record
