"""Critical-path extraction and attribution over a job's span tree.

The question the paper's §3 promises an answer to: *which causal chain
of waits and work determined this job's runtime, and on which
resource/machine?*  With monotask leaf spans the answer is computable:
every instant of the job's wall-clock window is covered by some
monotask's service time, by its wait in a per-resource scheduler queue
(``queue_s``), or by driver-side coordination between spans.  The
critical path is found with a backward walk: start at the job's end,
repeatedly jump to the start of the covering interval whose start is
latest (the *binding* one -- nothing that ends earlier could have been
the reason this instant was still busy), and attribute each traversed
segment to its (resource, machine, phase).

By construction the returned segments partition the job's window
exactly, so their durations sum to the job's wall-clock duration --
the invariant the tests pin.

The Spark engine's runs produce only blended attempt spans: the walk
still works, but every segment is labeled with the pseudo-resource
``task`` and the report says so (*not attributable*) instead of
pretending -- §6.6's contrast, executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.trace.spans import SPAN_ATTEMPT, SPAN_MONOTASK, SpanRecord

__all__ = ["PathSegment", "CriticalPathReport", "critical_path"]

#: Segment kinds.
SERVICE = "service"
QUEUE = "queue"
DRIVER = "driver"

#: Pseudo-resource for blended Spark attempt spans and driver gaps.
TASK = "task"

#: Ignore intervals shorter than this when walking (guards against
#: zero-length spans stalling the backward walk).
_EPS = 1e-12


@dataclass(frozen=True)
class PathSegment:
    """One contiguous piece of the critical path."""

    start: float
    end: float
    kind: str  # SERVICE | QUEUE | DRIVER
    resource: str  # cpu/disk/network, "task" (blended), or "driver"
    machine_id: int  # -1 for driver segments
    phase: str  # monotask phase; "" for driver/blended segments
    span_id: int  # span the segment came from; -1 for driver gaps

    @property
    def duration(self) -> float:
        """Seconds this segment spans."""
        return self.end - self.start

    @property
    def label(self) -> str:
        """Human label: ``disk queue``, ``cpu``, ``driver``, ..."""
        if self.kind == DRIVER:
            return DRIVER
        if self.kind == QUEUE:
            return f"{self.resource} queue"
        return self.resource


class _Interval:
    """A candidate covering interval derived from one span.

    A plain ``__slots__`` class, not a dataclass: one is built per span
    per job on the always-on clarity path, and the precomputed
    ``sort_key`` (latest start wins; deterministic tie-breaks after
    that) is what the walk's max-heap orders by.
    """

    __slots__ = ("start", "end", "kind", "resource", "machine_id",
                 "phase", "span_id", "sort_key")

    def __init__(self, start: float, end: float, kind: str, resource: str,
                 machine_id: int, phase: str, span_id: int) -> None:
        self.start = start
        self.end = end
        self.kind = kind
        self.resource = resource
        self.machine_id = machine_id
        self.phase = phase
        self.span_id = span_id
        self.sort_key: Tuple = (start, kind == SERVICE, resource,
                                machine_id, phase, span_id)


class _MaxEntry:
    """Heap entry that inverts comparison, turning ``heapq``'s min-heap
    into a max-heap over ``_Interval.sort_key``."""

    __slots__ = ("key", "interval")

    def __init__(self, interval: _Interval) -> None:
        self.key = interval.sort_key
        self.interval = interval

    def __lt__(self, other: "_MaxEntry") -> bool:
        return self.key > other.key


class CriticalPathReport:
    """The critical path of one job plus attribution roll-ups."""

    def __init__(self, job_id: int, name: str, start: float, end: float,
                 segments: List[PathSegment], attributable: bool,
                 engine: str = "") -> None:
        self.job_id = job_id
        self.name = name
        self.start = start
        self.end = end
        #: Chronological (start -> end) partition of the job's window.
        self.segments = segments
        #: True when monotask leaf spans existed: per-resource clarity.
        self.attributable = attributable
        self.engine = engine

    @property
    def duration(self) -> float:
        """The job's wall-clock seconds."""
        return self.end - self.start

    @property
    def total_attributed(self) -> float:
        """Sum of segment durations (== :attr:`duration` by invariant)."""
        return sum(segment.duration for segment in self.segments)

    def by_label(self) -> Dict[str, float]:
        """Seconds per segment label (``disk queue``, ``cpu``, ...)."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            totals[segment.label] = (totals.get(segment.label, 0.0)
                                     + segment.duration)
        return totals

    def by_machine(self) -> Dict[int, float]:
        """Seconds per machine (driver segments under -1)."""
        totals: Dict[int, float] = {}
        for segment in self.segments:
            totals[segment.machine_id] = (
                totals.get(segment.machine_id, 0.0) + segment.duration)
        return totals

    def by_phase(self) -> Dict[str, float]:
        """Seconds per monotask phase (driver gaps under ``driver``)."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            phase = segment.phase or DRIVER
            totals[phase] = totals.get(phase, 0.0) + segment.duration
        return totals

    def fractions(self) -> Dict[str, float]:
        """Fraction of the critical path per label (sums to 1.0)."""
        duration = self.duration
        if duration <= 0:
            return {}
        return {label: seconds / duration
                for label, seconds in self.by_label().items()}

    def dominant(self) -> Tuple[str, int, float]:
        """(label, machine, seconds) of the single largest contributor."""
        totals: Dict[Tuple[str, int], float] = {}
        for segment in self.segments:
            key = (segment.label, segment.machine_id)
            totals[key] = totals.get(key, 0.0) + segment.duration
        (label, machine), seconds = max(
            totals.items(), key=lambda item: (item[1], item[0]))
        return label, machine, seconds

    def format(self) -> str:
        """A stable, human-readable attribution report."""
        lines = [
            f"critical path: job {self.job_id} ({self.name})"
            + (f" on {self.engine}" if self.engine else ""),
            f"  wall-clock: {self.duration:.3f}s in "
            f"{len(self.segments)} segments",
        ]
        if not self.attributable:
            lines.append(
                "  NOT ATTRIBUTABLE: this engine runs blended tasks that "
                "pipeline cpu, disk, and network internally; without "
                "per-resource monotask spans the path cannot be decomposed "
                "by resource (the paper's Section 3 / 6.6 contrast).")
        duration = self.duration if self.duration > 0 else 1.0
        by_label = sorted(self.by_label().items(),
                          key=lambda item: (-item[1], item[0]))
        lines.append("  by resource:")
        for label, seconds in by_label:
            lines.append(f"    {label:<16} {seconds:>9.3f}s  "
                         f"{100.0 * seconds / duration:5.1f}%")
        lines.append("  by machine:")
        for machine, seconds in sorted(self.by_machine().items()):
            where = "driver" if machine < 0 else f"machine {machine}"
            lines.append(f"    {where:<16} {seconds:>9.3f}s  "
                         f"{100.0 * seconds / duration:5.1f}%")
        if self.attributable:
            lines.append("  by phase:")
            for phase, seconds in sorted(
                    self.by_phase().items(),
                    key=lambda item: (-item[1], item[0])):
                lines.append(f"    {phase:<16} {seconds:>9.3f}s  "
                             f"{100.0 * seconds / duration:5.1f}%")
            label, machine, seconds = self.dominant()
            where = "driver" if machine < 0 else f"machine {machine}"
            lines.append(
                f"  dominant: {100.0 * seconds / duration:.1f}% of the "
                f"critical path is {label} on {where}")
        return "\n".join(lines)


def _intervals_for_job(spans: List[SpanRecord],
                       lo: float, hi: float) -> Tuple[List[_Interval], bool]:
    """Candidate covering intervals from a job's spans, clamped to the
    job window.  Returns (intervals, attributable)."""
    monotask_spans = [s for s in spans
                      if s.kind == SPAN_MONOTASK and s.finished]
    attributable = bool(monotask_spans)
    intervals: List[_Interval] = []

    def add(start: float, end: float, kind: str, resource: str,
            machine_id: int, phase: str, span_id: int) -> None:
        start, end = max(start, lo), min(end, hi)
        if end - start > _EPS:
            intervals.append(_Interval(start, end, kind, resource,
                                       machine_id, phase, span_id))

    if attributable:
        for span in monotask_spans:
            add(span.start, span.end, SERVICE, span.resource,
                span.machine_id, span.phase, span.span_id)
            if span.queue_s > _EPS:
                add(span.submitted, span.start, QUEUE, span.resource,
                    span.machine_id, span.phase, span.span_id)
    else:
        # Blended-engine fallback: attempts are the finest grain.
        for span in spans:
            if span.kind == SPAN_ATTEMPT and span.finished:
                add(span.start, span.end, SERVICE, TASK,
                    span.machine_id, "", span.span_id)
    return intervals, attributable


def critical_path(metrics, job_id: int,
                  engine: str = "") -> CriticalPathReport:
    """Extract and attribute one finished job's critical path.

    ``metrics`` is a :class:`~repro.metrics.collector.MetricsCollector`
    (duck-typed: needs ``jobs`` and ``spans_for_job``).
    """
    job = metrics.jobs.get(job_id)
    if job is None:
        raise SimulationError(
            f"critical path requested for unknown job id {job_id}; "
            f"known jobs: {sorted(metrics.jobs)}")
    if not (job.end == job.end):  # NaN: still running
        raise SimulationError(
            f"critical path requested for unfinished job {job_id}")
    lo, hi = job.start, job.end
    spans = metrics.spans_for_job(job_id)
    intervals, attributable = _intervals_for_job(spans, lo, hi)

    # Backward walk: at each point t, the binding interval is the one
    # covering t whose start is latest; gaps no interval covers are
    # driver coordination.  Implemented as a sweep: both halves of the
    # covering test are monotone as t decreases (``end >= t - eps``
    # becomes true and stays true; ``start < t - eps`` becomes false and
    # stays false), so intervals enter a max-heap over ``sort_key`` as t
    # passes their end and are lazily discarded once their start can no
    # longer precede t.  Each interval is pushed and popped at most
    # once -- O(n log n) -- and because ``sort_key`` leads with
    # ``start``, the heap top after discarding is exactly the interval
    # the old per-step ``max(covering)`` rescan selected.
    by_end = sorted(intervals, key=lambda iv: iv.end, reverse=True)
    pending: List[_MaxEntry] = []
    next_in = 0
    total = len(by_end)
    segments: List[PathSegment] = []
    t = hi
    while t - lo > _EPS:
        while next_in < total and by_end[next_in].end >= t - _EPS:
            heappush(pending, _MaxEntry(by_end[next_in]))
            next_in += 1
        while pending and pending[0].interval.start >= t - _EPS:
            heappop(pending)
        if pending:
            binding = pending[0].interval
            cut = max(binding.start, lo)
            segments.append(PathSegment(
                start=cut, end=t, kind=binding.kind,
                resource=binding.resource, machine_id=binding.machine_id,
                phase=binding.phase, span_id=binding.span_id))
            t = cut
            continue
        # Driver gap.  Everything ending at-or-after t has been
        # inserted, so the next uninserted interval (if any) holds the
        # latest end before t.
        cut = max(by_end[next_in].end, lo) if next_in < total else lo
        segments.append(PathSegment(
            start=cut, end=t, kind=DRIVER, resource=DRIVER,
            machine_id=-1, phase="", span_id=-1))
        t = cut
    segments.reverse()

    # Make the partition exact: abutting segments already share
    # endpoints, and the first/last are clamped to the job window.
    return CriticalPathReport(job_id=job_id, name=job.name, start=lo,
                              end=hi, segments=segments,
                              attributable=attributable, engine=engine)
