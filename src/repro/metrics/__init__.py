"""Metrics: structured records, collection, utilization, reporting."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.events import (CPU, DISK, NETWORK, JobRecord,
                                  MonotaskRecord, PHASE_CLEANUP,
                                  PHASE_COMPUTE, PHASE_INPUT_READ,
                                  PHASE_OUTPUT_WRITE, PHASE_SETUP,
                                  PHASE_SHUFFLE_READ, PHASE_SHUFFLE_SERVE,
                                  PHASE_SHUFFLE_WRITE, ResourceUsageRecord,
                                  ServeRecord, StageRecord, TaskRecord)
from repro.metrics.report import format_seconds, format_table, print_table
from repro.metrics.timeline import render_timeline
from repro.metrics.utilization import (UtilizationSummary,
                                       machine_utilization, percentile,
                                       sample_utilization, summarize_machine)

__all__ = [
    "MetricsCollector",
    "MonotaskRecord",
    "ResourceUsageRecord",
    "TaskRecord",
    "StageRecord",
    "JobRecord",
    "ServeRecord",
    "CPU",
    "DISK",
    "NETWORK",
    "PHASE_INPUT_READ",
    "PHASE_SHUFFLE_READ",
    "PHASE_SHUFFLE_WRITE",
    "PHASE_OUTPUT_WRITE",
    "PHASE_SHUFFLE_SERVE",
    "PHASE_COMPUTE",
    "PHASE_SETUP",
    "PHASE_CLEANUP",
    "format_seconds",
    "format_table",
    "print_table",
    "render_timeline",
    "UtilizationSummary",
    "machine_utilization",
    "percentile",
    "sample_utilization",
    "summarize_machine",
]
