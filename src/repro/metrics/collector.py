"""Collects the structured records and causal spans emitted during
simulation.

Besides the flat per-record lists, the collector owns the *span tree*
of every job (:mod:`repro.trace.spans`): it mints span ids, opens and
closes job/stage/attempt spans, synthesizes monotask leaf spans from
:class:`MonotaskRecord` self-reports, and records causal links (DAG
edges, shuffle fetches, queue waits, retries, speculation).  Attached
sinks (:class:`~repro.trace.sink.JsonlSpanSink`) stream spans out as
they close, so long serving runs need not hold their trace in memory.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.metrics.events import (CPU, DISK, NETWORK, AlertEventRecord,
                                  DriverEventRecord, FaultEventRecord,
                                  HealthEventRecord,
                                  JobRecord, MonotaskRecord,
                                  ResourceUsageRecord, ServeRecord,
                                  SpeculationRecord, StageRecord,
                                  TaskAttemptRecord, TaskRecord,
                                  TransferRecord)
from repro.trace.spans import (LINK_DAG_EDGE, LINK_QUEUE_WAIT,
                               LINK_REDISPATCH, LINK_RETRY,
                               LINK_SHUFFLE_FETCH, LINK_SPECULATION,
                               SPAN_ATTEMPT, SPAN_JOB, SPAN_MONOTASK,
                               SPAN_STAGE, SpanLink, SpanRecord,
                               TraceContext)

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates monotask/task/stage/job records for one engine run."""

    def __init__(self) -> None:
        self.monotasks: List[MonotaskRecord] = []
        self.resource_usage: List[ResourceUsageRecord] = []
        self.tasks: List[TaskRecord] = []
        self.attempts: List[TaskAttemptRecord] = []
        self.faults: List[FaultEventRecord] = []
        self.health_events: List[HealthEventRecord] = []
        self.driver_events: List[DriverEventRecord] = []
        self.transfers: List[TransferRecord] = []
        self.speculations: List[SpeculationRecord] = []
        self.serves: List[ServeRecord] = []
        self.alerts: List[AlertEventRecord] = []
        self.stages: Dict[Tuple[int, int], StageRecord] = {}
        self.jobs: Dict[int, JobRecord] = {}
        #: Every span ever opened, in open order (leaves are appended
        #: closed; container spans close in place).
        self.spans: List[SpanRecord] = []
        #: Causal links between spans, in record order.
        self.links: List[SpanLink] = []
        # Per-key views maintained at record time, so per-job queries
        # read only that job's records instead of scanning the full
        # history (which is quadratic over a long serving run).
        self._spans_by_trace: Dict[str, List[SpanRecord]] = {}
        self._links_by_trace: Dict[str, List[SpanLink]] = {}
        self._monotasks_by_job: Dict[int, List[MonotaskRecord]] = {}
        self._tasks_by_stage: Dict[Tuple[int, int], List[TaskRecord]] = {}
        self._usage_by_stage: Dict[Tuple[int, int],
                                   List[ResourceUsageRecord]] = {}
        self._attempts_by_job: Dict[int, List[TaskAttemptRecord]] = {}
        self._span_ids = count(1)
        self._open_spans: Dict[int, SpanRecord] = {}
        self._job_spans: Dict[int, SpanRecord] = {}
        self._stage_spans: Dict[Tuple[int, int], SpanRecord] = {}
        #: (job, stage, task_index) -> most recent attempt span, for
        #: retry/speculation links between consecutive attempts.
        self._last_attempt_spans: Dict[Tuple[int, int, int], SpanRecord] = {}
        self._sinks: List = []
        #: Per-(job, engine-label) cache of critical-path reports, so
        #: the clarity aggregator, alert exemplar resolution, and xray
        #: share one O(n log n) sweep per finished job instead of each
        #: redoing it.  Invalidated whenever a span lands on (or closes
        #: in) that job's trace.
        self._critpath_cache: Dict[Tuple[int, str], object] = {}
        #: Callables invoked as ``fn(source, record)`` when an event
        #: record lands (source: "fault" | "health" | "driver" |
        #: "serve" | "alert").  The observability plane subscribes here
        #: to fold every stream into one journal without per-call-site
        #: wiring.
        self._event_listeners: List = []

    def add_event_listener(self, listener) -> None:
        """Subscribe ``listener(source, record)`` to event records."""
        self._event_listeners.append(listener)

    def _notify(self, source: str, record) -> None:
        for listener in self._event_listeners:
            listener(source, record)

    # -- span plumbing -------------------------------------------------------------

    def new_span_id(self) -> int:
        """Mint a fresh span id (monotonic, deterministic)."""
        return next(self._span_ids)

    def add_span_sink(self, sink) -> None:
        """Stream closed spans and links to ``sink`` (JSONL et al.)."""
        self._sinks.append(sink)

    def record_span(self, span: SpanRecord) -> None:
        """Append a complete (already closed) span."""
        self.spans.append(span)
        self._spans_by_trace.setdefault(span.trace_id, []).append(span)
        self._invalidate_critpath(span.trace_id)
        for sink in self._sinks:
            sink.span_finished(span)

    def record_link(self, link: SpanLink) -> None:
        """Append one causal link."""
        self.links.append(link)
        self._links_by_trace.setdefault(link.trace_id, []).append(link)
        for sink in self._sinks:
            sink.link_recorded(link)

    def _open_span(self, span: SpanRecord) -> SpanRecord:
        self.spans.append(span)
        self._spans_by_trace.setdefault(span.trace_id, []).append(span)
        self._open_spans[span.span_id] = span
        return span

    def _close_span(self, span_id: int, now: float) -> None:
        span = self._open_spans.pop(span_id, None)
        if span is None:
            return
        span.end = now
        self._invalidate_critpath(span.trace_id)
        for sink in self._sinks:
            sink.span_finished(span)

    def _invalidate_critpath(self, trace_id: str) -> None:
        """Drop cached critical paths of the job a span just touched."""
        if not self._critpath_cache or not trace_id.startswith("job-"):
            return
        try:
            job_id = int(trace_id[4:])
        except ValueError:
            return
        stale = [key for key in self._critpath_cache if key[0] == job_id]
        for key in stale:
            del self._critpath_cache[key]

    def job_trace_id(self, job_id: int) -> str:
        """The trace id under which a job's spans are recorded."""
        return f"job-{job_id}"

    def spans_for_job(self, job_id: int) -> List[SpanRecord]:
        """All spans of one job's trace, in open order."""
        return list(self._spans_by_trace.get(self.job_trace_id(job_id), ()))

    def links_for_job(self, job_id: int) -> List[SpanLink]:
        """All causal links of one job's trace."""
        return list(self._links_by_trace.get(self.job_trace_id(job_id), ()))

    # -- recording ----------------------------------------------------------------

    def record_monotask(self, record: MonotaskRecord,
                        trace: Optional[TraceContext] = None,
                        span_id: Optional[int] = None) -> None:
        """Append a monotask self-report.

        With a ``trace`` context the report also becomes a leaf span of
        the attempt that spawned the monotask, plus a queue-wait link
        when the monotask waited at its resource scheduler.
        """
        self.monotasks.append(record)
        self._monotasks_by_job.setdefault(record.job_id, []).append(record)
        if trace is None:
            return
        sid = span_id if span_id is not None else self.new_span_id()
        span = SpanRecord(
            span_id=sid, trace_id=trace.trace_id, parent_id=trace.span_id,
            kind=SPAN_MONOTASK, name=record.phase, start=record.start,
            end=record.end, machine_id=record.machine_id,
            resource=record.resource, phase=record.phase,
            queue_s=record.queue_s, nbytes=record.nbytes)
        if record.disk_index is not None:
            span.attrs["disk_index"] = record.disk_index
        self.record_span(span)
        if record.queue_s > 0:
            self.record_link(SpanLink(
                from_span_id=trace.span_id, to_span_id=sid,
                kind=LINK_QUEUE_WAIT, trace_id=trace.trace_id,
                at=record.start,
                detail=f"{record.resource} queue {record.queue_s:.6f}s"))

    def record_task_attempt(self, record: TaskAttemptRecord) -> None:
        """Append one task attempt's outcome."""
        self.attempts.append(record)
        self._attempts_by_job.setdefault(record.job_id, []).append(record)

    def record_fault(self, record: FaultEventRecord) -> None:
        """Append one injected-fault event."""
        self.faults.append(record)
        self._notify("fault", record)

    def record_health(self, record: HealthEventRecord) -> None:
        """Append one health-monitor decision."""
        self.health_events.append(record)
        self._notify("health", record)

    def record_driver(self, record: DriverEventRecord) -> None:
        """Append one control-plane membership/failover decision."""
        self.driver_events.append(record)
        self._notify("driver", record)

    def record_alert(self, record: AlertEventRecord) -> None:
        """Append one alert-lifecycle transition."""
        self.alerts.append(record)
        self._notify("alert", record)

    def alert_records(self, kind: Optional[str] = None,
                      rule: Optional[str] = None) -> List[AlertEventRecord]:
        """Alert transitions, optionally filtered by kind and/or rule."""
        return [a for a in self.alerts
                if (kind is None or a.kind == kind)
                and (rule is None or a.rule == rule)]

    def driver_records(self, kind: Optional[str] = None
                       ) -> List[DriverEventRecord]:
        """Control-plane events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self.driver_events)
        return [d for d in self.driver_events if d.kind == kind]

    def record_transfer(self, record: TransferRecord) -> None:
        """Append one receiver-measured per-source response flow."""
        self.transfers.append(record)

    def record_speculation(self, record: SpeculationRecord) -> None:
        """Append one speculative-launch event."""
        self.speculations.append(record)

    def record_resource_usage(self, record: ResourceUsageRecord) -> None:
        """Append a Spark-engine per-task ground-truth record."""
        self.resource_usage.append(record)
        self._usage_by_stage.setdefault(
            (record.job_id, record.stage_id), []).append(record)

    def record_serve(self, record: ServeRecord) -> None:
        """Append one served (or shed) job request."""
        self.serves.append(record)
        self._notify("serve", record)

    def task_started(self, job_id: int, stage_id: int, task_index: int,
                     machine_id: int, now: float) -> TaskRecord:
        """Open a task record; the caller fills in ``end`` later."""
        record = TaskRecord(job_id, stage_id, task_index, machine_id,
                            start=now)
        self.tasks.append(record)
        self._tasks_by_stage.setdefault((job_id, stage_id), []).append(record)
        return record

    def stage_started(self, job_id: int, stage_id: int, name: str,
                      num_tasks: int, now: float,
                      parent_stage_ids: Optional[Iterable[int]] = None
                      ) -> TraceContext:
        """Open a stage record and its span under the job's span.

        ``parent_stage_ids`` records DAG-edge links from each parent
        stage's span, capturing *why* this stage could not start
        earlier.
        """
        self.stages[(job_id, stage_id)] = StageRecord(
            job_id, stage_id, name, num_tasks, start=now)
        job_span = self._job_spans.get(job_id)
        trace_id = (job_span.trace_id if job_span is not None
                    else self.job_trace_id(job_id))
        parent = job_span.span_id if job_span is not None else None
        span = self._open_span(SpanRecord(
            span_id=self.new_span_id(), trace_id=trace_id, parent_id=parent,
            kind=SPAN_STAGE, name=name, start=now,
            attrs={"job_id": job_id, "stage_id": stage_id,
                   "num_tasks": num_tasks}))
        self._stage_spans[(job_id, stage_id)] = span
        for parent_stage in sorted(parent_stage_ids or ()):
            parent_span = self._stage_spans.get((job_id, parent_stage))
            if parent_span is not None:
                self.record_link(SpanLink(
                    from_span_id=parent_span.span_id,
                    to_span_id=span.span_id, kind=LINK_DAG_EDGE,
                    trace_id=trace_id, at=now,
                    detail=f"stage {parent_stage} -> stage {stage_id}"))
        return TraceContext(trace_id=trace_id, span_id=span.span_id,
                            parent_id=parent)

    def stage_finished(self, job_id: int, stage_id: int, now: float) -> None:
        """Close a stage record (and span)."""
        record = self.stages.get((job_id, stage_id))
        if record is None:
            raise SimulationError(
                f"stage_finished for unknown stage {stage_id} of job "
                f"{job_id}; known stages: {sorted(self.stages)}")
        record.end = now
        span = self._stage_spans.get((job_id, stage_id))
        if span is not None:
            self._close_span(span.span_id, now)

    def job_started(self, job_id: int, name: str, now: float) -> TraceContext:
        """Open a job record and the root span of the job's trace.

        Returns the job's :class:`TraceContext`; child spans derive
        theirs from it.  A duplicate job id is an engine bug, not a
        recoverable condition.
        """
        if job_id in self.jobs:
            raise SimulationError(
                f"job_started for duplicate job id {job_id} "
                f"({self.jobs[job_id].name!r} already started)")
        self.jobs[job_id] = JobRecord(job_id, name, start=now)
        trace_id = self.job_trace_id(job_id)
        span = self._open_span(SpanRecord(
            span_id=self.new_span_id(), trace_id=trace_id, parent_id=None,
            kind=SPAN_JOB, name=name, start=now, attrs={"job_id": job_id}))
        self._job_spans[job_id] = span
        return TraceContext(trace_id=trace_id, span_id=span.span_id)

    def job_finished(self, job_id: int, now: float) -> None:
        """Close a job record (and its root span)."""
        record = self.jobs.get(job_id)
        if record is None:
            raise SimulationError(
                f"job_finished for unknown job id {job_id}; known jobs: "
                f"{sorted(self.jobs)}")
        record.end = now
        span = self._job_spans.get(job_id)
        if span is not None:
            self._close_span(span.span_id, now)

    def attempt_started(self, job_id: int, stage_id: int, task_index: int,
                        attempt: int, machine_id: int, now: float,
                        speculative: bool = False,
                        cause: str = "") -> TraceContext:
        """Open an attempt span under its stage's span.

        For attempts beyond a task's first, a causal link is recorded
        from the previous attempt's span: ``retry`` for failure-driven
        relaunches, ``speculation`` for straggler clones, and
        ``redispatch`` for health-driven re-dispatch off an excluded
        machine.
        """
        stage_span = self._stage_spans.get((job_id, stage_id))
        trace_id = (stage_span.trace_id if stage_span is not None
                    else self.job_trace_id(job_id))
        parent = stage_span.span_id if stage_span is not None else None
        span = self._open_span(SpanRecord(
            span_id=self.new_span_id(), trace_id=trace_id, parent_id=parent,
            kind=SPAN_ATTEMPT,
            name=f"task {stage_id}.{task_index} attempt {attempt}",
            start=now, machine_id=machine_id,
            attrs={"job_id": job_id, "stage_id": stage_id,
                   "task_index": task_index, "attempt": attempt}))
        if speculative:
            span.attrs["speculative"] = True
        key = (job_id, stage_id, task_index)
        previous = self._last_attempt_spans.get(key)
        if previous is not None and previous.span_id != span.span_id:
            if cause == "health-redispatch":
                kind = LINK_REDISPATCH
            elif speculative:
                kind = LINK_SPECULATION
            else:
                kind = LINK_RETRY
            self.record_link(SpanLink(
                from_span_id=previous.span_id, to_span_id=span.span_id,
                kind=kind, trace_id=trace_id, at=now,
                detail=cause or f"attempt {attempt} on machine {machine_id}"))
        self._last_attempt_spans[key] = span
        return TraceContext(trace_id=trace_id, span_id=span.span_id,
                            parent_id=parent)

    def attempt_finished(self, trace: TraceContext, now: float,
                         outcome: str, detail: str = "") -> None:
        """Close an attempt span, stamping its outcome."""
        span = self._open_spans.get(trace.span_id)
        if span is not None:
            span.attrs["outcome"] = outcome
            if detail:
                span.attrs["detail"] = detail
        self._close_span(trace.span_id, now)

    # -- queries ------------------------------------------------------------------

    def critical_path_report(self, job_id: int, engine: str = ""):
        """The job's :class:`CriticalPathReport`, cached per job.

        The sweep in :func:`repro.trace.critpath.critical_path` is
        O(n log n) in the job's span count; every consumer of a
        finished job's attribution (clarity windows, alert exemplars,
        xray diffs) wants the same report, so compute it once and
        invalidate if a late span ever lands on the trace.
        """
        key = (job_id, engine)
        report = self._critpath_cache.get(key)
        if report is None:
            from repro.trace.critpath import critical_path
            report = critical_path(self, job_id, engine=engine)
            self._critpath_cache[key] = report
        return report

    def job(self, job_id: int) -> JobRecord:
        """The job's record."""
        return self.jobs[job_id]

    def job_duration(self, job_id: int) -> float:
        """Wall-clock seconds of one job."""
        return self.jobs[job_id].duration

    def stage_records(self, job_id: int) -> List[StageRecord]:
        """Stage records of a job, ordered by stage id."""
        return [record for (job, _), record in sorted(self.stages.items())
                if job == job_id]

    def stage_monotasks(self, job_id: int,
                        stage_id: Optional[int] = None
                        ) -> List[MonotaskRecord]:
        """Monotask reports of a job (optionally one stage)."""
        records = self._monotasks_by_job.get(job_id, ())
        if stage_id is None:
            return list(records)
        return [m for m in records if m.stage_id == stage_id]

    def stage_window(self, job_id: int, stage_id: int) -> Tuple[float, float]:
        """A stage's (start, end) wall-clock window."""
        record = self.stages[(job_id, stage_id)]
        return record.start, record.end

    def total_compute_seconds(self, job_id: int,
                              stage_id: Optional[int] = None) -> float:
        """Total compute-monotask seconds."""
        return sum(m.duration for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == CPU)

    def total_disk_bytes(self, job_id: int,
                         stage_id: Optional[int] = None) -> float:
        """Total disk-monotask bytes."""
        return sum(m.nbytes for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == DISK)

    def total_network_bytes(self, job_id: int,
                            stage_id: Optional[int] = None) -> float:
        """Total network-monotask bytes."""
        return sum(m.nbytes for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == NETWORK)

    def tasks_for_stage(self, job_id: int, stage_id: int) -> List[TaskRecord]:
        """Task records of one stage."""
        return list(self._tasks_by_stage.get((job_id, stage_id), ()))

    def usage_for_stage(self, job_id: int,
                        stage_id: int) -> List[ResourceUsageRecord]:
        """Spark ground-truth usage records of one stage."""
        return list(self._usage_by_stage.get((job_id, stage_id), ()))

    def attempts_for_job(self, job_id: int) -> List[TaskAttemptRecord]:
        """All task attempts of one job."""
        return list(self._attempts_by_job.get(job_id, ()))

    def attempt_outcome_counts(self,
                               job_id: Optional[int] = None
                               ) -> Dict[str, int]:
        """Attempts grouped by outcome (``success``/``failed``/...)."""
        counts: Dict[str, int] = {}
        for attempt in self.attempts:
            if job_id is not None and attempt.job_id != job_id:
                continue
            counts[attempt.outcome] = counts.get(attempt.outcome, 0) + 1
        return counts

    def serve_records(self, tenant: Optional[str] = None) -> List[ServeRecord]:
        """Serve records, optionally restricted to one tenant."""
        return [s for s in self.serves
                if tenant is None or s.tenant == tenant]

    def queue_seconds_by_resource(
            self, job_ids: Optional[Iterable[int]] = None
    ) -> Dict[str, float]:
        """Total monotask queue time per resource (cpu/disk/network).

        This is the §3.1 "visible contention": time monotasks spent
        waiting at the per-resource schedulers.  Only the MonoSpark
        engine emits monotask records, so for the Spark engine every
        total is zero -- queueing exists but cannot be attributed.
        """
        wanted = None if job_ids is None else set(job_ids)
        totals = {CPU: 0.0, DISK: 0.0, NETWORK: 0.0}
        for record in self.monotasks:
            if wanted is not None and record.job_id not in wanted:
                continue
            totals[record.resource] = (totals.get(record.resource, 0.0)
                                       + record.queue_s)
        return totals

    def health_records(self, kind: Optional[str] = None,
                       machine_id: Optional[int] = None
                       ) -> List[HealthEventRecord]:
        """Health events, optionally filtered by kind and/or machine."""
        return [h for h in self.health_events
                if (kind is None or h.kind == kind)
                and (machine_id is None or h.machine_id == machine_id)]

    def retry_count(self, job_id: Optional[int] = None) -> int:
        """Non-speculative attempts beyond each task's first."""
        return sum(1 for a in self.attempts
                   if a.attempt > 1 and not a.speculative
                   and (job_id is None or a.job_id == job_id))
