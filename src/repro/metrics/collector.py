"""Collects the structured records emitted during simulation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.events import (CPU, DISK, NETWORK, FaultEventRecord,
                                  HealthEventRecord, JobRecord,
                                  MonotaskRecord, ResourceUsageRecord,
                                  ServeRecord, SpeculationRecord,
                                  StageRecord, TaskAttemptRecord,
                                  TaskRecord, TransferRecord)

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates monotask/task/stage/job records for one engine run."""

    def __init__(self) -> None:
        self.monotasks: List[MonotaskRecord] = []
        self.resource_usage: List[ResourceUsageRecord] = []
        self.tasks: List[TaskRecord] = []
        self.attempts: List[TaskAttemptRecord] = []
        self.faults: List[FaultEventRecord] = []
        self.health_events: List[HealthEventRecord] = []
        self.transfers: List[TransferRecord] = []
        self.speculations: List[SpeculationRecord] = []
        self.serves: List[ServeRecord] = []
        self.stages: Dict[Tuple[int, int], StageRecord] = {}
        self.jobs: Dict[int, JobRecord] = {}

    # -- recording ----------------------------------------------------------------

    def record_monotask(self, record: MonotaskRecord) -> None:
        """Append a monotask self-report."""
        self.monotasks.append(record)

    def record_task_attempt(self, record: TaskAttemptRecord) -> None:
        """Append one task attempt's outcome."""
        self.attempts.append(record)

    def record_fault(self, record: FaultEventRecord) -> None:
        """Append one injected-fault event."""
        self.faults.append(record)

    def record_health(self, record: HealthEventRecord) -> None:
        """Append one health-monitor decision."""
        self.health_events.append(record)

    def record_transfer(self, record: TransferRecord) -> None:
        """Append one receiver-measured per-source response flow."""
        self.transfers.append(record)

    def record_speculation(self, record: SpeculationRecord) -> None:
        """Append one speculative-launch event."""
        self.speculations.append(record)

    def record_resource_usage(self, record: ResourceUsageRecord) -> None:
        """Append a Spark-engine per-task ground-truth record."""
        self.resource_usage.append(record)

    def record_serve(self, record: ServeRecord) -> None:
        """Append one served (or shed) job request."""
        self.serves.append(record)

    def task_started(self, job_id: int, stage_id: int, task_index: int,
                     machine_id: int, now: float) -> TaskRecord:
        """Open a task record; the caller fills in ``end`` later."""
        record = TaskRecord(job_id, stage_id, task_index, machine_id,
                            start=now)
        self.tasks.append(record)
        return record

    def stage_started(self, job_id: int, stage_id: int, name: str,
                      num_tasks: int, now: float) -> None:
        """Open a stage record."""
        self.stages[(job_id, stage_id)] = StageRecord(
            job_id, stage_id, name, num_tasks, start=now)

    def stage_finished(self, job_id: int, stage_id: int, now: float) -> None:
        """Close a stage record."""
        self.stages[(job_id, stage_id)].end = now

    def job_started(self, job_id: int, name: str, now: float) -> None:
        """Open a job record."""
        self.jobs[job_id] = JobRecord(job_id, name, start=now)

    def job_finished(self, job_id: int, now: float) -> None:
        """Close a job record."""
        self.jobs[job_id].end = now

    # -- queries ------------------------------------------------------------------

    def job(self, job_id: int) -> JobRecord:
        """The job's record."""
        return self.jobs[job_id]

    def job_duration(self, job_id: int) -> float:
        """Wall-clock seconds of one job."""
        return self.jobs[job_id].duration

    def stage_records(self, job_id: int) -> List[StageRecord]:
        """Stage records of a job, ordered by stage id."""
        return [record for (job, _), record in sorted(self.stages.items())
                if job == job_id]

    def stage_monotasks(self, job_id: int,
                        stage_id: Optional[int] = None
                        ) -> List[MonotaskRecord]:
        """Monotask reports of a job (optionally one stage)."""
        return [m for m in self.monotasks
                if m.job_id == job_id
                and (stage_id is None or m.stage_id == stage_id)]

    def stage_window(self, job_id: int, stage_id: int) -> Tuple[float, float]:
        """A stage's (start, end) wall-clock window."""
        record = self.stages[(job_id, stage_id)]
        return record.start, record.end

    def total_compute_seconds(self, job_id: int,
                              stage_id: Optional[int] = None) -> float:
        """Total compute-monotask seconds."""
        return sum(m.duration for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == CPU)

    def total_disk_bytes(self, job_id: int,
                         stage_id: Optional[int] = None) -> float:
        """Total disk-monotask bytes."""
        return sum(m.nbytes for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == DISK)

    def total_network_bytes(self, job_id: int,
                            stage_id: Optional[int] = None) -> float:
        """Total network-monotask bytes."""
        return sum(m.nbytes for m in self.stage_monotasks(job_id, stage_id)
                   if m.resource == NETWORK)

    def tasks_for_stage(self, job_id: int, stage_id: int) -> List[TaskRecord]:
        """Task records of one stage."""
        return [t for t in self.tasks
                if t.job_id == job_id and t.stage_id == stage_id]

    def usage_for_stage(self, job_id: int,
                        stage_id: int) -> List[ResourceUsageRecord]:
        """Spark ground-truth usage records of one stage."""
        return [u for u in self.resource_usage
                if u.job_id == job_id and u.stage_id == stage_id]

    def attempts_for_job(self, job_id: int) -> List[TaskAttemptRecord]:
        """All task attempts of one job."""
        return [a for a in self.attempts if a.job_id == job_id]

    def attempt_outcome_counts(self,
                               job_id: Optional[int] = None
                               ) -> Dict[str, int]:
        """Attempts grouped by outcome (``success``/``failed``/...)."""
        counts: Dict[str, int] = {}
        for attempt in self.attempts:
            if job_id is not None and attempt.job_id != job_id:
                continue
            counts[attempt.outcome] = counts.get(attempt.outcome, 0) + 1
        return counts

    def serve_records(self, tenant: Optional[str] = None) -> List[ServeRecord]:
        """Serve records, optionally restricted to one tenant."""
        return [s for s in self.serves
                if tenant is None or s.tenant == tenant]

    def queue_seconds_by_resource(
            self, job_ids: Optional[Iterable[int]] = None
    ) -> Dict[str, float]:
        """Total monotask queue time per resource (cpu/disk/network).

        This is the §3.1 "visible contention": time monotasks spent
        waiting at the per-resource schedulers.  Only the MonoSpark
        engine emits monotask records, so for the Spark engine every
        total is zero -- queueing exists but cannot be attributed.
        """
        wanted = None if job_ids is None else set(job_ids)
        totals = {CPU: 0.0, DISK: 0.0, NETWORK: 0.0}
        for record in self.monotasks:
            if wanted is not None and record.job_id not in wanted:
                continue
            totals[record.resource] = (totals.get(record.resource, 0.0)
                                       + record.queue_s)
        return totals

    def health_records(self, kind: Optional[str] = None,
                       machine_id: Optional[int] = None
                       ) -> List[HealthEventRecord]:
        """Health events, optionally filtered by kind and/or machine."""
        return [h for h in self.health_events
                if (kind is None or h.kind == kind)
                and (machine_id is None or h.machine_id == machine_id)]

    def retry_count(self, job_id: Optional[int] = None) -> int:
        """Non-speculative attempts beyond each task's first."""
        return sum(1 for a in self.attempts
                   if a.attempt > 1 and not a.speculative
                   and (job_id is None or a.job_id == job_id))
