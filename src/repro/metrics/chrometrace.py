"""Export monotask self-reports as a Chrome trace.

Writes the Trace Event Format JSON consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: one process per machine, one track per resource
unit, one complete event per monotask (Spark-engine runs export their
per-task windows instead, which is all that engine can know).

This is the "open-source release" face of performance clarity: the
records the framework already holds are a full execution trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import CPU, DISK, NETWORK

__all__ = ["trace_events", "write_chrome_trace"]

#: Sort keys so tracks render CPU, then disks, then network.
_TRACK_ORDER = {CPU: 0, DISK: 1, NETWORK: 2}


def _track_name(record) -> str:
    if record.resource == DISK:
        return f"disk{record.disk_index}"
    return record.resource


def trace_events(metrics: MetricsCollector,
                 job_id: Optional[int] = None) -> List[Dict[str, Any]]:
    """Build the Chrome trace event list.

    ``job_id=None`` exports every job in the collector.  Timestamps are
    microseconds, as the format requires.
    """
    events: List[Dict[str, Any]] = []
    machines = set()

    def add(machine_id, track, name, start, end, args):
        machines.add(machine_id)
        events.append({
            "name": name,
            "cat": track,
            "ph": "X",  # complete event
            "ts": round(start * 1e6, 3),
            "dur": round((end - start) * 1e6, 3),
            "pid": machine_id,
            "tid": track,
            "args": args,
        })

    for record in metrics.monotasks:
        if job_id is not None and record.job_id != job_id:
            continue
        add(record.machine_id, _track_name(record),
            f"{record.phase} j{record.job_id}s{record.stage_id}"
            f"t{record.task_index}",
            record.start, record.end,
            {"bytes": record.nbytes, "queue_s": record.queue_s,
             "deserialize_s": record.deserialize_s, "op_s": record.op_s,
             "serialize_s": record.serialize_s})
    for task in metrics.tasks:
        if job_id is not None and task.job_id != job_id:
            continue
        if task.end != task.end:  # NaN: still running when collected
            continue
        add(task.machine_id, "tasks",
            f"task j{task.job_id}s{task.stage_id}t{task.task_index}",
            task.start, task.end, {})
    if not events:
        raise ModelError(f"nothing to trace for job {job_id}")

    # Per-process metadata so the viewer labels machines nicely.
    for machine_id in sorted(machines):
        events.append({
            "name": "process_name", "ph": "M", "pid": machine_id,
            "args": {"name": f"machine {machine_id}"},
        })
    return events


def write_chrome_trace(metrics: MetricsCollector, path: str,
                       job_id: Optional[int] = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    events = trace_events(metrics, job_id=job_id)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)
    return len(events)
