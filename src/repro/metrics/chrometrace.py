"""Export monotask self-reports as a Chrome trace.

Writes the Trace Event Format JSON consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: one process per machine, one track per resource
unit, one complete event per monotask (Spark-engine runs export their
per-task windows instead, which is all that engine can know).  On top of
the slices, the export carries the causal structure:

* *flow events* (``ph: s/f``) arc from each shuffle producer's network
  track to the consumer that fetched from it, one arrow per recorded
  :class:`~repro.metrics.events.TransferRecord`;
* *async events* (``ph: b/e``) under a synthetic ``driver`` process
  show each job and stage as a nestable span, so the driver-side
  structure frames the per-machine work;
* *instant events* (``ph: i``) on whole-run exports mark control-plane
  membership changes (elections, failovers, crashes) and alert
  lifecycle transitions on ``control``/``alerts`` tracks under the
  driver process, pinning *when management state changed* onto the
  same timeline as the work it reacted to;
* *metadata events* (``ph: M``) name processes and order tracks CPU,
  disks, network, tasks -- top to bottom, the paper's resource order.

This is the "open-source release" face of performance clarity: the
records the framework already holds are a full execution trace.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import CPU, DISK, NETWORK

__all__ = ["trace_events", "write_chrome_trace", "WriteResult",
           "DRIVER_PID"]

#: Sort keys so tracks render CPU, then disks, then network.
_TRACK_ORDER = {CPU: 0, DISK: 1, NETWORK: 2}

#: Synthetic pid for driver-side (job/stage) async spans; real machines
#: use their non-negative machine ids.
DRIVER_PID = 9999


class WriteResult(NamedTuple):
    """Where the trace landed and how many events it holds."""

    path: str
    events: int


def _track_name(record) -> str:
    if record.resource == DISK:
        return f"disk{record.disk_index}"
    return record.resource


def _track_sort_index(track: str) -> int:
    """Render order of one track: cpu, disk0..N, network, tasks."""
    if track == CPU:
        return _TRACK_ORDER[CPU]
    if track.startswith(DISK):
        suffix = track[len(DISK):]
        index = int(suffix) if suffix.isdigit() else 0
        return 10 * _TRACK_ORDER[DISK] + index
    if track == NETWORK:
        return 10 * _TRACK_ORDER[NETWORK]
    return 100  # tasks (and anything else) below the resources


def trace_events(metrics: MetricsCollector,
                 job_id: Optional[int] = None) -> List[Dict[str, Any]]:
    """Build the Chrome trace event list.

    ``job_id=None`` exports every job in the collector.  Timestamps are
    microseconds, as the format requires.
    """
    events: List[Dict[str, Any]] = []
    tracks: set = set()  # (machine_id, track) pairs seen

    def add(machine_id, track, name, start, end, args):
        tracks.add((machine_id, track))
        events.append({
            "name": name,
            "cat": track,
            "ph": "X",  # complete event
            "ts": round(start * 1e6, 3),
            "dur": round((end - start) * 1e6, 3),
            "pid": machine_id,
            "tid": track,
            "args": args,
        })

    for record in metrics.monotasks:
        if job_id is not None and record.job_id != job_id:
            continue
        add(record.machine_id, _track_name(record),
            f"{record.phase} j{record.job_id}s{record.stage_id}"
            f"t{record.task_index}",
            record.start, record.end,
            {"bytes": record.nbytes, "queue_s": record.queue_s,
             "deserialize_s": record.deserialize_s, "op_s": record.op_s,
             "serialize_s": record.serialize_s})
    for task in metrics.tasks:
        if job_id is not None and task.job_id != job_id:
            continue
        if task.end != task.end:  # NaN: still running when collected
            continue
        add(task.machine_id, "tasks",
            f"task j{task.job_id}s{task.stage_id}t{task.task_index}",
            task.start, task.end, {})
    if not events:
        raise ModelError(f"nothing to trace for job {job_id}")

    # Producer -> consumer flow arrows, one per measured response flow.
    # The start binds to the source machine's network track, the finish
    # to the destination's, so Perfetto draws the arc between the
    # serving and fetching slices.
    for index, transfer in enumerate(metrics.transfers):
        if job_id is not None and transfer.job_id != job_id:
            continue
        flow = {
            "name": "shuffle-flow", "cat": "flow", "id": index,
            "args": {"bytes": transfer.nbytes, "job": transfer.job_id},
        }
        events.append({**flow, "ph": "s", "pid": transfer.src_machine_id,
                       "tid": NETWORK,
                       "ts": round(transfer.start * 1e6, 3)})
        events.append({**flow, "ph": "f", "bp": "e",
                       "pid": transfer.dst_machine_id, "tid": NETWORK,
                       "ts": round(transfer.end * 1e6, 3)})
        tracks.add((transfer.src_machine_id, NETWORK))
        tracks.add((transfer.dst_machine_id, NETWORK))

    # Driver-side async spans: jobs and their stages as nestable
    # begin/end pairs under one synthetic process.
    driver_used = False
    for jid in sorted(metrics.jobs):
        if job_id is not None and jid != job_id:
            continue
        job = metrics.jobs[jid]
        if job.end != job.end:
            continue
        driver_used = True
        common = {"cat": "job", "id": f"job-{jid}", "pid": DRIVER_PID,
                  "tid": "jobs"}
        events.append({**common, "name": f"job {jid} ({job.name})",
                       "ph": "b", "ts": round(job.start * 1e6, 3)})
        events.append({**common, "name": f"job {jid} ({job.name})",
                       "ph": "e", "ts": round(job.end * 1e6, 3)})
    for (jid, stage_id) in sorted(metrics.stages):
        if job_id is not None and jid != job_id:
            continue
        stage = metrics.stages[(jid, stage_id)]
        if stage.end != stage.end:
            continue
        driver_used = True
        common = {"cat": "stage", "id": f"job-{jid}-stage-{stage_id}",
                  "pid": DRIVER_PID, "tid": "stages"}
        name = f"stage {stage_id} ({stage.name})"
        events.append({**common, "name": name, "ph": "b",
                       "ts": round(stage.start * 1e6, 3)})
        events.append({**common, "name": name, "ph": "e",
                       "ts": round(stage.end * 1e6, 3)})

    # Control-plane and alerting milestones as instant events under the
    # driver process: elections/failovers and alert transitions pin the
    # moments the cluster's management state changed onto the same
    # timeline as the work.  Whole-run exports only -- a single job's
    # trace window rarely contains them and their timestamps would dangle
    # outside it.
    if job_id is None:
        for record in metrics.driver_events:
            driver_used = True
            events.append({
                "name": f"{record.kind} d{record.driver_id}",
                "cat": "control", "ph": "i", "s": "g",
                "ts": round(record.at * 1e6, 3),
                "pid": DRIVER_PID, "tid": "control",
                "args": {"kind": record.kind, "driver": record.driver_id,
                         "peer": record.peer_id, "tenant": record.tenant,
                         "detail": record.detail},
            })
        for record in metrics.alerts:
            driver_used = True
            events.append({
                "name": f"{record.kind}: {record.rule}",
                "cat": "alert", "ph": "i", "s": "g",
                "ts": round(record.at * 1e6, 3),
                "pid": DRIVER_PID, "tid": "alerts",
                "args": {"kind": record.kind, "rule": record.rule,
                         "severity": record.severity,
                         "labels": record.labels,
                         "trace_id": record.trace_id,
                         "span_id": record.span_id,
                         "detail": record.detail},
            })

    # Metadata: name processes, and name + order threads so tracks
    # render CPU, disks, network, tasks (the dead-_TRACK_ORDER fix).
    for machine_id in sorted({m for m, _ in tracks}):
        events.append({
            "name": "process_name", "ph": "M", "pid": machine_id,
            "args": {"name": f"machine {machine_id}"},
        })
    for machine_id, track in sorted(tracks):
        events.append({
            "name": "thread_name", "ph": "M", "pid": machine_id,
            "tid": track, "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": machine_id,
            "tid": track,
            "args": {"sort_index": _track_sort_index(track)},
        })
    if driver_used:
        events.append({
            "name": "process_name", "ph": "M", "pid": DRIVER_PID,
            "args": {"name": "driver"},
        })
    return events


def write_chrome_trace(metrics: MetricsCollector, path: str,
                       job_id: Optional[int] = None) -> WriteResult:
    """Write the trace JSON to ``path`` atomically.

    The JSON is staged in a temp file in the destination directory and
    renamed into place, so a crash mid-export never leaves a truncated
    file behind.  Returns a :class:`WriteResult` (path, event count).
    """
    events = trace_events(metrics, job_id=job_id)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".trace-",
                                    suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump({"traceEvents": events,
                       "displayTimeUnit": "ms"}, handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return WriteResult(path=path, events=len(events))
