"""ASCII timelines of monotask execution.

Performance clarity, visualized: because every monotask self-reports its
resource, machine, and time window, a job's execution can be rendered as
a per-resource Gantt chart with no extra instrumentation.  Useful for
eyeballing pipelining (are disk reads overlapping compute?), convoys,
and ramp-up effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import CPU, DISK, NETWORK, MonotaskRecord

__all__ = ["render_timeline"]

#: Glyph per phase; unknown phases fall back to '#'.
PHASE_GLYPHS = {
    "input_read": "r",
    "shuffle_read": "s",
    "shuffle_serve": "v",
    "shuffle_write": "w",
    "output_write": "o",
    "compute": "C",
    "setup": ".",
    "cleanup": ".",
}


def _lane_key(record: MonotaskRecord) -> str:
    if record.resource == DISK:
        return f"disk{record.disk_index}"
    if record.resource == CPU:
        return "cpu"
    return "network"


def render_timeline(metrics: MetricsCollector, job_id: int,
                    machine_id: int = 0, width: int = 80,
                    stage_id: Optional[int] = None) -> str:
    """Render one machine's monotask activity as text.

    Each resource gets a lane; within a lane, each column covers
    ``duration / width`` seconds and shows the phase glyph of whatever
    ran then (capital ``C`` compute, ``r`` input read, ``w`` shuffle
    write, ``o`` output write, ``s``/``v`` shuffle read/serve).  Density
    is approximate: a cell shows the phase with the most busy time.
    """
    if width < 10:
        raise ModelError("timeline width must be >= 10")
    records = [r for r in metrics.stage_monotasks(job_id, stage_id)
               if r.machine_id == machine_id]
    if not records:
        raise ModelError(
            f"no monotask records for job {job_id} on machine "
            f"{machine_id}; was the job run on MonoSpark?")
    start = min(r.start for r in records)
    end = max(r.end for r in records)
    span = max(end - start, 1e-9)
    step = span / width

    lanes: Dict[str, List[Dict[str, float]]] = {}
    for record in records:
        lane = lanes.setdefault(_lane_key(record),
                                [dict() for _ in range(width)])
        glyph = PHASE_GLYPHS.get(record.phase, "#")
        first = int((record.start - start) / step)
        last = int(min((record.end - start) / step, width - 1))
        for column in range(first, last + 1):
            cell_start = start + column * step
            cell_end = cell_start + step
            overlap = min(record.end, cell_end) - max(record.start,
                                                      cell_start)
            if overlap > 0:
                cell = lane[column]
                cell[glyph] = cell.get(glyph, 0.0) + overlap

    lines = [f"machine {machine_id}, job {job_id}: "
             f"{start:.2f}s .. {end:.2f}s ({span:.2f}s, "
             f"{step:.3f}s/column)"]
    for lane_name in sorted(lanes):
        cells = []
        for cell in lanes[lane_name]:
            if not cell:
                cells.append(" ")
            else:
                cells.append(max(cell, key=cell.get))
        lines.append(f"{lane_name:>8s} |{''.join(cells)}|")
    legend = ", ".join(f"{glyph}={phase}"
                       for phase, glyph in PHASE_GLYPHS.items()
                       if glyph != ".")
    lines.append(f"          {legend}")
    return "\n".join(lines)
