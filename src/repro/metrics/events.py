"""Structured records of what happened during a simulated job.

MonoSpark's performance clarity comes from the fact that "each monotask
reports how long it took to complete" (§6.1) -- the instrumentation *is*
the execution model.  A :class:`MonotaskRecord` is that report.  The
Spark-style engine cannot produce monotask records (that is the point of
§6.6), but the simulator itself knows the ground truth of every resource
it served, so the Spark engine emits :class:`ResourceUsageRecord` ground
truth that the Fig 15-17 experiments use to *approximate* what a user
could measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "MonotaskRecord",
    "ResourceUsageRecord",
    "TaskRecord",
    "StageRecord",
    "JobRecord",
    "TaskAttemptRecord",
    "FaultEventRecord",
    "HealthEventRecord",
    "DriverEventRecord",
    "AlertEventRecord",
    "SpeculationRecord",
    "ServeRecord",
    "TransferRecord",
    "CPU",
    "DISK",
    "NETWORK",
    "PHASE_INPUT_READ",
    "PHASE_SHUFFLE_READ",
    "PHASE_SHUFFLE_WRITE",
    "PHASE_OUTPUT_WRITE",
    "PHASE_SHUFFLE_SERVE",
    "PHASE_COMPUTE",
    "PHASE_SETUP",
    "PHASE_CLEANUP",
    "PHASE_DATASVC_WRITE",
    "PHASE_DATASVC_READ",
    "PHASE_DATASVC_DRAIN",
    "PHASE_DATASVC_REPLICATE",
]

CPU = "cpu"
DISK = "disk"
NETWORK = "network"

PHASE_INPUT_READ = "input_read"
PHASE_SHUFFLE_READ = "shuffle_read"
PHASE_SHUFFLE_WRITE = "shuffle_write"
PHASE_OUTPUT_WRITE = "output_write"
PHASE_SHUFFLE_SERVE = "shuffle_serve"
PHASE_COMPUTE = "compute"
PHASE_SETUP = "setup"
PHASE_CLEANUP = "cleanup"
#: Data-service phases: client-side writes/reads against the data tier
#: and storage-node-side write-behind drains / replica copies.
PHASE_DATASVC_WRITE = "datasvc_write"
PHASE_DATASVC_READ = "datasvc_read"
PHASE_DATASVC_DRAIN = "datasvc_drain"
PHASE_DATASVC_REPLICATE = "datasvc_replicate"


@dataclass(slots=True)
class MonotaskRecord:
    """One monotask's self-report: what resource, how long, how much."""

    job_id: int
    stage_id: int
    task_index: int
    resource: str  # CPU | DISK | NETWORK
    phase: str
    machine_id: int
    start: float
    end: float
    nbytes: float = 0.0
    #: Disk index for disk monotasks (None otherwise).
    disk_index: Optional[int] = None
    #: Compute monotasks split their time so the model can subtract
    #: (de)serialization for the in-memory what-ifs (§6.3).
    deserialize_s: float = 0.0
    op_s: float = 0.0
    serialize_s: float = 0.0
    #: Time between submission to the resource scheduler and start of
    #: service: the "visible contention" queue time (§3.1).
    queue_s: float = 0.0

    @property
    def duration(self) -> float:
        """Service time: end minus start."""
        return self.end - self.start

    @property
    def is_input_read(self) -> bool:
        """True for monotasks that read DFS input."""
        return self.phase == PHASE_INPUT_READ


@dataclass
class ResourceUsageRecord:
    """Ground-truth resource consumption of one Spark-engine task.

    The simulator can attribute this perfectly; a real Spark user cannot
    (tasks share the JVM and the OS interleaves their I/O, §6.6).
    """

    job_id: int
    stage_id: int
    task_index: int
    machine_id: int
    cpu_s: float = 0.0
    disk_bytes_read: float = 0.0
    disk_bytes_written: float = 0.0
    network_bytes: float = 0.0
    deserialize_s: float = 0.0
    serialize_s: float = 0.0


@dataclass
class TaskRecord:
    job_id: int
    stage_id: int
    task_index: int
    machine_id: int
    start: float
    end: float = float("nan")

    @property
    def duration(self) -> float:
        """Task wall-clock seconds."""
        return self.end - self.start


@dataclass
class TaskAttemptRecord:
    """One attempt at running a task: the unit of retry and speculation.

    ``outcome`` is ``"success"``, ``"failed"`` (the attempt raised),
    ``"fetch-failed"`` (map output was missing; lineage recovery runs
    before the retry), or ``"killed"`` (interrupted by a machine crash
    or by losing a speculation race).
    """

    job_id: int
    stage_id: int
    task_index: int
    attempt: int
    machine_id: int
    start: float
    end: float
    outcome: str
    speculative: bool = False
    #: Deterministic short cause (exception type or interrupt cause).
    detail: str = ""

    @property
    def duration(self) -> float:
        """Attempt wall-clock seconds."""
        return self.end - self.start


@dataclass
class FaultEventRecord:
    """One injected fault (or recovery milestone like a restart)."""

    kind: str  # machine-crash | machine-restart | disk-failure | slowdown...
    machine_id: int
    at: float
    detail: str = ""


@dataclass
class TransferRecord:
    """One per-source-machine shuffle/DFS response flow, measured at the
    receiver.

    MonoSpark's network monotask issues one request per remote machine
    and can time each response separately -- so unlike the whole-fetch
    :class:`MonotaskRecord`, a transfer is attributable to a specific
    *source* NIC.  This is what lets the health monitor pin a slow
    uplink on the machine that owns it instead of on every reducer that
    happens to fetch from it.  The Spark engine does not emit these:
    its fetch metrics are aggregated per task (§6.6).
    """

    src_machine_id: int
    dst_machine_id: int
    nbytes: float
    start: float
    end: float
    #: Job whose fetch this flow served; -1 when not attributable.
    job_id: int = -1

    @property
    def duration(self) -> float:
        """Response seconds (request latency + bandwidth time)."""
        return self.end - self.start


@dataclass
class HealthEventRecord:
    """One health-monitor decision about a machine.

    ``kind`` is ``"suspect"`` (a resource's observed rate fell below
    the cluster median by the policy's slow factor), ``"exclude"``,
    ``"probation"``, ``"reinstate"``, ``"heartbeat-miss"``, or
    ``"heartbeat-restore"``.  ``resource`` names what the monitor
    blamed: ``cpu``/``disk``/``network`` on MonoSpark (per-resource
    monotask rates), or ``"task"`` on Spark, whose task-level EWMA
    cannot attribute slowness to a resource (§6.6's contrast, online).
    """

    kind: str
    machine_id: int
    at: float
    resource: str = ""
    #: Observed rate relative to the cluster median (1.0 = typical).
    relative_rate: float = float("nan")
    detail: str = ""


@dataclass
class DriverEventRecord:
    """One control-plane membership or failover decision.

    ``kind`` is one of: ``"heartbeat-miss"`` / ``"heartbeat-restore"``
    (a peer fell out of / rejoined a replica's membership view),
    ``"election"`` / ``"leader"`` (a bully election ran and who won),
    ``"isolated"`` / ``"rejoin"`` (a replica lost sight of every peer
    and stopped dispatching, then healed), ``"driver-crash"`` /
    ``"driver-restart"`` / ``"driver-partition"`` /
    ``"partition-heal"`` (injected faults), ``"reassign"`` (the leader
    moved a tenant to a new owner), ``"checkpoint-restore"`` (an
    adopter read a tenant checkpoint back from the data tier), and
    ``"resume"`` / ``"replay"`` / ``"lost"`` (per-request failover
    outcomes).  ``driver_id`` is the replica the event happened *on*;
    ``peer_id`` the replica it is *about* (-1 when not applicable).
    """

    kind: str
    driver_id: int
    at: float
    peer_id: int = -1
    tenant: str = ""
    detail: str = ""


@dataclass
class AlertEventRecord:
    """One alert-lifecycle transition from the observability plane.

    ``kind`` is ``"pending"`` (the rule's condition just became true;
    the alert waits out its ``for_s`` hold), ``"firing"``, or
    ``"resolved"``.  ``labels`` is the canonical rendering of the
    series labels the alert is keyed by (``machine=1,resource=network``)
    -- the dedup key, so one misbehaving series produces one alert, not
    one per evaluation tick.  ``trace_id``/``span_id`` carry the
    exemplar: the worst recent contributor's critical-path span, so a
    firing alert links straight to the offending job (span_id -1 = no
    exemplar available, e.g. on the Spark engine).
    """

    kind: str  # pending | firing | resolved
    rule: str
    at: float
    severity: str = "warning"
    labels: str = ""
    value: float = float("nan")
    trace_id: str = ""
    span_id: int = -1
    detail: str = ""


@dataclass
class SpeculationRecord:
    """A speculative duplicate attempt was launched for a straggler."""

    job_id: int
    stage_id: int
    task_index: int
    at: float
    original_machine_id: int


@dataclass
class ServeRecord:
    """One job request's life in a :class:`repro.serve.JobServer` run.

    ``outcome`` is ``"completed"`` (the job ran to completion) or
    ``"shed"`` (the admission controller rejected it; ``detail`` holds
    the reason and no dispatch/completion times exist).
    """

    tenant: str
    template: str
    arrival: float
    #: Engine job id; -1 for shed requests (never instantiated).
    job_id: int = -1
    dispatched: float = float("nan")
    completed: float = float("nan")
    outcome: str = "completed"
    #: The admission controller's cost estimate (None = no estimate yet).
    estimate_s: Optional[float] = None
    #: The tenant's latency SLO at submission time (None = best effort).
    slo_s: Optional[float] = None
    detail: str = ""

    @property
    def queue_delay_s(self) -> float:
        """Seconds between arrival and dispatch to the engine."""
        return self.dispatched - self.arrival

    @property
    def service_s(self) -> float:
        """Seconds between dispatch and completion."""
        return self.completed - self.dispatched

    @property
    def latency_s(self) -> float:
        """End-to-end seconds between arrival and completion."""
        return self.completed - self.arrival

    @property
    def slo_met(self) -> Optional[bool]:
        """Whether the request met its SLO (None = no SLO declared)."""
        if self.slo_s is None:
            return None
        return self.outcome == "completed" and self.latency_s <= self.slo_s


@dataclass
class StageRecord:
    job_id: int
    stage_id: int
    name: str
    num_tasks: int
    start: float
    end: float = float("nan")

    @property
    def duration(self) -> float:
        """Stage wall-clock seconds."""
        return self.end - self.start


@dataclass
class JobRecord:
    job_id: int
    name: str
    start: float
    end: float = float("nan")

    @property
    def duration(self) -> float:
        """Job wall-clock seconds."""
        return self.end - self.start
