"""Plain-text tables for benchmark output.

Every benchmark prints a table of "paper says / we measured" rows; this
module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.metrics.collector import MetricsCollector

__all__ = ["format_table", "print_table", "format_seconds", "ratio",
           "format_fault_report"]


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering with ms/s/min/h units."""
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.1f} ms"


def ratio(a: float, b: float) -> float:
    """Safe a/b for table cells."""
    if b == 0:
        return float("inf") if a > 0 else 1.0
    return a / b


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row]
                                      for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index])
                         for index, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: Optional[str] = None) -> None:
    """Print an aligned plain-text table, padded with blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()


def format_fault_report(metrics: "MetricsCollector",
                        job_id: Optional[int] = None) -> str:
    """Render the faults-and-recovery summary for a run.

    Counts injected faults by kind, task attempts by outcome, retries,
    and speculative launches, so a report shows at a glance how much
    work a job lost and re-executed.
    """
    rows: List[List[object]] = []
    fault_kinds: dict = {}
    for fault in metrics.faults:
        fault_kinds[fault.kind] = fault_kinds.get(fault.kind, 0) + 1
    for kind in sorted(fault_kinds):
        rows.append([f"fault: {kind}", fault_kinds[kind]])
    outcomes = metrics.attempt_outcome_counts(job_id)
    for outcome in sorted(outcomes):
        rows.append([f"attempts: {outcome}", outcomes[outcome]])
    rows.append(["retries", metrics.retry_count(job_id)])
    speculations = [s for s in metrics.speculations
                    if job_id is None or s.job_id == job_id]
    rows.append(["speculative launches", len(speculations)])
    return format_table(["event", "count"], rows,
                        title="Faults and recovery")


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
