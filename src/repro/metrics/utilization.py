"""Utilization time series and summaries from busy-interval trackers.

Figures 2, 6, and 9 of the paper are resource-utilization plots.  The
hardware models record ``(time, busy units)`` change points; this module
turns them into sampled time series (Figs 2/9) and per-window summaries
with percentiles (Fig 6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.machine import Machine
from repro.simulator.resources import BusyTracker
from repro.stats import percentile

__all__ = [
    "sample_utilization",
    "machine_utilization",
    "percentile",
    "UtilizationSummary",
    "summarize_machine",
]


def sample_utilization(tracker: BusyTracker, start: float, end: float,
                       step: float) -> List[Tuple[float, float]]:
    """Mean utilization over each ``step``-wide window of ``[start, end]``.

    All windows are computed from one merged sweep over the tracker's
    change points (O(windows + change points)), not one full scan per
    window.
    """
    if step <= 0:
        raise ValueError(f"step must be positive: {step}")
    # Window edges are computed as start + i*step rather than by
    # accumulating t += step: repeated addition drifts by an ulp per
    # window, which misaligns edges (and can add or drop a window) over
    # long horizons with small steps.
    edges: List[float] = []
    index = 0
    while True:
        t = start + index * step
        if t >= end:
            break
        edges.append(t)
        index += 1
    if not edges:
        return []
    # Windows are contiguous, so the i-th window is [bounds[i],
    # bounds[i+1]] and one integral per edge covers them all.
    bounds = edges + [min(start + len(edges) * step, end)]
    integrals = tracker.busy_integrals(bounds)
    units = tracker.units
    samples: List[Tuple[float, float]] = []
    for i, t in enumerate(edges):
        window = bounds[i + 1] - bounds[i]
        if window <= 0:
            samples.append((t, 0.0))
        else:
            samples.append(
                (t, (integrals[i + 1] - integrals[i]) / (units * window)))
    return samples


class UtilizationSummary:
    """Per-resource mean utilization of one machine over a window."""

    def __init__(self, cpu: float, disks: List[float], net_rx: float,
                 net_tx: float) -> None:
        self.cpu = cpu
        self.disks = disks
        self.net_rx = net_rx
        self.net_tx = net_tx

    def as_dict(self) -> Dict[str, float]:
        """All per-resource utilizations, keyed by resource name."""
        values = {"cpu": self.cpu, "net_rx": self.net_rx,
                  "net_tx": self.net_tx}
        for index, disk in enumerate(self.disks):
            values[f"disk{index}"] = disk
        return values

    def ranked(self) -> List[Tuple[str, float]]:
        """Resources ordered from most to least utilized.

        Matches the paper's Figure 6, which reports "the most utilized
        (i.e., bottleneck) resource, and the second most utilized".
        Disk and network are each summarized by their busiest unit.
        """
        disk = max(self.disks) if self.disks else 0.0
        net = max(self.net_rx, self.net_tx)
        entries = [("cpu", self.cpu), ("disk", disk), ("network", net)]
        return sorted(entries, key=lambda item: item[1], reverse=True)


def machine_utilization(machine: Machine, start: float,
                        end: float) -> UtilizationSummary:
    """Mean utilization of each of a machine's resources over a window."""
    network = machine.network
    return UtilizationSummary(
        cpu=machine.cpu.tracker.utilization(start, end),
        disks=[disk.tracker.utilization(start, end)
               for disk in machine.disks],
        net_rx=network.rx_trackers[machine.machine_id].utilization(start, end),
        net_tx=network.tx_trackers[machine.machine_id].utilization(start, end),
    )


def summarize_machine(machine: Machine, start: float, end: float,
                      step: float) -> Dict[str, List[Tuple[float, float]]]:
    """Sampled utilization time series for every resource of a machine."""
    network = machine.network
    series = {
        "cpu": sample_utilization(machine.cpu.tracker, start, end, step),
        "net_rx": sample_utilization(
            network.rx_trackers[machine.machine_id], start, end, step),
        "net_tx": sample_utilization(
            network.tx_trackers[machine.machine_id], start, end, step),
    }
    for index, disk in enumerate(machine.disks):
        series[f"disk{index}"] = sample_utilization(
            disk.tracker, start, end, step)
    return series
