"""The differential debugger: why is run B slower than run A?

Two capsules in, one causal answer out.  Jobs are aligned across runs
by (tenant, template, arrival sequence) -- the request identity that
survives nondeterministic job ids -- then each aligned pair's
critical-path attribution (:mod:`repro.trace.critpath`) is diffed per
``resource x machine x phase`` cell.  Because critical-path segments
partition each job's window exactly, the per-cell deltas sum to the
total wall-clock delta: every second of regression is attributed
somewhere, and the ranked cells *are* the blame.

On MonoSpark capsules the cells carry real resources, so the report
can say "+3.1s total: 82% network on machine 1 during shuffle-fetch".
On Spark capsules the same alignment and totals work, but the cells
collapse to the blended pseudo-resource and the report says NOT
ATTRIBUTABLE instead of guessing -- the paper's §6.6 contrast, now in
differential form.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BlameEntry", "JobPair", "DiffReport", "diff_capsules",
           "align_jobs", "DEFAULT_NOISE_FLOOR_S", "DEFAULT_MIN_FRACTION"]

#: Per-cell deltas below this many seconds are noise, not blame.
DEFAULT_NOISE_FLOOR_S = 0.05

#: ... and below this fraction of the total delta, likewise.
DEFAULT_MIN_FRACTION = 0.02

_NOT_ATTRIBUTABLE = (
    "NOT ATTRIBUTABLE: at least one capsule came from an engine running "
    "blended tasks; without per-resource monotask spans the delta cannot "
    "be decomposed by resource (the paper's Section 3 / 6.6 contrast).")


@dataclass(frozen=True)
class BlameEntry:
    """One ``resource x machine x phase`` cell of the blame ranking."""

    label: str  # segment label: ``network``, ``disk queue``, ``driver``...
    machine_id: int  # -1 for driver cells
    phase: str  # monotask phase; "" for driver/blended cells
    seconds_a: float
    seconds_b: float
    #: Longest B-side segment in this cell: the span to open first.
    exemplar_trace: str = ""
    exemplar_span: int = -1

    @property
    def delta(self) -> float:
        """Seconds gained (+) or saved (-) in run B."""
        return self.seconds_b - self.seconds_a

    @property
    def where(self) -> str:
        """Human-readable location: "machine N", or "driver" for gaps."""
        return ("driver" if self.machine_id < 0
                else f"machine {self.machine_id}")


@dataclass(frozen=True)
class JobPair:
    """One aligned (run A job, run B job) request pair."""

    tenant: str
    template: str
    seq: int  # arrival sequence within (tenant, template)
    arrival_b: float
    job_a: int
    job_b: int
    duration_a: float
    duration_b: float

    @property
    def delta(self) -> float:
        """Run B duration minus run A duration for this pair, seconds."""
        return self.duration_b - self.duration_a


@dataclass
class DiffReport:
    """The structured answer, plus its human renderings."""

    path_a: str
    path_b: str
    engine_a: str
    engine_b: str
    pairs: List[JobPair] = field(default_factory=list)
    unmatched_a: int = 0
    unmatched_b: int = 0
    attributable: bool = True
    #: Noise-filtered cells, ranked by |delta| descending.
    entries: List[BlameEntry] = field(default_factory=list)
    total_a: float = 0.0
    total_b: float = 0.0
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S
    min_fraction: float = DEFAULT_MIN_FRACTION
    #: First aligned pair whose delta cleared the noise floor, if any.
    first_divergence: Optional[JobPair] = None
    #: Exemplar span of that pair's worst cell: ``trace/span (+delta)``.
    first_divergence_detail: str = ""

    @property
    def delta_total(self) -> float:
        """Total matched wall-clock seconds gained (+) in run B."""
        return self.total_b - self.total_a

    def regression(self, threshold_s: float) -> bool:
        """True when run B regressed past ``threshold_s`` seconds."""
        return self.delta_total > threshold_s

    def narrative(self) -> str:
        """The one-line human answer."""
        delta = self.delta_total
        if not self.pairs:
            return "no aligned jobs: the runs share no completed requests"
        if not self.attributable:
            return (f"{delta:+.1f}s total across {len(self.pairs)} aligned "
                    f"jobs: NOT ATTRIBUTABLE (blended tasks)")
        if not self.entries:
            return (f"{delta:+.1f}s total across {len(self.pairs)} aligned "
                    f"jobs: no cell cleared the noise floor "
                    f"({self.noise_floor_s:.2f}s)")
        top = self.entries[0]
        share = abs(top.delta) / abs(delta) * 100.0 if delta else 0.0
        during = f" during {top.phase}" if top.phase else ""
        line = (f"{delta:+.1f}s total: {share:.0f}% {top.label} on "
                f"{top.where}{during}")
        if self.first_divergence is not None:
            pair = self.first_divergence
            line += (f"; first diverging span: job {pair.job_b} "
                     f"{self.first_divergence_detail} "
                     f"({pair.delta:+.2f}s)")
        return line

    def format(self) -> str:
        """The full blame report, byte-stable for identical inputs.

        Capsule paths appear as basenames so the text is reproducible
        regardless of which directory the capsules were recorded into.
        """
        name_a = os.path.basename(self.path_a) or self.path_a
        name_b = os.path.basename(self.path_b) or self.path_b
        lines = [
            f"run diff: {name_a} (engine={self.engine_a}) -> "
            f"{name_b} (engine={self.engine_b})",
            f"  aligned jobs: {len(self.pairs)} "
            f"(unmatched: a={self.unmatched_a} b={self.unmatched_b})",
            f"  critical-path seconds: {self.total_a:.3f} -> "
            f"{self.total_b:.3f} ({self.delta_total:+.3f}s)",
        ]
        if not self.attributable:
            lines.append(f"  {_NOT_ATTRIBUTABLE}")
        if self.entries:
            lines.append(
                f"  blame (resource x machine x phase), noise floor "
                f"{self.noise_floor_s:.2f}s:")
            denominator = abs(self.delta_total) or 1.0
            for rank, entry in enumerate(self.entries, start=1):
                during = entry.phase or "-"
                exemplar = (f"  span {entry.exemplar_trace}/"
                            f"{entry.exemplar_span}"
                            if entry.exemplar_span >= 0 else "")
                lines.append(
                    f"    #{rank} {entry.label:<14} {entry.where:<10} "
                    f"{during:<14} {entry.seconds_a:>9.3f} -> "
                    f"{entry.seconds_b:>9.3f}  {entry.delta:+.3f}s "
                    f"{100.0 * abs(entry.delta) / denominator:5.1f}%"
                    f"{exemplar}")
        elif self.pairs:
            lines.append("  blame: no cell cleared the noise floor")
        lines.append(f"  narrative: {self.narrative()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready summary (bench baselines, ``--json`` output)."""
        return {
            "engine_a": self.engine_a,
            "engine_b": self.engine_b,
            "aligned_jobs": len(self.pairs),
            "unmatched_a": self.unmatched_a,
            "unmatched_b": self.unmatched_b,
            "attributable": self.attributable,
            "total_a_s": round(self.total_a, 6),
            "total_b_s": round(self.total_b, 6),
            "delta_total_s": round(self.delta_total, 6),
            "entries": [
                {"label": entry.label, "machine": entry.machine_id,
                 "phase": entry.phase,
                 "seconds_a": round(entry.seconds_a, 6),
                 "seconds_b": round(entry.seconds_b, 6),
                 "delta_s": round(entry.delta, 6)}
                for entry in self.entries],
            "narrative": self.narrative(),
        }


def align_jobs(a, b) -> Tuple[List[JobPair], int, int]:
    """Pair completed requests across two capsules.

    Alignment key: (tenant, template, arrival sequence within that
    pair).  Job ids are *not* comparable across runs (admission order
    can differ), but the k-th request a tenant's template submitted is
    the same logical work in both runs -- the serving workload is an
    open-loop arrival process, identical across the runs being
    compared.  Requests present in only one run count as unmatched.
    """
    groups_a = _completed_by_key(a)
    groups_b = _completed_by_key(b)
    pairs: List[JobPair] = []
    unmatched_a = sum(len(v) for v in groups_a.values())
    unmatched_b = sum(len(v) for v in groups_b.values())
    for key in sorted(set(groups_a) & set(groups_b)):
        records_a, records_b = groups_a[key], groups_b[key]
        for seq, (ra, rb) in enumerate(zip(records_a, records_b)):
            job_a, job_b = ra.job_id, rb.job_id
            pairs.append(JobPair(
                tenant=key[0], template=key[1], seq=seq,
                arrival_b=rb.arrival, job_a=job_a, job_b=job_b,
                duration_a=a.jobs[job_a].duration,
                duration_b=b.jobs[job_b].duration))
            unmatched_a -= 1
            unmatched_b -= 1
    pairs.sort(key=lambda p: (p.arrival_b, p.tenant, p.template, p.seq))
    return pairs, unmatched_a, unmatched_b


def _completed_by_key(capsule) -> Dict[Tuple[str, str], List]:
    groups: Dict[Tuple[str, str], List] = {}
    for record in sorted(capsule.completed_jobs(),
                         key=lambda r: (r.arrival, r.job_id)):
        groups.setdefault((record.tenant, record.template), []).append(record)
    return groups


def diff_capsules(a, b, noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
                  min_fraction: float = DEFAULT_MIN_FRACTION) -> DiffReport:
    """Diff run B against baseline run A, cell by causal cell."""
    report = DiffReport(
        path_a=a.path, path_b=b.path, engine_a=a.engine, engine_b=b.engine,
        noise_floor_s=noise_floor_s, min_fraction=min_fraction)
    pairs, report.unmatched_a, report.unmatched_b = align_jobs(a, b)
    report.pairs = pairs
    if not pairs:
        report.attributable = False
        return report

    Key = Tuple[str, int, str]  # (label, machine, phase)
    seconds_a: Dict[Key, float] = {}
    seconds_b: Dict[Key, float] = {}
    #: Per-cell longest B-side segment: (duration, trace, span_id).
    exemplars: Dict[Key, Tuple[float, str, int]] = {}
    per_pair_cells: List[Dict[Key, float]] = []
    for pair in pairs:
        report_a = a.critical_path_report(pair.job_a)
        report_b = b.critical_path_report(pair.job_b)
        if not (report_a.attributable and report_b.attributable):
            report.attributable = False
        report.total_a += report_a.duration
        report.total_b += report_b.duration
        for segment in report_a.segments:
            key = (segment.label, segment.machine_id, segment.phase)
            seconds_a[key] = seconds_a.get(key, 0.0) + segment.duration
        cells: Dict[Key, float] = {}
        trace_b = b.job_trace_id(pair.job_b)
        for segment in report_b.segments:
            key = (segment.label, segment.machine_id, segment.phase)
            seconds_b[key] = seconds_b.get(key, 0.0) + segment.duration
            cells[key] = cells.get(key, 0.0) + segment.duration
            if segment.span_id >= 0:
                candidate = (segment.duration, trace_b, segment.span_id)
                if key not in exemplars or candidate > exemplars[key]:
                    exemplars[key] = candidate
        per_pair_cells.append(cells)

    floor = max(noise_floor_s, min_fraction * abs(report.delta_total))
    entries = []
    for key in set(seconds_a) | set(seconds_b):
        sa = seconds_a.get(key, 0.0)
        sb = seconds_b.get(key, 0.0)
        if abs(sb - sa) < floor:
            continue
        exemplar = exemplars.get(key, (0.0, "", -1))
        entries.append(BlameEntry(
            label=key[0], machine_id=key[1], phase=key[2],
            seconds_a=sa, seconds_b=sb,
            exemplar_trace=exemplar[1], exemplar_span=exemplar[2]))
    entries.sort(key=lambda e: (-abs(e.delta), e.label, e.machine_id,
                                e.phase))
    report.entries = entries

    # First divergence: the earliest aligned pair (B arrival order)
    # whose wall-clock delta cleared the noise floor; its detail names
    # the worst cell's exemplar span so debugging starts at a span id.
    for pair, cells in zip(pairs, per_pair_cells):
        if abs(pair.delta) <= noise_floor_s:
            continue
        report.first_divergence = pair
        worst_key = None
        worst_gain = 0.0
        for key, sb in cells.items():
            gain = sb - _pair_cell_a(a, pair, key)
            if worst_key is None or gain > worst_gain:
                worst_key, worst_gain = key, gain
        trace_b = b.job_trace_id(pair.job_b)
        report.first_divergence_detail = trace_b
        if worst_key is not None:
            segments = [s for s in b.critical_path_report(pair.job_b).segments
                        if (s.label, s.machine_id, s.phase) == worst_key
                        and s.span_id >= 0]
            if segments:
                worst = max(segments,
                            key=lambda s: (s.duration, s.start, s.span_id))
                report.first_divergence_detail = \
                    f"{trace_b}/{worst.span_id}"
        break
    return report


def _pair_cell_a(a, pair: JobPair, key) -> float:
    total = 0.0
    for segment in a.critical_path_report(pair.job_a).segments:
        if (segment.label, segment.machine_id, segment.phase) == key:
            total += segment.duration
    return total
