"""Trace analytics over loaded capsules: filter, group, aggregate.

The span store in a :class:`~repro.xray.capsule.Capsule` is just a
list; this module gives it the small query engine an engineer actually
needs mid-incident: "p95 monotask duration by machine", "queueing by
resource for tenant X", "RED rates per tenant".  Aggregations reuse
:func:`repro.stats.percentile` (the same helper the SLO reports use)
so numbers agree across every surface.

Grouping dimensions: ``resource``, ``machine``, ``phase``, ``stage``,
``tenant``, ``kind``.  Stage and tenant are *derived* dimensions --
stage from the span's parent chain, tenant from the serve record that
owns the span's job -- and are indexed once per capsule, not per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import CapsuleError
from repro.stats import percentile
from repro.trace.spans import SPAN_ATTEMPT, SPAN_MONOTASK, SpanRecord

__all__ = ["AggregateRow", "TenantRate", "CapsuleQuery", "GROUP_KEYS"]

GROUP_KEYS = ("resource", "machine", "phase", "stage", "tenant", "kind")

METRICS = ("duration", "queue")


@dataclass(frozen=True)
class AggregateRow:
    """One group's aggregate over the selected spans."""

    key: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float


@dataclass(frozen=True)
class TenantRate:
    """RED-style per-tenant serving stats from a capsule's serve lines."""

    tenant: str
    requests: int
    completed: int
    errors: int  # failed + shed + lost, the tenant-visible failures
    rate_per_s: float
    p50_s: float
    p95_s: float
    p99_s: float


def _job_of(span: SpanRecord) -> int:
    trace = span.trace_id
    if trace.startswith("job-"):
        try:
            return int(trace[4:])
        except ValueError:
            return -1
    return -1


class CapsuleQuery:
    """Indexed queries over one loaded capsule."""

    def __init__(self, capsule) -> None:
        self.capsule = capsule
        self._span_by_id: Dict[int, SpanRecord] = {
            span.span_id: span for span in capsule.spans}
        self._tenant_by_job: Dict[int, str] = {
            record.job_id: record.tenant for record in capsule.serves
            if record.job_id >= 0}
        self._stage_by_span: Dict[int, str] = {}
        self._has_monotasks = any(span.kind == SPAN_MONOTASK
                                  for span in capsule.spans)

    # -- dimensions ----------------------------------------------------------------

    def _stage_of(self, span: SpanRecord) -> str:
        cached = self._stage_by_span.get(span.span_id)
        if cached is not None:
            return cached
        node: Optional[SpanRecord] = span
        name = "(none)"
        while node is not None:
            if node.kind == "stage":
                name = node.name
                break
            parent = node.parent_id
            node = self._span_by_id.get(parent) if parent is not None \
                else None
        self._stage_by_span[span.span_id] = name
        return name

    def _key_of(self, span: SpanRecord, group_by: str) -> str:
        if group_by == "resource":
            return span.resource or "(none)"
        if group_by == "machine":
            return ("driver" if span.machine_id < 0
                    else f"machine {span.machine_id}")
        if group_by == "phase":
            return span.phase or "(none)"
        if group_by == "stage":
            return self._stage_of(span)
        if group_by == "tenant":
            return self._tenant_by_job.get(_job_of(span), "(unknown)")
        if group_by == "kind":
            return span.kind
        raise CapsuleError(
            f"unknown group-by {group_by!r}; use one of {GROUP_KEYS}")

    # -- selection -----------------------------------------------------------------

    def spans(self, kind: Optional[str] = None,
              resource: Optional[str] = None,
              phase: Optional[str] = None,
              machine: Optional[int] = None,
              tenant: Optional[str] = None,
              job: Optional[int] = None) -> List[SpanRecord]:
        """Finished spans matching every given filter.

        With no ``kind`` filter the leaf layer is selected: monotask
        spans when the capsule has them (MonoSpark), attempt spans
        otherwise (Spark) -- so the same query degrades rather than
        vanishing on a blended engine.
        """
        if kind is None:
            kind = SPAN_MONOTASK if self._has_monotasks else SPAN_ATTEMPT
        out = []
        for span in self.capsule.spans:
            if not span.finished or span.kind != kind:
                continue
            if resource is not None and span.resource != resource:
                continue
            if phase is not None and span.phase != phase:
                continue
            if machine is not None and span.machine_id != machine:
                continue
            if job is not None and _job_of(span) != job:
                continue
            if tenant is not None and \
                    self._tenant_by_job.get(_job_of(span)) != tenant:
                continue
            out.append(span)
        return out

    # -- aggregation ---------------------------------------------------------------

    def aggregate(self, group_by: str = "resource",
                  metric: str = "duration",
                  **where) -> List[AggregateRow]:
        """Group the selected spans and aggregate one metric.

        ``metric`` is ``duration`` (service seconds) or ``queue``
        (seconds waiting at the resource scheduler).  Rows come back
        ordered by total seconds, largest first.
        """
        if metric not in METRICS:
            raise CapsuleError(
                f"unknown metric {metric!r}; use one of {METRICS}")
        groups: Dict[str, List[float]] = {}
        for span in self.spans(**where):
            value = span.duration if metric == "duration" else span.queue_s
            groups.setdefault(self._key_of(span, group_by), []).append(value)
        rows = []
        for key, values in groups.items():
            total = sum(values)
            rows.append(AggregateRow(
                key=key, count=len(values), total_s=total,
                mean_s=total / len(values),
                p50_s=percentile(values, 50.0),
                p95_s=percentile(values, 95.0),
                p99_s=percentile(values, 99.0)))
        rows.sort(key=lambda row: (-row.total_s, row.key))
        return rows

    def tenant_rates(self) -> List[TenantRate]:
        """RED rates per tenant: request rate, errors, latency tail."""
        by_tenant: Dict[str, List] = {}
        for record in self.capsule.serves:
            by_tenant.setdefault(record.tenant, []).append(record)
        duration = 0.0
        if self.capsule.summary is not None:
            duration = float(self.capsule.summary.get("duration_s", 0.0))
        if duration <= 0.0:
            completed_times = [r.completed for r in self.capsule.serves
                               if r.completed == r.completed]
            duration = max(completed_times) if completed_times else 0.0
        rows = []
        for tenant in sorted(by_tenant):
            records = by_tenant[tenant]
            completed = [r for r in records if r.outcome == "completed"]
            errors = len(records) - len(completed)
            latencies = [r.latency_s for r in completed]
            rows.append(TenantRate(
                tenant=tenant, requests=len(records),
                completed=len(completed), errors=errors,
                rate_per_s=(len(completed) / duration if duration > 0
                            else 0.0),
                p50_s=percentile(latencies, 50.0) if latencies else 0.0,
                p95_s=percentile(latencies, 95.0) if latencies else 0.0,
                p99_s=percentile(latencies, 99.0) if latencies else 0.0))
        return rows

    # -- presentation --------------------------------------------------------------

    def format_aggregate(self, rows: List[AggregateRow], group_by: str,
                         metric: str) -> str:
        """The aggregate as an aligned table."""
        if not rows:
            return "(no spans matched)"
        width = max(len(row.key) for row in rows)
        width = max(width, len(group_by))
        lines = [f"{group_by:<{width}}  {'count':>6} {'total_s':>9} "
                 f"{'mean_s':>8} {'p50_s':>8} {'p95_s':>8} {'p99_s':>8}"
                 f"  ({metric})"]
        for row in rows:
            lines.append(
                f"{row.key:<{width}}  {row.count:>6d} {row.total_s:>9.3f} "
                f"{row.mean_s:>8.3f} {row.p50_s:>8.3f} {row.p95_s:>8.3f} "
                f"{row.p99_s:>8.3f}")
        return "\n".join(lines)

    def format_rates(self, rows: List[TenantRate]) -> str:
        """The RED table, one tenant per line."""
        if not rows:
            return "(no serve records)"
        width = max(max(len(row.tenant) for row in rows), len("tenant"))
        lines = [f"{'tenant':<{width}}  {'req':>5} {'done':>5} {'err':>4} "
                 f"{'rate/s':>7} {'p50_s':>8} {'p95_s':>8} {'p99_s':>8}"]
        for row in rows:
            lines.append(
                f"{row.tenant:<{width}}  {row.requests:>5d} "
                f"{row.completed:>5d} {row.errors:>4d} "
                f"{row.rate_per_s:>7.3f} {row.p50_s:>8.3f} "
                f"{row.p95_s:>8.3f} {row.p99_s:>8.3f}")
        return "\n".join(lines)
