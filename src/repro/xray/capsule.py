"""Run capsules: one run, one versioned, deterministic artifact.

A *capsule* bundles everything the xray tools need to explain a run
after the fact -- config and seed, the full span/link trace, the folded
event journal, serve records, telemetry time-series snapshots, clarity
windows, and the ServeReport summary -- into a single JSON-lines file
that loads without re-simulation.

Layout (one JSON object per line, every line stamped with a ``schema``
version):

* line 1 -- the **header**: ``{"type": "capsule", "schema": 1,
  "engine": ..., "seed": ..., "config": {...}}``.
* body -- typed lines.  Spans, links, journal events, and serve
  records stream out *as the run happens* via the existing
  ``MetricsCollector`` sink/listener hooks (:meth:`RunRecorder.attach`);
  job records, telemetry series, the clarity window, and the summary
  are appended by :meth:`RunRecorder.finalize`.
* last line -- the **manifest**: per-type line counts, so a loader can
  prove the capsule is complete before trusting it.

Determinism: key order is fixed, floats round-trip through ``repr``
precision, and nothing derived from the wall clock is ever written --
so two same-seed runs produce byte-identical capsules, which is the
property CI pins.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import CapsuleError
from repro.metrics.events import JobRecord, ServeRecord
from repro.obs.journal import JournalEvent, fold_event
from repro.trace.spans import (SpanLink, SpanRecord, link_to_json,
                               span_to_json)

__all__ = ["CAPSULE_SCHEMA", "KNOWN_SCHEMAS", "RunRecorder", "Capsule"]

#: Version stamped into every capsule line; bump on incompatible change.
CAPSULE_SCHEMA = 1

#: Schema versions this loader understands.
KNOWN_SCHEMAS = (1,)

#: Line types a capsule may contain, in manifest order.
LINE_TYPES = ("capsule", "span", "link", "journal", "serve", "job",
              "telemetry", "clarity", "summary", "manifest")

#: TenantStats fields serialized into the summary line, in order.
_TENANT_FIELDS = ("tenant", "completed", "failed", "shed", "lost",
                  "p50_s", "p95_s", "p99_s", "mean_queue_delay_s",
                  "mean_service_s", "slo_s", "goodput")

#: ServeRecord fields serialized into serve lines, in order.
_SERVE_FIELDS = ("tenant", "template", "arrival", "job_id", "dispatched",
                 "completed", "outcome", "estimate_s", "slo_s", "detail")

#: Telemetry series never written to a capsule: wall-clock values are
#: the machine's, not the seed's, and would break the byte-identity of
#: same-seed capsules that CI pins.
WALL_CLOCK_METRICS = ("repro_obs_self_overhead_ms_per_s",)


def _dump_line(handle: IO[str], record: Dict[str, Any]) -> None:
    json.dump(record, handle, separators=(",", ":"))
    handle.write("\n")


def _serve_to_json(record: ServeRecord) -> Dict[str, Any]:
    line: Dict[str, Any] = {"type": "serve"}
    for field in _SERVE_FIELDS:
        line[field] = getattr(record, field)
    return line


def _serve_from_json(line: Dict[str, Any]) -> ServeRecord:
    return ServeRecord(**{field: line[field] for field in _SERVE_FIELDS})


def _journal_to_json(event: JournalEvent) -> Dict[str, Any]:
    line: Dict[str, Any] = {"type": "journal"}
    line.update(event.to_dict())
    return line


def _journal_from_json(line: Dict[str, Any]) -> JournalEvent:
    return JournalEvent(
        t=line["t"], severity=line["severity"], source=line["source"],
        kind=line["kind"], subject=line["subject"],
        detail=line.get("detail", ""), span_id=line.get("span_id", -1),
        trace_id=line.get("trace_id", ""))


def _span_from_json(line: Dict[str, Any]) -> SpanRecord:
    return SpanRecord(
        span_id=line["span_id"], trace_id=line["trace_id"],
        parent_id=line["parent_id"], kind=line["kind"], name=line["name"],
        start=line["start"], end=line["end"],
        machine_id=line["machine_id"], resource=line.get("resource", ""),
        phase=line.get("phase", ""), queue_s=line.get("queue_s", 0.0),
        nbytes=line.get("nbytes", 0.0), attrs=dict(line.get("attrs", {})))


def _link_from_json(line: Dict[str, Any]) -> SpanLink:
    return SpanLink(
        from_span_id=line["from"], to_span_id=line["to"],
        kind=line["kind"], trace_id=line["trace_id"],
        at=line.get("at", float("nan")), detail=line.get("detail", ""))


def _job_to_json(record: JobRecord) -> Dict[str, Any]:
    return {"type": "job", "job_id": record.job_id, "name": record.name,
            "start": record.start, "end": record.end}


def _job_from_json(line: Dict[str, Any]) -> JobRecord:
    return JobRecord(job_id=line["job_id"], name=line["name"],
                     start=line["start"], end=line["end"])


class RunRecorder:
    """Streams one run into a capsule file via the collector hooks.

    Usage::

        with RunRecorder("run.capsule", engine="monospark", seed=1,
                         config={...}) as recorder:
            recorder.attach(ctx.metrics)
            report = server.run()
            recorder.finalize(report=report, clarity=aggregator,
                              telemetry=obs.registry)

    :meth:`attach` registers the recorder both as a span sink (spans
    and links stream out as they close) and as an event listener
    (fault/health/driver/alert records are folded into journal lines
    through the same fold the obs journal uses; serve records become
    serve lines).  :meth:`finalize` appends everything that only exists
    at end of run; :meth:`close` writes the manifest footer.
    """

    def __init__(self, path: str, engine: str = "", seed: int = 0,
                 config: Optional[Dict[str, Any]] = None) -> None:
        self.path = path
        self.engine = engine
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._counts: Dict[str, int] = {}
        self._metrics = None
        self._finalized = False
        self._write({"type": "capsule", "engine": engine, "seed": seed,
                     "config": dict(sorted((config or {}).items()))})

    # -- streaming (collector hooks) -----------------------------------------------

    def attach(self, metrics) -> "RunRecorder":
        """Register with a collector's span-sink and listener hooks."""
        self._metrics = metrics
        metrics.add_span_sink(self)
        metrics.add_event_listener(self._on_event)
        return self

    def span_finished(self, span: SpanRecord) -> None:
        """Span-sink hook: stream one finished span into the capsule."""
        self._write(span_to_json(span))

    def link_recorded(self, link: SpanLink) -> None:
        """Span-sink hook: stream one causal link into the capsule."""
        self._write(link_to_json(link))

    def _on_event(self, source: str, record) -> None:
        if source == "serve":
            self._write(_serve_to_json(record))
        else:
            self._write(_journal_to_json(fold_event(source, record)))

    # -- finalization --------------------------------------------------------------

    def finalize(self, report=None, clarity=None, telemetry=None,
                 metrics=None) -> None:
        """Append the end-of-run sections (jobs, telemetry, clarity,
        summary).  Idempotent-hostile by design: call exactly once."""
        if self._finalized:
            raise CapsuleError(f"capsule {self.path} already finalized")
        self._finalized = True
        metrics = metrics if metrics is not None else self._metrics
        if metrics is not None:
            for job_id in sorted(metrics.jobs):
                self._write(_job_to_json(metrics.jobs[job_id]))
        if telemetry is not None:
            store = getattr(telemetry, "store", telemetry)
            for name, labels in sorted(store.series()):
                if name in WALL_CLOCK_METRICS:
                    continue
                points = [[t, value]
                          for t, value in store.points(name, labels=labels)]
                self._write({"type": "telemetry", "name": name,
                             "labels": dict(labels), "points": points})
        if clarity is not None:
            window = clarity.bottleneck()
            self._write({
                "type": "clarity", "window_s": window.window_s,
                "now": window.now, "jobs": window.jobs,
                "attributable_jobs": window.attributable_jobs,
                "attributable": window.attributable,
                "fractions": dict(sorted(window.fractions.items())),
                "machine_fractions": {
                    str(machine): fraction for machine, fraction
                    in sorted(window.machine_fractions.items())},
                "attributed_seconds": window.attributed_seconds,
                "reason": window.reason,
                "shard_fractions": {
                    str(driver): fraction for driver, fraction
                    in sorted(window.shard_fractions.items())}})
        if report is not None:
            tenants = [{field: getattr(stats, field)
                        for field in _TENANT_FIELDS}
                       for stats in report.stats]
            self._write({"type": "summary", "engine": report.engine_name,
                         "duration_s": report.duration_s,
                         "total_completed": report.total_completed,
                         "tenants": tenants})

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return  # closed: late stragglers are dropped, like the sinks
        record["schema"] = CAPSULE_SCHEMA
        _dump_line(self._handle, record)
        kind = record["type"]
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def flush(self) -> None:
        """Push buffered lines to the OS (no-op after close)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Write the manifest footer and close (idempotent)."""
        if self._handle is None:
            return
        counts = {kind: self._counts.get(kind, 0) for kind in LINE_TYPES
                  if kind not in ("capsule", "manifest")
                  and self._counts.get(kind)}
        _dump_line(self._handle, {
            "type": "manifest", "schema": CAPSULE_SCHEMA, "counts": counts,
            "lines": sum(counts.values()) + 2})
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Capsule:
    """A loaded run capsule, queryable without re-simulation.

    Duck-type compatible with the slice of
    :class:`~repro.metrics.collector.MetricsCollector` that
    :func:`repro.trace.critpath.critical_path` consumes (``jobs`` plus
    ``spans_for_job``), so critical paths extract directly from a
    loaded capsule.
    """

    def __init__(self) -> None:
        self.path = ""
        self.header: Dict[str, Any] = {}
        self.manifest: Dict[str, Any] = {}
        self.spans: List[SpanRecord] = []
        self.links: List[SpanLink] = []
        self.jobs: Dict[int, JobRecord] = {}
        self.serves: List[ServeRecord] = []
        self.journal: List[JournalEvent] = []
        #: One (name, labels, [[t, value], ...]) triple per series.
        self.telemetry: List[Tuple[str, Dict[str, str], List[List[float]]]] \
            = []
        self.clarity: Optional[Dict[str, Any]] = None
        self.summary: Optional[Dict[str, Any]] = None
        #: Body line order, for byte-faithful :meth:`save`.
        self._body: List[Tuple[str, Any]] = []
        self._spans_by_trace: Dict[str, List[SpanRecord]] = {}
        self._links_by_trace: Dict[str, List[SpanLink]] = {}
        self._critpath_cache: Dict[Tuple[int, str], Any] = {}

    # -- identity ------------------------------------------------------------------

    @property
    def engine(self) -> str:
        """The engine the run used ("monospark" or "spark")."""
        return self.header.get("engine", "")

    @property
    def seed(self) -> int:
        """The run's RNG seed, as recorded in the capsule header."""
        return self.header.get("seed", 0)

    @property
    def config(self) -> Dict[str, Any]:
        """The scenario configuration dict from the capsule header."""
        return self.header.get("config", {})

    # -- the collector duck type ---------------------------------------------------

    def job_trace_id(self, job_id: int) -> str:
        """The trace id a job's spans are keyed under (collector-compatible)."""
        return f"job-{job_id}"

    def spans_for_job(self, job_id: int) -> List[SpanRecord]:
        """All recorded spans belonging to one job (collector-compatible)."""
        return list(self._spans_by_trace.get(self.job_trace_id(job_id), ()))

    def links_for_job(self, job_id: int) -> List[SpanLink]:
        """All recorded causal links belonging to one job (collector-compatible)."""
        return list(self._links_by_trace.get(self.job_trace_id(job_id), ()))

    def critical_path_report(self, job_id: int, engine: str = ""):
        """The job's critical path, cached (mirrors the collector)."""
        engine = engine or self.engine
        key = (job_id, engine)
        report = self._critpath_cache.get(key)
        if report is None:
            from repro.trace.critpath import critical_path
            report = critical_path(self, job_id, engine=engine)
            self._critpath_cache[key] = report
        return report

    def completed_jobs(self) -> List[ServeRecord]:
        """Serve records of completed, traced requests, arrival order."""
        return [record for record in self.serves
                if record.outcome == "completed" and record.job_id >= 0
                and record.job_id in self.jobs]

    # -- load / save ---------------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Capsule":
        """Parse and validate one capsule file.

        Raises :class:`~repro.errors.CapsuleError` on a missing or
        unknown schema version, a missing header or manifest, or
        manifest counts that disagree with the lines actually present.
        """
        capsule = cls()
        capsule.path = path
        counts: Dict[str, int] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for index, raw in enumerate(handle):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError as exc:
                    raise CapsuleError(
                        f"{path}:{index + 1}: not JSON: {exc}") from exc
                capsule._ingest(path, index, line, counts)
        if not capsule.header:
            raise CapsuleError(f"{path}: missing capsule header line")
        if not capsule.manifest:
            raise CapsuleError(f"{path}: missing manifest footer line")
        declared = capsule.manifest.get("counts", {})
        body_counts = {kind: n for kind, n in counts.items()
                       if kind not in ("capsule", "manifest")}
        if declared != body_counts:
            raise CapsuleError(
                f"{path}: manifest counts {declared} disagree with "
                f"observed lines {body_counts}")
        return capsule

    def _ingest(self, path: str, index: int, line: Dict[str, Any],
                counts: Dict[str, int]) -> None:
        schema = line.get("schema")
        if schema not in KNOWN_SCHEMAS:
            raise CapsuleError(
                f"{path}:{index + 1}: unknown schema version {schema!r} "
                f"(known: {list(KNOWN_SCHEMAS)})")
        kind = line.get("type")
        if kind not in LINE_TYPES:
            raise CapsuleError(
                f"{path}:{index + 1}: unknown line type {kind!r}")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "capsule":
            if index != 0:
                raise CapsuleError(
                    f"{path}:{index + 1}: header must be the first line")
            self.header = line
            return
        if kind == "manifest":
            self.manifest = line
            return
        if kind == "span":
            span = _span_from_json(line)
            self.spans.append(span)
            self._spans_by_trace.setdefault(span.trace_id, []).append(span)
            self._body.append(("span", span))
        elif kind == "link":
            link = _link_from_json(line)
            self.links.append(link)
            self._links_by_trace.setdefault(link.trace_id, []).append(link)
            self._body.append(("link", link))
        elif kind == "journal":
            event = _journal_from_json(line)
            self.journal.append(event)
            self._body.append(("journal", event))
        elif kind == "serve":
            record = _serve_from_json(line)
            self.serves.append(record)
            self._body.append(("serve", record))
        elif kind == "job":
            record = _job_from_json(line)
            self.jobs[record.job_id] = record
            self._body.append(("job", record))
        elif kind == "telemetry":
            series = (line["name"], dict(line["labels"]),
                      [list(point) for point in line["points"]])
            self.telemetry.append(series)
            self._body.append(("telemetry", series))
        elif kind == "clarity":
            self.clarity = {k: v for k, v in line.items()
                            if k not in ("type", "schema")}
            self._body.append(("clarity", self.clarity))
        else:  # summary
            self.summary = {k: v for k, v in line.items()
                            if k not in ("type", "schema")}
            self._body.append(("summary", self.summary))

    def save(self, path: str) -> None:
        """Re-serialize from the *parsed* objects (not raw lines).

        Loading a capsule and saving it again reproduces the original
        bytes -- the round-trip property the tests pin, and the proof
        that parsing is lossless.
        """
        with open(path, "w", encoding="utf-8") as handle:
            header = {k: v for k, v in self.header.items() if k != "schema"}
            header["schema"] = CAPSULE_SCHEMA
            _dump_line(handle, header)
            for kind, payload in self._body:
                if kind == "span":
                    record = span_to_json(payload)
                elif kind == "link":
                    record = link_to_json(payload)
                elif kind == "journal":
                    record = _journal_to_json(payload)
                elif kind == "serve":
                    record = _serve_to_json(payload)
                elif kind == "job":
                    record = _job_to_json(payload)
                elif kind == "telemetry":
                    name, labels, points = payload
                    record = {"type": "telemetry", "name": name,
                              "labels": labels, "points": points}
                else:  # clarity / summary
                    record = {"type": kind, **payload}
                record["schema"] = CAPSULE_SCHEMA
                _dump_line(handle, record)
            manifest = {k: v for k, v in self.manifest.items()
                        if k != "schema"}
            manifest = {"type": "manifest", "schema": CAPSULE_SCHEMA,
                        **{k: v for k, v in manifest.items()
                           if k != "type"}}
            _dump_line(handle, manifest)

    def describe(self) -> str:
        """One human line: what this capsule holds."""
        counts = self.manifest.get("counts", {})
        body = " ".join(f"{kind}={counts[kind]}" for kind in LINE_TYPES
                        if kind in counts)
        return (f"capsule {self.path or '(unsaved)'}: engine={self.engine} "
                f"seed={self.seed} {body}")
