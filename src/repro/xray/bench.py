"""Xray benchmark: capsule determinism and differential blame.

Seeded, deterministic scenarios pin the run-capsule + differential-
debugger claims (ISSUE 10; the paper's §6.6 contrast, differential):

* **Capsule determinism** -- recording the canonical clean run twice
  with the same seed produces byte-identical capsules (sha256-gated),
  for both engines.  This is what makes capsules diffable artifacts
  rather than logs.
* **Fail-slow blame** -- diffing the degraded capsule (machine 1's NIC
  10x slower from t=5s) against the clean one must rank *network on
  machine 1* as the #1 delta, with a positive sign, carrying the
  majority of the total regression, and the diff report itself must be
  byte-stable.
* **Spark contrast** -- the same diff over Spark capsules must say NOT
  ATTRIBUTABLE: blended tasks align and total fine, but cannot be
  decomposed into per-resource blame.
* **Regress gate** -- ``DiffReport.regression``: the degraded run
  trips the threshold, the clean-vs-clean self-diff does not.

Every invariant is a deterministic function of the seed: the benchmark
runs the scenario set ``repeats`` times and raises on any cross-run
drift, so CI diffs the committed ``BENCH_xray.json`` exactly.

``scripts/bench_trajectory.py --bench xray`` runs exactly this code.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.xray.capsule import Capsule
from repro.xray.diff import diff_capsules
from repro.xray.scenario import CanonicalRun, record_run

__all__ = ["XrayWorkload", "run_xray_benchmark", "trajectory_summary"]


@dataclass(frozen=True)
class XrayWorkload:
    """The seeded scenarios the xray benchmark drives."""

    machines: int = 4
    disks: int = 2
    seed: int = 1
    tenant: str = "analytics"
    slo_s: float = 3.0
    num_blocks: int = 4
    block_mb: float = 48.0
    jobs: int = 12
    period_s: float = 2.5
    slow_machine: int = 1
    slow_at: float = 5.0
    slow_factor: float = 10.0
    noise_floor_s: float = 0.05
    #: ``repro xray regress`` default: fail CI past this many seconds.
    regress_threshold_s: float = 0.5

    def run(self, engine: str = "monospark",
            degraded: bool = False) -> CanonicalRun:
        """The equivalent :class:`CanonicalRun` for one recording."""
        return CanonicalRun(
            engine=engine, machines=self.machines, disks=self.disks,
            seed=self.seed, tenant=self.tenant, slo_s=self.slo_s,
            num_blocks=self.num_blocks, block_mb=self.block_mb,
            jobs=self.jobs, period_s=self.period_s,
            degrade_machine=self.slow_machine if degraded else None,
            degrade_at=self.slow_at, degrade_factor=self.slow_factor)

    def params(self) -> Dict:
        """The workload knobs, for embedding in the JSON summary."""
        return {
            "machines": self.machines, "disks": self.disks,
            "seed": self.seed, "tenant": self.tenant,
            "slo_s": self.slo_s, "num_blocks": self.num_blocks,
            "block_mb": self.block_mb, "jobs": self.jobs,
            "period_s": self.period_s,
            "slow_machine": self.slow_machine,
            "slow_at": self.slow_at, "slow_factor": self.slow_factor,
            "noise_floor_s": self.noise_floor_s,
            "regress_threshold_s": self.regress_threshold_s,
        }


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _capsule_invariants(capsule: Capsule, path: str) -> Dict:
    return {
        "sha256": _sha256(path),
        "counts": dict(capsule.manifest.get("counts", {})),
        "completed_jobs": len(capsule.completed_jobs()),
    }


def _record_deterministic(workdir: str, name: str,
                          run: CanonicalRun) -> Capsule:
    """Record the run twice; gate byte-identity; return the capsule."""
    first = os.path.join(workdir, f"{name}.capsule")
    again = os.path.join(workdir, f"{name}-again.capsule")
    capsule = record_run(first, run)
    record_run(again, run)
    if _sha256(first) != _sha256(again):
        raise AssertionError(
            f"same-seed capsules differ for {name}: recording is not "
            f"deterministic")
    return capsule


def _blame_gate(clean: Capsule, degraded: Capsule,
                workload: XrayWorkload) -> Dict:
    """Diff degraded vs clean: machine 1's network must be blamed."""
    report = diff_capsules(clean, degraded,
                           noise_floor_s=workload.noise_floor_s)
    if not report.attributable:
        raise AssertionError("monospark diff came back unattributable")
    if report.delta_total <= 0:
        raise AssertionError(
            f"degraded run was not slower: delta "
            f"{report.delta_total:+.3f}s")
    if not report.entries:
        raise AssertionError("no blame cells cleared the noise floor")
    top = report.entries[0]
    if "network" not in top.label or top.machine_id != \
            workload.slow_machine:
        raise AssertionError(
            f"#1 blame is {top.label} on machine {top.machine_id}, "
            f"expected network on machine {workload.slow_machine}")
    if top.delta <= 0:
        raise AssertionError(
            f"#1 blame has the wrong sign: {top.delta:+.3f}s")
    if top.delta < 0.5 * report.delta_total:
        raise AssertionError(
            f"#1 blame carries only {top.delta:.3f}s of the "
            f"{report.delta_total:.3f}s regression -- magnitude is off")
    if report.first_divergence is None:
        raise AssertionError("no first diverging span was identified")
    if not report.regression(workload.regress_threshold_s):
        raise AssertionError(
            f"regression gate missed a {report.delta_total:+.3f}s "
            f"regression at threshold {workload.regress_threshold_s}s")
    text = report.format()
    return {
        "aligned_jobs": len(report.pairs),
        "delta_total_s": round(report.delta_total, 6),
        "top": {
            "label": top.label,
            "machine": top.machine_id,
            "phase": top.phase,
            "delta_s": round(top.delta, 6),
            "share": round(top.delta / report.delta_total, 4),
        },
        "ranked_cells": len(report.entries),
        "first_diverging_job": report.first_divergence.job_b,
        "narrative": report.narrative(),
        "report_sha256": hashlib.sha256(
            text.encode("utf-8")).hexdigest(),
    }


def _spark_gate(spark_clean: Capsule, spark_degraded: Capsule,
                workload: XrayWorkload) -> Dict:
    """The same diff on Spark capsules must refuse to decompose."""
    report = diff_capsules(spark_clean, spark_degraded,
                           noise_floor_s=workload.noise_floor_s)
    if report.attributable:
        raise AssertionError(
            "spark diff claims per-resource attribution -- blended "
            "tasks cannot support that")
    text = report.format()
    if "NOT ATTRIBUTABLE" not in text:
        raise AssertionError(
            f"spark diff report does not say NOT ATTRIBUTABLE:\n{text}")
    return {
        "aligned_jobs": len(report.pairs),
        "delta_total_s": round(report.delta_total, 6),
        "not_attributable": True,
        "narrative": report.narrative(),
    }


def _self_diff_gate(clean: Capsule, workload: XrayWorkload) -> Dict:
    """A run diffed against itself must be silent: no regression."""
    report = diff_capsules(clean, clean,
                           noise_floor_s=workload.noise_floor_s)
    if report.entries:
        raise AssertionError(
            f"self-diff produced blame cells: {report.entries}")
    if report.regression(workload.regress_threshold_s):
        raise AssertionError("self-diff tripped the regression gate")
    if abs(report.delta_total) > 1e-9:
        raise AssertionError(
            f"self-diff delta is not zero: {report.delta_total!r}")
    return {
        "aligned_jobs": len(report.pairs),
        "delta_total_s": round(report.delta_total, 6),
        "regression": False,
    }


def run_xray_benchmark(workload: Optional[XrayWorkload] = None,
                       repeats: int = 2) -> Dict:
    """All invariants, verified byte-stable across repeats."""
    if workload is None:
        workload = XrayWorkload()
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        workdir = tempfile.mkdtemp(prefix="repro-xray-bench-")
        try:
            clean = _record_deterministic(
                workdir, "clean", workload.run("monospark"))
            degraded = _record_deterministic(
                workdir, "degraded",
                workload.run("monospark", degraded=True))
            spark_clean = _record_deterministic(
                workdir, "spark-clean", workload.run("spark"))
            spark_degraded = _record_deterministic(
                workdir, "spark-degraded",
                workload.run("spark", degraded=True))
            invariants = {
                "capsules": {
                    "clean": _capsule_invariants(
                        clean, clean.path),
                    "degraded": _capsule_invariants(
                        degraded, degraded.path),
                    "spark_clean": _capsule_invariants(
                        spark_clean, spark_clean.path),
                    "spark_degraded": _capsule_invariants(
                        spark_degraded, spark_degraded.path),
                },
                "blame": _blame_gate(clean, degraded, workload),
                "spark": _spark_gate(spark_clean, spark_degraded,
                                     workload),
                "self_diff": _self_diff_gate(clean, workload),
            }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if best is None:
            best = invariants
        elif invariants != best:
            raise AssertionError(
                f"non-deterministic benchmark run: {invariants} != {best}")
    return {"invariants": best}


def trajectory_summary(result: Dict,
                       workload: Optional[XrayWorkload] = None,
                       repeats: int = 2) -> Dict:
    """The JSON dict ``BENCH_xray.json`` holds (exactly diffed in CI)."""
    if workload is None:
        workload = XrayWorkload()
    return {
        "benchmark": "xray_diff",
        "workload": workload.params(),
        "repeats": repeats,
        "invariants": result["invariants"],
    }
