"""repro.xray: run capsules plus a differential performance debugger.

The paper's clarity promise, made comparative: record any run into a
single deterministic *capsule* (spans, links, journal, telemetry,
clarity windows, summary -- schema-versioned and loadable without
re-simulation), query it like a trace-analytics store, and *diff* two
capsules to answer "why is run B slower than run A?" with ranked,
causal, per-``resource x machine x phase`` blame -- exact on MonoSpark,
explicitly NOT ATTRIBUTABLE on Spark (§6.6).
"""

from repro.xray.capsule import (CAPSULE_SCHEMA, KNOWN_SCHEMAS, Capsule,
                                RunRecorder)
from repro.xray.diff import (DEFAULT_MIN_FRACTION, DEFAULT_NOISE_FLOOR_S,
                             BlameEntry, DiffReport, JobPair, align_jobs,
                             diff_capsules)
from repro.xray.query import (GROUP_KEYS, AggregateRow, CapsuleQuery,
                              TenantRate)
from repro.xray.scenario import CanonicalRun, record_run

__all__ = [
    "CAPSULE_SCHEMA",
    "KNOWN_SCHEMAS",
    "Capsule",
    "RunRecorder",
    "CapsuleQuery",
    "AggregateRow",
    "TenantRate",
    "GROUP_KEYS",
    "DiffReport",
    "BlameEntry",
    "JobPair",
    "diff_capsules",
    "align_jobs",
    "DEFAULT_NOISE_FLOOR_S",
    "DEFAULT_MIN_FRACTION",
    "CanonicalRun",
    "record_run",
]
