"""The canonical capsule-recording scenario.

One parameterized serving run -- the same fail-slow workload the
health, obs, and xray benchmarks all speak about -- wired end to end
with a :class:`~repro.xray.capsule.RunRecorder` attached.  The CLI
(``repro xray record``), the benchmark (:mod:`repro.xray.bench`), the
example (``examples/run_diff.py``), and the tests all call
:func:`record_run` so "the canonical clean/degraded capsules" means
exactly one thing everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.xray.capsule import Capsule, RunRecorder

__all__ = ["CanonicalRun", "record_run"]


@dataclass(frozen=True)
class CanonicalRun:
    """Knobs of one recorded run.

    Defaults are the canonical xray seeds: the obs benchmark's
    fail-slow serving stream with a shuffle-heavy wordcount (48 MB
    blocks), so a degraded NIC lands on the critical path as *network*
    seconds rather than hiding behind compute."""

    engine: str = "monospark"
    machines: int = 4
    disks: int = 2
    seed: int = 1
    tenant: str = "analytics"
    slo_s: float = 3.0
    num_blocks: int = 4
    block_mb: float = 48.0
    jobs: int = 12
    period_s: float = 2.5
    #: Machine whose NIC degrades mid-run; None records a clean run.
    degrade_machine: Optional[int] = None
    degrade_at: float = 5.0
    degrade_factor: float = 10.0
    #: Run the health monitor alongside.  Off by default: exclusion
    #: *mitigates* the fault by moving work off the slow machine, which
    #: is the right production behavior but the wrong canonical diff --
    #: xray's demo is explaining an unmitigated degradation.
    health: bool = False

    def degraded(self, machine: int = 1) -> "CanonicalRun":
        """This run with the canonical fail-slow fault injected."""
        return replace(self, degrade_machine=machine)

    def params(self) -> Dict:
        """The knobs as a JSON-ready dict (the capsule's config)."""
        return {
            "engine": self.engine, "machines": self.machines,
            "disks": self.disks, "seed": self.seed,
            "tenant": self.tenant, "slo_s": self.slo_s,
            "num_blocks": self.num_blocks, "block_mb": self.block_mb,
            "jobs": self.jobs, "period_s": self.period_s,
            "degrade_machine": self.degrade_machine,
            "degrade_at": self.degrade_at,
            "degrade_factor": self.degrade_factor,
            "health": self.health,
        }


def record_run(path: str, run: Optional[CanonicalRun] = None) -> Capsule:
    """Simulate one canonical run, recording it into ``path``.

    Returns the capsule *loaded back from disk*, so callers hold
    exactly what any later reader will see.
    """
    from repro.api.context import AnalyticsContext
    from repro.clarity import ClarityAggregator
    from repro.cluster import hdd_cluster
    from repro.faults import FaultInjector, fail_slow_plan
    from repro.health import HealthMonitor, HealthPolicy
    from repro.obs import ObservabilityPlane
    from repro.serve import JobServer
    from repro.serve.workload import TraceArrivals, wordcount_template

    if run is None:
        run = CanonicalRun()
    cluster = hdd_cluster(num_machines=run.machines, num_disks=run.disks,
                          seed=run.seed)
    ctx = AnalyticsContext(cluster, engine=run.engine)
    with RunRecorder(path, engine=run.engine, seed=run.seed,
                     config=run.params()) as recorder:
        recorder.attach(ctx.metrics)
        if run.degrade_machine is not None:
            plan = fail_slow_plan(machine_id=run.degrade_machine,
                                  at=run.degrade_at,
                                  factor=run.degrade_factor)
            FaultInjector(ctx.engine, plan).start()
        monitor = (HealthMonitor(ctx.engine, HealthPolicy())
                   if run.health else None)
        obs = ObservabilityPlane()
        aggregator = ClarityAggregator(engine=ctx.engine.name,
                                       window_s=1e9)
        server = JobServer(ctx, seed=run.seed, health=monitor,
                           clarity=aggregator, obs=obs)
        server.add_tenant(run.tenant, slo_s=run.slo_s)
        template = wordcount_template(ctx, num_blocks=run.num_blocks,
                                      block_mb=run.block_mb)
        arrivals = TraceArrivals([1.0 + run.period_s * i
                                  for i in range(run.jobs)])
        server.add_workload(run.tenant, template, arrivals)
        report = server.run()
        recorder.finalize(report=report, clarity=aggregator,
                          telemetry=obs.registry)
    return Capsule.load(path)
