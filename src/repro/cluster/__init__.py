"""Simulated cluster: machines, network fabric, and the DFS block store."""

from repro.cluster.cluster import Cluster, hdd_cluster, ssd_cluster
from repro.cluster.hdfs import DEFAULT_BLOCK_BYTES, Dfs, DfsBlock, DfsFile
from repro.cluster.machine import Machine

__all__ = [
    "Cluster",
    "hdd_cluster",
    "ssd_cluster",
    "Dfs",
    "DfsBlock",
    "DfsFile",
    "DEFAULT_BLOCK_BYTES",
    "Machine",
]
