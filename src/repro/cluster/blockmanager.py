"""In-memory storage of cached RDD partitions (Spark's block manager).

Cached partitions live in the memory of the machine that computed them;
later jobs read them locally with no disk, network, or deserialization
cost (when cached deserialized).  This is the mechanism behind the
paper's "input stored in-memory and deserialized" experiments (§6.3,
Figure 13).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.datamodel.records import Partition
from repro.datamodel.serialization import DataFormat
from repro.errors import ExecutionError
from repro.metrics.events import FaultEventRecord

__all__ = ["BlockManager"]


class BlockManager:
    """Cluster-wide map of cached RDD partitions."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._blocks: Dict[Tuple[int, int],
                           Tuple[int, Partition, DataFormat]] = {}
        #: Optional MetricsCollector (attached by the engine): machine
        #: invalidations are recorded as fault events so cache loss is
        #: attributable in the clarity pipeline instead of silent.
        self.metrics = None
        #: Cumulative loss counters, exposed as telemetry by the engine.
        self.invalidated_partitions = 0
        self.invalidated_bytes = 0.0

    def has(self, rdd_id: int, partition_index: int) -> bool:
        """True if the partition is cached somewhere."""
        return (rdd_id, partition_index) in self._blocks

    def location(self, rdd_id: int, partition_index: int) -> Optional[int]:
        """Machine holding the cached partition, or None."""
        entry = self._blocks.get((rdd_id, partition_index))
        return entry[0] if entry else None

    def get(self, rdd_id: int,
            partition_index: int) -> Tuple[int, Partition, DataFormat]:
        """The cached (machine, partition, format); raises if absent."""
        entry = self._blocks.get((rdd_id, partition_index))
        if entry is None:
            raise ExecutionError(
                f"partition {partition_index} of RDD {rdd_id} is not cached")
        return entry

    def put(self, rdd_id: int, partition_index: int, machine_id: int,
            partition: Partition, fmt: DataFormat) -> None:
        """Cache a partition on a machine, accounting its memory."""
        key = (rdd_id, partition_index)
        old = self._blocks.get(key)
        machine = self.cluster.machine(machine_id)
        if old is not None:
            self.cluster.machine(old[0]).memory.release(old[1].data_bytes)
        machine.memory.acquire(partition.data_bytes)
        self._blocks[key] = (machine_id, partition, fmt)

    def invalidate_machine(self, machine_id: int) -> int:
        """Drop every partition cached on a crashed machine.

        The memory accounting is released (the machine restarts with an
        empty heap); returns the number of partitions lost.  Lost cached
        partitions are *not* recomputed automatically -- a later read
        fails, like Spark with an unreplicated cache and no lineage
        checkpoint.
        """
        keys = [key for key, (machine, _, _) in self._blocks.items()
                if machine == machine_id]
        lost_bytes = 0.0
        for key in keys:
            _, partition, _ = self._blocks.pop(key)
            lost_bytes += partition.data_bytes
            self.cluster.machine(machine_id).memory.release(
                partition.data_bytes)
        if keys:
            self.invalidated_partitions += len(keys)
            self.invalidated_bytes += lost_bytes
            if self.metrics is not None:
                # Attributable cache loss: lands in the fault event
                # stream (and the trace) instead of vanishing silently.
                self.metrics.record_fault(FaultEventRecord(
                    kind="cache-invalidation", machine_id=machine_id,
                    at=self.cluster.env.now,
                    detail=f"{len(keys)} cached partitions "
                           f"({lost_bytes:.0f} bytes) lost"))
        return len(keys)

    def evict_rdd(self, rdd_id: int) -> int:
        """Drop every cached partition of an RDD; returns count evicted."""
        keys = [key for key in self._blocks if key[0] == rdd_id]
        for key in keys:
            machine_id, partition, _ = self._blocks.pop(key)
            self.cluster.machine(machine_id).memory.release(
                partition.data_bytes)
        return len(keys)

    def cached_bytes(self) -> float:
        """Total bytes cached cluster-wide."""
        return sum(partition.data_bytes
                   for _, partition, _ in self._blocks.values())
