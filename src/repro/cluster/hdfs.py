"""A distributed file system model (HDFS-like).

Files are split into fixed-size blocks; each block is replicated on
``replication`` machines (chosen round-robin for determinism, like a
balanced HDFS).  The job scheduler uses the block → machine map for
locality-aware task placement, exactly as both Spark and MonoSpark do
(§3.2: "multitasks ... are assigned to workers based on data locality").

Blocks carry *modeled* sizes plus the actual partition payloads so that
reads return real records while charging simulated disk time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, SimulationError

__all__ = ["DfsBlock", "DfsFile", "Dfs", "DEFAULT_BLOCK_BYTES"]

DEFAULT_BLOCK_BYTES = 128 * 1024 * 1024


@dataclass
class DfsBlock:
    """One block of a DFS file."""

    file_name: str
    index: int
    nbytes: float
    #: (machine_id, disk_index) replicas holding this block.
    replicas: List[Tuple[int, int]]
    #: Opaque payload (a Partition for input files, None for pure output).
    payload: object = None

    @property
    def block_id(self) -> str:
        """Unique id: file name plus block index."""
        return f"{self.file_name}#{self.index}"

    def machines(self) -> List[int]:
        """Machines holding a replica."""
        return [machine for machine, _ in self.replicas]

    def disk_on(self, machine_id: int) -> int:
        """Which disk holds the replica on ``machine_id``."""
        for machine, disk in self.replicas:
            if machine == machine_id:
                return disk
        raise ExecutionError(
            f"block {self.block_id} has no replica on machine {machine_id}")


@dataclass
class DfsFile:
    name: str
    blocks: List[DfsBlock] = field(default_factory=list)

    @property
    def nbytes(self) -> float:
        """Total stored bytes across the file's blocks."""
        return sum(block.nbytes for block in self.blocks)


class Dfs:
    """The cluster-wide block store."""

    def __init__(self, num_machines: int, disks_per_machine: int,
                 replication: int = 3,
                 block_bytes: float = DEFAULT_BLOCK_BYTES) -> None:
        if num_machines < 1:
            raise SimulationError("DFS needs at least one machine")
        if replication < 1:
            raise SimulationError("replication must be >= 1")
        self.num_machines = num_machines
        self.disks_per_machine = disks_per_machine
        self.replication = min(replication, num_machines)
        self.block_bytes = block_bytes
        self._files: Dict[str, DfsFile] = {}
        self._placement_cursor = 0
        self._exclusion_provider = None

    def set_exclusion_provider(self, provider) -> None:
        """Register a zero-arg callable returning machine ids that must
        not receive new replicas (dead or health-excluded machines).

        Wired up by the engine so DFS placement agrees with the task
        pool's exclusion-aware scheduling: a blacklisted machine should
        not be handed fresh replicas any more than fresh tasks.
        """
        self._exclusion_provider = provider

    def _excluded_machines(self) -> set:
        if self._exclusion_provider is None:
            return set()
        return set(self._exclusion_provider())

    def _place_block(self) -> List[Tuple[int, int]]:
        """Round-robin placement over the non-excluded machines.

        Falls back to the full machine set when exclusions leave fewer
        machines than replicas need -- degraded placement beats failing
        the write.  The cursor advances once per block either way, so
        the same exclusion state always yields the same placement.
        """
        excluded = self._excluded_machines()
        eligible = [m for m in range(self.num_machines) if m not in excluded]
        if len(eligible) < self.replication:
            eligible = list(range(self.num_machines))
        replicas = []
        for r in range(self.replication):
            slot = self._placement_cursor + r
            machine = eligible[slot % len(eligible)]
            disk = (slot // len(eligible)) % self.disks_per_machine
            replicas.append((machine, disk))
        self._placement_cursor += 1
        return replicas

    def create_file(self, name: str, block_payloads: Sequence[object],
                    block_sizes: Sequence[float]) -> DfsFile:
        """Register a file whose blocks already exist on disk.

        Used to set up input data before a job runs, mirroring the paper's
        experimental setup of pre-loading HDFS with the input dataset.
        """
        if name in self._files:
            raise SimulationError(f"DFS file already exists: {name}")
        if len(block_payloads) != len(block_sizes):
            raise SimulationError("payloads and sizes must align")
        dfs_file = DfsFile(name)
        for index, (payload, nbytes) in enumerate(
                zip(block_payloads, block_sizes)):
            dfs_file.blocks.append(DfsBlock(
                file_name=name, index=index, nbytes=nbytes,
                replicas=self._place_block(), payload=payload))
        self._files[name] = dfs_file
        return dfs_file

    def open_output_file(self, name: str) -> DfsFile:
        """Create an empty file that tasks will append output blocks to."""
        if name in self._files:
            raise SimulationError(f"DFS file already exists: {name}")
        dfs_file = DfsFile(name)
        self._files[name] = dfs_file
        return dfs_file

    def append_output_block(self, name: str, nbytes: float,
                            writer_machine: int, writer_disk: int,
                            payload: object = None) -> DfsBlock:
        """Record a block written by a task (first replica is local)."""
        dfs_file = self._files.get(name)
        if dfs_file is None:
            raise ExecutionError(f"no such DFS file: {name}")
        replicas = [(writer_machine, writer_disk)]
        block = DfsBlock(file_name=name, index=len(dfs_file.blocks),
                         nbytes=nbytes, replicas=replicas, payload=payload)
        dfs_file.blocks.append(block)
        return block

    def get_file(self, name: str) -> DfsFile:
        """Look up a file; raises if it does not exist."""
        dfs_file = self._files.get(name)
        if dfs_file is None:
            raise ExecutionError(f"no such DFS file: {name}")
        return dfs_file

    def exists(self, name: str) -> bool:
        """True if the file exists."""
        return name in self._files

    def files(self) -> List[str]:
        """All file names, sorted."""
        return sorted(self._files)
