"""Cluster construction: machines, the network fabric, and the DFS.

A :class:`Cluster` owns one simulation :class:`Environment` plus all the
hardware on it.  Helper constructors build the paper's cluster shapes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import HDD, MB, SSD, MachineSpec
from repro.errors import ConfigError
from repro.cluster.hdfs import Dfs, DEFAULT_BLOCK_BYTES
from repro.cluster.machine import Machine
from repro.simulator import Environment, Network, RngStreams

__all__ = ["Cluster", "hdd_cluster", "ssd_cluster"]


class Cluster:
    """A simulated cluster of identical workers."""

    def __init__(self, num_machines: int, spec: MachineSpec,
                 replication: int = 3,
                 block_bytes: float = DEFAULT_BLOCK_BYTES,
                 seed: int = 0) -> None:
        if num_machines < 1:
            raise ConfigError("cluster needs at least one machine")
        self.env = Environment()
        self.spec = spec
        self.rng = RngStreams(seed)
        self.network = Network(self.env)
        self.machines: List[Machine] = [
            Machine(self.env, machine_id, spec, self.network)
            for machine_id in range(num_machines)
        ]
        self.dfs = Dfs(num_machines, len(spec.disks), replication=replication,
                       block_bytes=block_bytes)

    @property
    def num_machines(self) -> int:
        """Workers in the cluster."""
        return len(self.machines)

    @property
    def total_cores(self) -> int:
        """Cores across all workers."""
        return sum(m.spec.cores for m in self.machines)

    @property
    def total_disks(self) -> int:
        """Disks across all workers."""
        return sum(m.num_disks for m in self.machines)

    def machine(self, machine_id: int) -> Machine:
        """Look up one worker by id."""
        return self.machines[machine_id]

    def set_tracker_retention(self, retention_s: Optional[float]) -> None:
        """Bound every hardware busy-tracker's change log to roughly
        ``retention_s`` of history (``None`` retains everything).

        An always-on serving run keeps its telemetry in a sliding
        window; the trackers feeding that telemetry must forget on the
        same horizon or their change logs grow without bound.  Queries
        older than the horizon are answered by proration (documented on
        :class:`~repro.simulator.resources.BusyTracker`).
        """
        for machine in self.machines:
            machine.cpu.tracker.set_retention(retention_s)
            for disk in machine.disks:
                disk.tracker.set_retention(retention_s)
        for tracker in self.network.rx_trackers.values():
            tracker.set_retention(retention_s)
        for tracker in self.network.tx_trackers.values():
            tracker.set_retention(retention_s)

    def degrade_machine(self, machine_id: int, cpu_factor: float = 1.0,
                        disk_factor: float = 1.0) -> None:
        """Slow one machine's hardware (before running any job).

        The paper's introduction asks "Is hardware degradation leading to
        poor performance?" -- this injects such degradation so the
        monotask-based diagnosis (:mod:`repro.model.diagnosis`) can find
        it.  Factors are relative speeds: 0.5 means half speed.
        """
        from dataclasses import replace as _replace
        if cpu_factor <= 0 or disk_factor <= 0:
            raise ConfigError("degradation factors must be positive")
        machine = self.machine(machine_id)
        machine.cpu.speed_factor = cpu_factor
        for disk in machine.disks:
            disk.spec = _replace(
                disk.spec,
                throughput_bps=disk.spec.throughput_bps * disk_factor)

    def restore_machine(self, machine_id: int) -> None:
        """Undo :meth:`degrade_machine`: full-speed CPU and disks.

        Used by transient-slowdown fault injection to end the slowdown.
        """
        machine = self.machine(machine_id)
        machine.cpu.speed_factor = 1.0
        for disk in machine.disks:
            disk.spec = disk.base_spec

    def aggregate_disk_throughput_bps(self) -> float:
        """Sum of sequential disk bandwidth across the cluster."""
        return sum(m.aggregate_disk_throughput_bps() for m in self.machines)

    def aggregate_network_bps(self) -> float:
        """Sum of one-direction NIC bandwidth across the cluster."""
        return sum(m.spec.network_bps for m in self.machines)

    def describe(self) -> str:
        """One-line human description of the hardware."""
        spec = self.spec
        disks = "+".join(d.kind for d in spec.disks)
        return (f"{self.num_machines} machines x ({spec.cores} cores, "
                f"{disks}, {spec.network_bps / MB:.0f} MB/s net)")


def hdd_cluster(num_machines: int, num_disks: int = 2, cores: int = 8,
                seed: int = 0, replication: int = 3,
                **spec_overrides) -> Cluster:
    """The paper's m2.4xlarge-style cluster: HDD workers."""
    spec = MachineSpec(cores=cores, disks=(HDD,) * num_disks,
                       **spec_overrides)
    return Cluster(num_machines, spec, seed=seed, replication=replication)


def ssd_cluster(num_machines: int, num_disks: int = 2, cores: int = 8,
                seed: int = 0, replication: int = 3,
                **spec_overrides) -> Cluster:
    """The paper's i2.2xlarge-style cluster: SSD workers."""
    spec = MachineSpec(cores=cores, disks=(SSD,) * num_disks,
                       **spec_overrides)
    return Cluster(num_machines, spec, seed=seed, replication=replication)
