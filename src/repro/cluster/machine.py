"""A simulated worker machine.

Bundles the hardware models -- CPU cores, disks, the OS buffer cache, the
memory pool, and the NIC registration -- for one worker, giving both
frameworks a single object to schedule against.
"""

from __future__ import annotations

from typing import List

from repro.config import MachineSpec
from repro.simulator import (BufferCache, CpuPool, Disk, Environment,
                             MemoryPool, Network)

__all__ = ["Machine"]


class Machine:
    """One worker: id, hardware models, and attachment to the fabric."""

    def __init__(self, env: Environment, machine_id: int, spec: MachineSpec,
                 network: Network) -> None:
        self.env = env
        self.machine_id = machine_id
        self.spec = spec
        self.cpu = CpuPool(env, spec.cores, name=f"m{machine_id}.cpu")
        self.disks: List[Disk] = [
            Disk(env, disk_spec, name=f"m{machine_id}.disk{i}")
            for i, disk_spec in enumerate(spec.disks)
        ]
        self.cache = BufferCache(env, spec, self.disks,
                                 name=f"m{machine_id}.cache")
        self.memory = MemoryPool(env, spec.memory_bytes,
                                 name=f"m{machine_id}.mem")
        self.network = network
        network.register_machine(machine_id, up_bps=spec.network_bps,
                                 down_bps=spec.network_bps)
        self._next_write_disk = 0

    @property
    def num_disks(self) -> int:
        """Disks attached to this machine."""
        return len(self.disks)

    def pick_write_disk(self) -> int:
        """Choose a disk for new data: round-robin, load-unaware.

        The paper notes (§8, "Disk scheduling") that its prototype balances
        requests across disks independent of load; we match that.
        """
        disk = self._next_write_disk
        self._next_write_disk = (self._next_write_disk + 1) % self.num_disks
        return disk

    def aggregate_disk_throughput_bps(self) -> float:
        """Sum of this machine's sequential disk bandwidth."""
        return sum(d.spec.throughput_bps for d in self.disks)

    def __repr__(self) -> str:
        return (f"Machine({self.machine_id}, cores={self.spec.cores}, "
                f"disks={self.num_disks})")
