"""The machine-learning workload (§5.2, Figure 7).

Least-squares via block coordinate descent on a matrix of one million
rows by 4096 columns, over row blocks: each stage multiplies every row
block against the current coefficient column block and aggregates the
partial gram matrices.  Three properties distinguish it from the other
workloads (§5.2): the CPU path is *efficient* (matrices of primitive
doubles, OpenBLAS via JNI -- serialization is a near-memcpy); a large
amount of data crosses the network between stages (each task ships a
``cols x block_cols`` partial product); and shuffle data stays in memory
(no disk at all once the input is cached).

Real semantics: each task multiplies a small numpy sample of its row
block, so results are numerically checkable; modeled sizes carry the
full matrix dimensions.  Records are whole row *blocks* (one per
partition), not rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.api.context import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster.cluster import Cluster
from repro.config import GB, MB
from repro.datamodel.records import Partition
from repro.engine.base import JobResult
from repro.errors import ConfigError

__all__ = ["MlWorkload", "make_ml_context", "run_ml_iteration",
           "run_ml_workload"]

#: The multiply is ~2 * block_cols FLOPs per input byte; at OpenBLAS
#: rates that is roughly 80 MB/s of input per core.
BLAS_CPU_S_PER_BYTE = 1.0 / (80 * MB)
#: Primitive double arrays (de)serialize at near-memcpy speed.
FAST_SER_S_PER_BYTE = 1.0 / (2 * GB)
#: Tree-aggregation fan-out: each partial product is shipped in chunks
#: to this many aggregators (Spark's treeAggregate).
AGG_FANOUT = 32


@dataclass(frozen=True)
class MlWorkload:
    """Block coordinate descent dimensions."""

    rows: float = 1e6
    cols: int = 4096
    num_row_blocks: int = 120
    #: Columns updated per iteration (the coordinate block).
    block_cols: int = 512
    sample_rows: int = 8
    sample_cols: int = 16

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols < 1 or self.num_row_blocks < 1:
            raise ConfigError(f"invalid ML workload: {self}")

    @property
    def matrix_bytes(self) -> float:
        """Full matrix size in bytes (doubles)."""
        return self.rows * self.cols * 8.0

    @property
    def block_bytes(self) -> float:
        """Bytes per row block."""
        return self.matrix_bytes / self.num_row_blocks

    @property
    def partial_product_bytes(self) -> float:
        """Bytes each task contributes to the shuffle each iteration:
        a (cols x block_cols) partial product."""
        return float(self.cols * self.block_cols * 8)


def make_ml_context(cluster: Cluster, engine: str,
                    workload: Optional[MlWorkload] = None,
                    seed: int = 0, **engine_options) -> AnalyticsContext:
    """Context with in-memory shuffle plus the cached input matrix."""
    workload = workload or MlWorkload()
    ctx = AnalyticsContext(cluster, engine=engine, shuffle_in_memory=True,
                           **engine_options)
    rng = np.random.default_rng(seed)
    partitions: List[Partition] = []
    for block_index in range(workload.num_row_blocks):
        sample = rng.standard_normal(
            (workload.sample_rows, workload.sample_cols))
        partitions.append(Partition(
            records=[(block_index, sample)],
            record_count=1.0,  # one row *block* per partition
            data_bytes=workload.block_bytes))
    matrix = ctx.parallelize_partitions(partitions)
    matrix.cache()
    # Materialize the cached matrix (the paper's workload keeps its
    # input in memory; this warmup job is not part of any figure).
    matrix.count()
    ctx._ml_matrix = matrix  # stashed for run_ml_iteration
    ctx._ml_workload = workload
    return ctx


def run_ml_iteration(ctx: AnalyticsContext, iteration: int) -> JobResult:
    """One block-coordinate-descent step: multiply + tree-aggregate."""
    workload: MlWorkload = ctx._ml_workload
    matrix = ctx._ml_matrix
    chunk_bytes = workload.partial_product_bytes / AGG_FANOUT

    def multiply(record):
        block_index, sample = record
        gram = sample.T @ sample
        # Ship the partial product in AGG_FANOUT keyed chunks.
        return [((iteration, chunk), gram)
                for chunk in range(AGG_FANOUT)]

    partials = matrix.flat_map(
        multiply,
        cost=OpCost(per_record_s=0.0, per_byte_s=BLAS_CPU_S_PER_BYTE),
        count_ratio=float(AGG_FANOUT),
        output_row_bytes=lambda record: chunk_bytes)
    aggregated = partials.reduce_by_key(
        lambda a, b: a + b, num_partitions=AGG_FANOUT,
        combine_cost=OpCost(per_byte_s=FAST_SER_S_PER_BYTE),
        map_side_combine=False)
    aggregated.count()
    return ctx.last_result


def run_ml_workload(ctx: AnalyticsContext,
                    iterations: int = 3) -> List[JobResult]:
    """Run several iterations; one JobResult per iteration (= 2 stages)."""
    return [run_ml_iteration(ctx, i) for i in range(iterations)]
