"""The Big Data Benchmark (§5.2, Figures 5/6/9/12/14/15/17).

Synthetic reproduction of the AMPLab Big Data Benchmark at scale factor
five: a ``rankings`` table (pageURL, pageRank, avgDuration), a
``uservisits`` table (sourceIP, destURL, visitDate, adRevenue, ...), and
a ``documents`` corpus, stored as compressed sequence files.  Table
volumes follow the published scale-5 dataset; ``fraction`` scales
everything down proportionally for fast simulation (shapes -- who is the
bottleneck, who wins -- are volume-independent).

Queries:

* **1a/1b/1c** -- scan-and-filter on rankings with increasing result
  sizes (1c writes most of the table back out, the §5.3 buffer-cache
  case).
* **2a/2b/2c** -- substring aggregation over uservisits with increasing
  group counts (2c's map stage is the paper's Figure 9 CPU-bound stage).
* **3a/3b/3c** -- date-filtered join of uservisits and rankings, then a
  per-IP aggregation (3c has the large on-disk shuffle the paper calls
  out in §6.2).
* **4** -- a UDF ("Python script") pass over the documents corpus that
  extracts links and counts them, page-rank-like and CPU-bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from math import ceil
from typing import Dict, List, Optional, Tuple

from repro.api.context import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster.cluster import Cluster
from repro.config import GB, MB
from repro.datamodel.records import Partition
from repro.datamodel.serialization import COMPRESSED, DataFormat
from repro.engine.base import JobResult
from repro.errors import ConfigError

__all__ = ["BdbScale", "QUERIES", "generate_bdb_tables", "run_query",
           "query_names"]

#: All query variants, in the paper's Figure 5 order.
QUERIES = ("1a", "1b", "1c", "2a", "2b", "2c", "3a", "3b", "3c", "4")


@dataclass(frozen=True)
class BdbScale:
    """Dataset dimensions (published scale-5 sizes) and scaling."""

    rankings_rows: float = 90e6
    rankings_bytes: float = 6.4 * GB
    uservisits_rows: float = 775e6
    uservisits_bytes: float = 126.8 * GB
    documents_rows: float = 27e6
    documents_bytes: float = 136.9 * GB
    #: Proportional scale-down applied to every table (1.0 = scale 5).
    fraction: float = 1.0
    block_bytes: float = 128 * MB
    #: The small rankings table is stored in finer blocks so its scan
    #: has several task waves (like the benchmark's many input files).
    rankings_block_bytes: float = 32 * MB
    sample_records_per_block: int = 48
    reduce_tasks: int = 80
    fmt: DataFormat = COMPRESSED

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0, 1]: {self.fraction}")

    def scaled(self, fraction: float) -> "BdbScale":
        """A copy at a different data-volume fraction."""
        return replace(self, fraction=fraction)

    def blocks_for(self, total_bytes: float,
                   block_bytes: Optional[float] = None) -> int:
        """Block (= map task) count, independent of ``fraction``.

        Scaling down shrinks the blocks instead of dropping tasks, so the
        pipelining behaviour (waves of tasks, §5.3) matches full scale.
        """
        return max(1, ceil(total_bytes / (block_bytes or self.block_bytes)))


#: Query parameters: (selectivity / group ratio / etc.) chosen so result
#: sizes span the business-intelligence -> ETL spectrum, like the
#: benchmark's published cutoffs.
Q1_SELECTIVITY = {"1a": 0.0005, "1b": 0.02, "1c": 0.85}
Q2_PREFIX = {"2a": 8, "2b": 10, "2c": 12}
Q2_GROUP_RATIO = {"2a": 0.001, "2b": 0.005, "2c": 0.02}
Q3_DATE_SELECTIVITY = {"3a": 0.015, "3b": 0.12, "3c": 0.5}
#: Distinct source IPs as a fraction of joined rows (query 3 group-by).
Q3_IP_RATIO = 0.3
#: Links extracted per document and their size (query 4).
Q4_LINKS_PER_DOC = 15
Q4_LINK_BYTES = 48.0
Q4_DISTINCT_RATIO = 0.1

#: Per-record CPU of light SQL operators (predicates, projections) on
#: Spark 1.3's row-at-a-time interpreter.
SQL_OP_COST = OpCost(per_record_s=0.5e-6)
#: Scanning a wide uservisits row (9 fields, strings to parse) costs
#: far more per record than the 3-field rankings row.
UV_PARSE_COST = OpCost(per_record_s=2.5e-6)
RANKINGS_FILTER_COST = OpCost(per_record_s=0.3e-6)
#: The query-4 UDF pipes each ~5 KB document through a Python script
#: (parse HTML, extract links): heavily CPU-bound, as in Figure 14.
UDF_COST = OpCost(per_record_s=100.0e-6)
#: URL id space shared by rankings and uservisits *samples*, so sampled
#: joins actually match (modeled sizes carry the true cardinalities).
SAMPLE_URL_SPACE = 4096


def generate_bdb_tables(cluster: Cluster, scale: Optional[BdbScale] = None,
                        seed: int = 0) -> BdbScale:
    """Create rankings, uservisits, and documents in the cluster's DFS."""
    scale = scale or BdbScale()
    rng = random.Random(seed)
    _make_rankings(cluster, scale, rng)
    _make_uservisits(cluster, scale, rng)
    _make_documents(cluster, scale, rng)
    return scale


def _make_table(cluster: Cluster, name: str, scale: BdbScale,
                total_bytes: float, total_rows: float, make_record,
                block_bytes: Optional[float] = None) -> None:
    blocks = scale.blocks_for(total_bytes, block_bytes)
    rows = total_rows * scale.fraction
    logical_block_bytes = total_bytes * scale.fraction / blocks
    stored_block_bytes = scale.fmt.stored_bytes(logical_block_bytes)
    payloads: List[Partition] = []
    for index in range(blocks):
        records = [make_record(index, i)
                   for i in range(scale.sample_records_per_block)]
        payloads.append(Partition(records=records,
                                  record_count=rows / blocks,
                                  data_bytes=logical_block_bytes))
    cluster.dfs.create_file(name, payloads, [stored_block_bytes] * blocks)


def _make_rankings(cluster: Cluster, scale: BdbScale,
                   rng: random.Random) -> None:
    def record(block_index: int, i: int) -> Tuple[str, Tuple[int, int]]:
        url_id = rng.randrange(SAMPLE_URL_SPACE)
        page_rank = rng.randrange(10000)
        avg_duration = rng.randrange(100)
        return (f"url{url_id}", (page_rank, avg_duration))

    _make_table(cluster, "rankings", scale, scale.rankings_bytes,
                scale.rankings_rows, record,
                block_bytes=scale.rankings_block_bytes)


def _make_uservisits(cluster: Cluster, scale: BdbScale,
                     rng: random.Random) -> None:
    def record(block_index: int, i: int):
        ip = (f"{rng.randrange(256)}.{rng.randrange(256)}."
              f"{rng.randrange(256)}.{rng.randrange(256)}")
        dest = f"url{rng.randrange(SAMPLE_URL_SPACE)}"
        visit_date = rng.random()  # normalized [0, 1) date axis
        ad_revenue = rng.random()
        return (ip, (dest, visit_date, ad_revenue))

    _make_table(cluster, "uservisits", scale, scale.uservisits_bytes,
                scale.uservisits_rows, record)


def _make_documents(cluster: Cluster, scale: BdbScale,
                    rng: random.Random) -> None:
    def record(block_index: int, i: int):
        links = [f"url{rng.randrange(SAMPLE_URL_SPACE)}"
                 for _ in range(Q4_LINKS_PER_DOC)]
        return ("doc", links)

    _make_table(cluster, "documents", scale, scale.documents_bytes,
                scale.documents_rows, record)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def run_query(ctx: AnalyticsContext, query: str,
              scale: Optional[BdbScale] = None,
              output_suffix: str = "") -> JobResult:
    """Run one Big Data Benchmark query; results are saved to the DFS."""
    scale = scale or BdbScale()
    output = f"bdb-out-{query}{output_suffix}"
    if query in Q1_SELECTIVITY:
        return _query1(ctx, query, scale, output)
    if query in Q2_PREFIX:
        return _query2(ctx, query, scale, output)
    if query in Q3_DATE_SELECTIVITY:
        return _query3(ctx, query, scale, output)
    if query == "4":
        return _query4(ctx, scale, output)
    raise ConfigError(f"unknown query {query!r}; choose from {QUERIES}")


def query_names() -> List[str]:
    """All query variants, in Figure 5 order."""
    return list(QUERIES)


def _query1(ctx: AnalyticsContext, query: str, scale: BdbScale,
            output: str) -> JobResult:
    """SELECT pageURL, pageRank FROM rankings WHERE pageRank > X."""
    selectivity = Q1_SELECTIVITY[query]
    cutoff = int(10000 * (1 - selectivity))
    (ctx.text_file("rankings", fmt=scale.fmt)
        .filter(lambda row: row[1][0] > cutoff, cost=RANKINGS_FILTER_COST,
                count_ratio=selectivity)
        .save_as_text_file(output))
    return ctx.last_result


def _query2(ctx: AnalyticsContext, query: str, scale: BdbScale,
            output: str) -> JobResult:
    """SELECT SUBSTR(sourceIP, 1, X), SUM(adRevenue) GROUP BY 1."""
    prefix = Q2_PREFIX[query]
    group_ratio = Q2_GROUP_RATIO[query]
    group_row_bytes = prefix + 16.0
    (ctx.text_file("uservisits", fmt=scale.fmt)
        .map(lambda row: (row[0][:prefix], row[1][2]), cost=UV_PARSE_COST,
             output_row_bytes=lambda r: group_row_bytes)
        .reduce_by_key(lambda a, b: a + b,
                       num_partitions=scale.reduce_tasks,
                       combine_cost=OpCost(per_record_s=0.5e-6))
        ._override_combine_ratio(group_ratio)
        .save_as_text_file(output))
    return ctx.last_result


def _query3(ctx: AnalyticsContext, query: str, scale: BdbScale,
            output: str) -> JobResult:
    """Date-filtered join of uservisits and rankings, grouped by IP."""
    selectivity = Q3_DATE_SELECTIVITY[query]
    visits = (ctx.text_file("uservisits", fmt=scale.fmt)
              .filter(lambda row: row[1][1] < selectivity,
                      cost=UV_PARSE_COST, count_ratio=selectivity)
              .map(lambda row: (row[1][0], (row[0], row[1][2])),
                   cost=SQL_OP_COST, size_ratio=0.6))
    ranks = (ctx.text_file("rankings", fmt=scale.fmt)
             .map(lambda row: (row[0], row[1][0]), cost=SQL_OP_COST,
                  size_ratio=0.8))
    joined = visits.join(ranks, num_partitions=scale.reduce_tasks,
                         cost=OpCost(per_record_s=1.0e-6))
    (joined
        .map(lambda kv: (kv[1][0][0], (kv[1][0][1], kv[1][1], 1)),
             cost=SQL_OP_COST, size_ratio=0.8)
        .reduce_by_key(lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
                       num_partitions=scale.reduce_tasks,
                       combine_cost=OpCost(per_record_s=0.5e-6))
        ._override_combine_ratio(Q3_IP_RATIO)
        .save_as_text_file(output))
    return ctx.last_result


def _query4(ctx: AnalyticsContext, scale: BdbScale,
            output: str) -> JobResult:
    """UDF pass over the crawl: extract links, count per target URL."""
    link_count_ratio = Q4_LINKS_PER_DOC
    (ctx.text_file("documents", fmt=scale.fmt)
        .flat_map(lambda doc: doc[1], cost=UDF_COST,
                  count_ratio=link_count_ratio,
                  output_row_bytes=lambda link: Q4_LINK_BYTES)
        .map(lambda link: (link, 1), cost=OpCost(per_record_s=0.3e-6),
             size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b,
                       num_partitions=scale.reduce_tasks,
                       combine_cost=OpCost(per_record_s=0.5e-6))
        ._override_combine_ratio(Q4_DISTINCT_RATIO)
        .save_as_text_file(output))
    return ctx.last_result
