"""Scaling helpers for scaled-down experiments.

When an experiment shrinks the paper's data volume by a fraction, every
*capacity* that interacts with data volume must shrink by the same
fraction -- otherwise artifacts appear (e.g. a 600 GB shuffle does not
fit in the cluster's buffer caches, but a 60 GB scaled copy would, which
would hand the Spark baseline an unrealistic free ride on shuffle
reads).  Rates (disk/network throughput, CPU speed) stay unscaled, so
per-stage *times* scale linearly with the fraction while bottleneck
structure is preserved.
"""

from __future__ import annotations

from repro.config import GB, MachineSpec
from repro.errors import ConfigError

__all__ = ["scaled_memory_overrides"]


def scaled_memory_overrides(fraction: float,
                            memory_bytes: float = 60 * GB,
                            buffer_cache_bytes: float = 30 * GB,
                            dirty_background_bytes: float = 2 * GB) -> dict:
    """MachineSpec overrides for a ``fraction``-scaled experiment.

    Pass the result to :func:`repro.cluster.hdd_cluster` /
    :func:`~repro.cluster.ssd_cluster` as keyword overrides.
    """
    if not 0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1]: {fraction}")
    return {
        "memory_bytes": memory_bytes * fraction,
        "buffer_cache_bytes": buffer_cache_bytes * fraction,
        "dirty_background_bytes": dirty_background_bytes * fraction,
    }
