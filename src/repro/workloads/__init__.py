"""The paper's workloads: sort, word count, Big Data Benchmark, ML."""

from repro.workloads.bigdata import (BdbScale, QUERIES, generate_bdb_tables,
                                     run_query)
from repro.workloads.ml import (MlWorkload, make_ml_context,
                                run_ml_iteration, run_ml_workload)
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort, sort_boundaries)
from repro.workloads.wordcount import generate_text_input, word_count

__all__ = [
    "BdbScale",
    "QUERIES",
    "generate_bdb_tables",
    "run_query",
    "MlWorkload",
    "make_ml_context",
    "run_ml_iteration",
    "run_ml_workload",
    "SortWorkload",
    "generate_sort_input",
    "run_sort",
    "sort_boundaries",
    "generate_text_input",
    "word_count",
]
