"""Word count: the paper's running example (Figures 1 and 4)."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.api.context import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster.cluster import Cluster
from repro.config import MB
from repro.datamodel.records import Partition
from repro.engine.base import JobResult

__all__ = ["generate_text_input", "word_count", "VOCABULARY"]

VOCABULARY = (
    "the quick brown fox jumps over lazy dog monotask spark cluster "
    "disk network cpu scheduler stage shuffle performance clarity").split()


def generate_text_input(cluster: Cluster, num_blocks: int,
                        block_bytes: float = 128 * MB,
                        lines_per_block: int = 40,
                        words_per_line: int = 8,
                        name: str = "text-input", seed: int = 0) -> None:
    """Pre-load the DFS with synthetic text."""
    rng = random.Random(seed)
    mean_line_bytes = words_per_line * 6.0
    lines_modeled = block_bytes / mean_line_bytes
    payloads: List[Partition] = []
    for _ in range(num_blocks):
        lines = [" ".join(rng.choice(VOCABULARY)
                          for _ in range(words_per_line))
                 for _ in range(lines_per_block)]
        payloads.append(Partition(records=lines,
                                  record_count=lines_modeled,
                                  data_bytes=block_bytes))
    cluster.dfs.create_file(name, payloads, [block_bytes] * num_blocks)


def word_count(ctx: AnalyticsContext, input_name: str = "text-input",
               output_name: Optional[str] = "wordcount-output",
               num_reduce_tasks: Optional[int] = None) -> JobResult:
    """Figure 1's job: split, count, aggregate, save."""
    counts = (ctx.text_file(input_name)
              .flat_map(lambda line: line.split(" "),
                        cost=OpCost(per_record_s=0.5e-6))
              .map(lambda word: (word, 1),
                   cost=OpCost(per_record_s=0.2e-6), size_ratio=1.0)
              .reduce_by_key(lambda a, b: a + b,
                             num_partitions=num_reduce_tasks,
                             combine_cost=OpCost(per_record_s=0.3e-6)))
    if output_name is None:
        counts.collect()
    else:
        counts.save_as_text_file(output_name)
    return ctx.last_result
