"""The sort workloads (§5.2, §6.2-§6.4, §7).

The paper's recurring microbenchmark sorts random key-value pairs where
each value is an array of ``values_per_key`` longs.  Fixing the total
data size while varying the array length changes the CPU:I/O ratio:
"smaller values result in more CPU time ... because fewer keys need to
be sorted" -- per-byte I/O stays constant while per-record CPU (row
overheads, (de)serialization per record, sort comparisons) scales with
the number of records per byte.

Scaled-down representation: each block carries a small sample of real
``(key, values)`` records, while ``record_count`` / ``data_bytes`` model
the true cardinality and volume, so CPU and I/O times reflect the full
data size and the sort's correctness remains testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.context import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster.cluster import Cluster
from repro.datamodel.records import Partition
from repro.engine.base import JobResult
from repro.errors import ConfigError

__all__ = ["SortWorkload", "generate_sort_input", "run_sort",
           "sort_boundaries"]

#: Key space for generated sort keys.
KEY_SPACE = 1 << 30

#: Per-record CPU cost of the sort itself (comparisons, moves) --
#: calibrated to a JVM sort of boxed records, as in Spark 1.3.
SORT_S_PER_RECORD = 3.0e-6
#: Map-side per-record cost: range-partitioner lookup and record copy.
PARTITION_S_PER_RECORD = 1.5e-6


@dataclass(frozen=True)
class SortWorkload:
    """Parameters of one sort experiment."""

    total_bytes: float
    values_per_key: int
    num_map_tasks: int
    num_reduce_tasks: Optional[int] = None
    sample_records_per_block: int = 64

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.num_map_tasks < 1:
            raise ConfigError(f"invalid sort workload: {self}")
        if self.values_per_key < 1:
            raise ConfigError("values_per_key must be >= 1")

    @property
    def record_bytes(self) -> float:
        """Modeled serialized record size: key + longs + row overhead."""
        return 8.0 + 8.0 * self.values_per_key + 16.0

    @property
    def total_records(self) -> float:
        """Modeled record count of the whole dataset."""
        return self.total_bytes / self.record_bytes

    @property
    def reduce_tasks(self) -> int:
        """Reduce-side task count (defaults to the map count)."""
        return self.num_reduce_tasks or self.num_map_tasks

    @property
    def block_bytes(self) -> float:
        """Bytes per input block (= per map task)."""
        return self.total_bytes / self.num_map_tasks

    @property
    def records_per_block(self) -> float:
        """Modeled records per input block."""
        return self.total_records / self.num_map_tasks


def generate_sort_input(cluster: Cluster, workload: SortWorkload,
                        name: str = "sort-input", seed: int = 0) -> None:
    """Pre-load the DFS with the sort input, as the paper's setup does."""
    rng = random.Random(seed)
    sample_value = tuple(range(min(workload.values_per_key, 4)))
    payloads: List[Partition] = []
    for _ in range(workload.num_map_tasks):
        records = [(rng.randrange(KEY_SPACE), sample_value)
                   for _ in range(workload.sample_records_per_block)]
        payloads.append(Partition(
            records=records,
            record_count=workload.records_per_block,
            data_bytes=workload.block_bytes))
    cluster.dfs.create_file(
        name, payloads, [workload.block_bytes] * workload.num_map_tasks)


def sort_boundaries(workload: SortWorkload) -> List[int]:
    """Balanced range boundaries over the uniform key space."""
    n = workload.reduce_tasks
    return [KEY_SPACE * i // n for i in range(1, n)]


def run_sort(ctx: AnalyticsContext, workload: SortWorkload,
             input_name: str = "sort-input",
             output_name: str = "sort-output",
             input_rdd=None) -> JobResult:
    """Read, sort by key, and write back -- the paper's sort job."""
    source = input_rdd if input_rdd is not None else ctx.text_file(input_name)
    partitioned = source.map(
        lambda record: record,
        cost=OpCost(per_record_s=PARTITION_S_PER_RECORD), size_ratio=1.0,
        name="partition")
    sorted_rdd = partitioned.sort_by_key(
        num_partitions=workload.reduce_tasks,
        boundaries=sort_boundaries(workload),
        cost=OpCost(per_record_s=SORT_S_PER_RECORD))
    sorted_rdd.save_as_text_file(output_name)
    return ctx.last_result
