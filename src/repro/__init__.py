"""Reproduction of "Monotasks: Architecting for Performance Clarity in
Data Analytics Frameworks" (Ousterhout et al., SOSP 2017).

Quick start::

    from repro import AnalyticsContext, hdd_cluster

    cluster = hdd_cluster(num_machines=5)
    ctx = AnalyticsContext(cluster, engine="monospark")
    words = ctx.parallelize(["a b", "b c"], num_partitions=2)
    counts = (words.flat_map(lambda line: line.split())
                   .map(lambda word: (word, 1))
                   .reduce_by_key(lambda a, b: a + b)
                   .collect())

See :mod:`repro.model` for the §6 performance model (what-if prediction
and bottleneck analysis) and :mod:`repro.workloads` for the paper's
benchmark workloads.
"""

from repro.api.context import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster.cluster import Cluster, hdd_cluster, ssd_cluster
from repro.config import (GB, HDD, KB, MB, SSD, CostModel, DiskSpec,
                          MachineSpec)
from repro.monospark.engine import MonoSparkEngine
from repro.spark.engine import SparkEngine

__version__ = "1.0.0"

__all__ = [
    "AnalyticsContext",
    "Cluster",
    "hdd_cluster",
    "ssd_cluster",
    "MonoSparkEngine",
    "SparkEngine",
    "CostModel",
    "DiskSpec",
    "MachineSpec",
    "OpCost",
    "HDD",
    "SSD",
    "KB",
    "MB",
    "GB",
    "__version__",
]
