"""The alert engine: rule evaluation, lifecycle, dedup, exemplars.

Each evaluation tick walks the rules in name order and, per rule, every
matching labeled series in sorted label order -- the alert timeline is
a deterministic function of (rules, sampled telemetry), so same-seed
runs replay it byte-identically.

An alert is keyed by ``(rule name, series labels)``; one key holds one
live alert whatever its age (label-keyed dedup).  Lifecycle::

    inactive --condition true--> pending --held for_s--> firing
    pending  --condition false--> inactive   (dropped silently)
    firing   --condition false--> resolved --> inactive

``pending``/``firing``/``resolved`` transitions are recorded as
:class:`~repro.metrics.events.AlertEventRecord` into the metrics
collector (feeding the journal and the Chrome-trace instant events);
``firing`` records carry the exemplar of the worst recent contributor
when the exemplar store has one for the rule's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ObsError
from repro.metrics.events import AlertEventRecord
from repro.obs.rules import (OPS, AbsenceRule, BurnRateRule, ThresholdRule,
                             exemplar_metric_of, validate_rule)

__all__ = ["Alert", "AlertEngine", "format_labels"]

#: Sorted (key, value) pairs, as the telemetry store keys series.
Labels = Tuple[Tuple[str, str], ...]


def format_labels(labels: Labels) -> str:
    """Canonical one-line rendering (``machine=1,resource=network``)."""
    return ",".join(f"{k}={v}" for k, v in labels)


@dataclass
class Alert:
    """One live (or resolved) alert instance for a (rule, labels) key."""

    rule: str
    labels: Labels
    severity: str
    state: str = "pending"  # pending | firing | resolved
    #: When the condition first held (pending start).
    since: float = 0.0
    fired_at: Optional[float] = None
    resolved_at: Optional[float] = None
    #: Last evaluated value (burn rate, aggregate, or staleness age).
    value: float = float("nan")
    detail: str = ""
    #: Exemplar ids stamped at firing time (-1 / "" = none).
    trace_id: str = ""
    span_id: int = -1

    @property
    def key(self) -> Tuple[str, Labels]:
        """The dedup key."""
        return (self.rule, self.labels)


@dataclass
class _Verdict:
    """One series' evaluation under one rule at one instant."""

    labels: Labels
    active: bool
    value: float = float("nan")
    detail: str = ""


class AlertEngine:
    """Evaluates declarative rules over a sampled telemetry registry.

    ``registry`` is a :class:`~repro.trace.TelemetryRegistry` whose
    ring-buffered store the windowed conditions read.  ``metrics`` (a
    :class:`~repro.metrics.collector.MetricsCollector`) receives the
    transition records; ``exemplars`` (an
    :class:`~repro.obs.exemplars.ExemplarStore`) resolves firing
    alerts to offending spans.  All three are optional for unit use.
    """

    def __init__(self, registry, metrics=None, exemplars=None) -> None:
        self.registry = registry
        self.metrics = metrics
        self.exemplars = exemplars
        self._rules: Dict[str, object] = {}
        #: (rule, labels) -> live Alert (pending or firing).
        self._active: Dict[Tuple[str, Labels], Alert] = {}
        #: Every transition, in record order (the alert timeline).
        self.transitions: List[AlertEventRecord] = []
        #: Resolved alerts, oldest first (bounded by _history_cap).
        self.history: List[Alert] = []
        self._history_cap = 512
        self.evaluations = 0

    # -- configuration -------------------------------------------------------------

    def add_rule(self, rule) -> None:
        """Register one rule; duplicate names are an error."""
        validate_rule(rule)
        if rule.name in self._rules:
            raise ObsError(f"alert rule {rule.name!r} is already "
                           f"registered")
        self._rules[rule.name] = rule

    def rule_names(self) -> List[str]:
        """Registered rule names, sorted (the evaluation order)."""
        return sorted(self._rules)

    # -- queries -------------------------------------------------------------------

    def firing(self) -> List[Alert]:
        """Currently firing alerts, sorted by (rule, labels)."""
        return sorted((a for a in self._active.values()
                       if a.state == "firing"),
                      key=lambda a: (a.rule, a.labels))

    def pending(self) -> List[Alert]:
        """Alerts holding out their ``for_s``, sorted by (rule, labels)."""
        return sorted((a for a in self._active.values()
                       if a.state == "pending"),
                      key=lambda a: (a.rule, a.labels))

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, now: float) -> List[AlertEventRecord]:
        """Run every rule once; returns this tick's transitions."""
        self.evaluations += 1
        emitted: List[AlertEventRecord] = []
        for name in sorted(self._rules):
            rule = self._rules[name]
            verdicts = self._evaluate_rule(rule, now)
            seen: set = set()
            for verdict in verdicts:
                seen.add((name, verdict.labels))
                emitted.extend(self._advance(rule, verdict, now))
            # Series that vanished from the registry resolve/drop too.
            for key in [k for k in self._active
                        if k[0] == name and k not in seen]:
                emitted.extend(self._advance(
                    rule, _Verdict(labels=key[1], active=False), now))
        return emitted

    def _advance(self, rule, verdict: _Verdict,
                 now: float) -> List[AlertEventRecord]:
        """Drive one (rule, labels) alert state machine one step."""
        key = (rule.name, verdict.labels)
        alert = self._active.get(key)
        out: List[AlertEventRecord] = []
        if verdict.active:
            if alert is None:
                alert = Alert(rule=rule.name, labels=verdict.labels,
                              severity=rule.severity, since=now,
                              value=verdict.value, detail=verdict.detail)
                self._active[key] = alert
                if rule.for_s > 0:
                    out.append(self._record("pending", alert, now))
            alert.value = verdict.value
            if verdict.detail:
                alert.detail = verdict.detail
            if alert.state == "pending" and now - alert.since >= rule.for_s:
                alert.state = "firing"
                alert.fired_at = now
                self._stamp_exemplar(rule, alert, now)
                out.append(self._record("firing", alert, now))
        elif alert is not None:
            if alert.state == "firing":
                alert.state = "resolved"
                alert.resolved_at = now
                out.append(self._record("resolved", alert, now))
                self.history.append(alert)
                del self.history[:-self._history_cap]
            # Pending alerts that recover are dropped silently, like
            # Prometheus: the condition never held for ``for_s``.
            del self._active[key]
        return out

    def _stamp_exemplar(self, rule, alert: Alert, now: float) -> None:
        if self.exemplars is None:
            return
        metric = exemplar_metric_of(rule)
        if metric is None:
            return
        exemplar = self.exemplars.lookup(metric, alert.labels, now=now)
        if exemplar is not None:
            alert.trace_id = exemplar.trace_id
            alert.span_id = exemplar.span_id
            if exemplar.detail:
                alert.detail = (f"{alert.detail}; worst contributor: "
                                f"{exemplar.detail}"
                                if alert.detail else
                                f"worst contributor: {exemplar.detail}")

    def _record(self, kind: str, alert: Alert,
                now: float) -> AlertEventRecord:
        record = AlertEventRecord(
            kind=kind, rule=alert.rule, at=now,
            severity=alert.severity if kind == "firing" else "info",
            labels=format_labels(alert.labels), value=alert.value,
            trace_id=alert.trace_id, span_id=alert.span_id,
            detail=alert.detail)
        self.transitions.append(record)
        if self.metrics is not None:
            self.metrics.record_alert(record)
        return record

    # -- per-family condition evaluation -------------------------------------------

    def _evaluate_rule(self, rule, now: float) -> List[_Verdict]:
        if isinstance(rule, ThresholdRule):
            return self._eval_threshold(rule, now)
        if isinstance(rule, AbsenceRule):
            return self._eval_absence(rule, now)
        if isinstance(rule, BurnRateRule):
            return self._eval_burn(rule, now)
        raise ObsError(f"unknown rule type {type(rule).__name__}")

    def _series_of(self, metric: str) -> List[Labels]:
        return [labels for name, labels in self.registry.store.series()
                if name == metric]

    def _eval_threshold(self, rule: ThresholdRule,
                        now: float) -> List[_Verdict]:
        out: List[_Verdict] = []
        compare = OPS[rule.op]
        for labels in self._series_of(rule.metric):
            value = self.registry.store.aggregate(
                rule.metric, rule.agg, window_s=rule.window_s, now=now,
                labels=labels)
            if value is None:
                continue  # no samples in window: no verdict either way
            active = compare(value, rule.threshold)
            detail = (rule.summary or
                      f"{rule.agg}({rule.metric}[{rule.window_s:g}s]) "
                      f"{rule.op} {rule.threshold:g}")
            out.append(_Verdict(labels=labels, active=active, value=value,
                                detail=detail if active else ""))
        return out

    def _eval_absence(self, rule: AbsenceRule, now: float) -> List[_Verdict]:
        series = self._series_of(rule.metric)
        if not series:
            # The metric never produced a series at all -- the watchdog
            # case.  Keyed by the metric name so it dedups as one alert.
            age = now
            active = age > rule.stale_after_s
            return [_Verdict(
                labels=(("metric", rule.metric),), active=active,
                value=age,
                detail=(rule.summary or f"{rule.metric} has no series "
                                        f"after {age:g}s")
                if active else "")]
        out: List[_Verdict] = []
        for labels in series:
            newest = self.registry.store.latest(rule.metric, labels=labels)
            age = now - newest[0] if newest is not None else now
            active = age > rule.stale_after_s
            out.append(_Verdict(
                labels=labels, active=active, value=age,
                detail=(rule.summary or
                        f"{rule.metric} stale for {age:g}s")
                if active else ""))
        return out

    def _increase(self, metric: str, labels: Labels, window_s: float,
                  now: float) -> Optional[float]:
        """Counter increase over the window (first-to-last sample)."""
        points = self.registry.store.window(
            metric, now - window_s, now, labels=labels)
        if len(points) < 2:
            return None
        return points[-1][1] - points[0][1]

    def _eval_burn(self, rule: BurnRateRule, now: float) -> List[_Verdict]:
        out: List[_Verdict] = []
        for labels in self._series_of(rule.total_metric):
            worst_burn = 0.0
            hit: Optional[Tuple[int, float]] = None
            for index, (short_s, long_s) in enumerate(rule.windows):
                burns = []
                for window_s in (short_s, long_s):
                    total = self._increase(rule.total_metric, labels,
                                           window_s, now)
                    good = self._increase(rule.good_metric, labels,
                                          window_s, now) or 0.0
                    if total is None or total <= 0:
                        burns.append(0.0)
                        continue
                    error_rate = min(1.0, max(0.0, (total - good) / total))
                    burns.append(error_rate / rule.budget)
                worst_burn = max(worst_burn, min(burns))
                threshold = rule.burn_thresholds[index]
                if min(burns) >= threshold and hit is None:
                    hit = (index, min(burns))
            active = hit is not None
            detail = ""
            if active:
                index, burn = hit
                short_s, long_s = rule.windows[index]
                detail = (rule.summary or
                          f"burning {burn:.1f}x the error budget over "
                          f"both {short_s:g}s and {long_s:g}s windows "
                          f"(objective {rule.objective:g})")
            out.append(_Verdict(labels=labels, active=active,
                                value=worst_burn, detail=detail))
        return out
