"""repro.obs: the streaming observability plane.

Layered on the sampled telemetry the trace/clarity layers already
produce, this package adds the *online* half of performance clarity:

* declarative alert rules (:mod:`repro.obs.rules`) evaluated each
  simulated second by an :class:`~repro.obs.alerts.AlertEngine` --
  thresholds, staleness watchdogs, and SRE-style multi-window
  burn-rate alerts on per-tenant SLO attainment;
* online model-drift detection
  (:class:`~repro.obs.drift.ModelDriftDetector`): the paper's §6
  modeled-vs-measured validation run continuously, so the ideal model
  itself becomes an anomaly detector (and is honestly NOT ATTRIBUTABLE
  on the Spark-style engine, §6.6);
* exemplar-linked metrics (:mod:`repro.obs.exemplars`): firing alerts
  carry the critical-path span of the worst recent contributor;
* a unified bounded event journal (:mod:`repro.obs.journal`) folding
  fault, health, driver, and alert streams into one severity-leveled,
  JSONL-sinkable timeline;
* self-overhead accounting: the plane measures its own wall-clock cost
  per simulated second, and the benchmark budget-gates it.

:class:`~repro.obs.plane.ObservabilityPlane` is the facade the serving
and control-plane layers take via their ``obs=`` parameter.
"""

from repro.obs.alerts import Alert, AlertEngine, format_labels
from repro.obs.drift import DriftVerdict, ModelDriftDetector
from repro.obs.exemplars import WORST_JOB_METRIC, Exemplar, ExemplarStore
from repro.obs.journal import (EventJournal, JournalEvent,
                               JsonlJournalSink, severity_of)
from repro.obs.plane import ObservabilityPlane
from repro.obs.rules import (OPS, SEVERITIES, AbsenceRule, BurnRateRule,
                             ThresholdRule, exemplar_metric_of,
                             rule_kind, validate_rule)

__all__ = [
    "Alert",
    "AlertEngine",
    "format_labels",
    "DriftVerdict",
    "ModelDriftDetector",
    "Exemplar",
    "ExemplarStore",
    "WORST_JOB_METRIC",
    "EventJournal",
    "JournalEvent",
    "JsonlJournalSink",
    "severity_of",
    "ObservabilityPlane",
    "ThresholdRule",
    "AbsenceRule",
    "BurnRateRule",
    "OPS",
    "SEVERITIES",
    "rule_kind",
    "validate_rule",
    "exemplar_metric_of",
]
