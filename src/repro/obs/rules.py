"""Declarative alert rules evaluated over telemetry windows.

Three rule families, mirroring what production monitoring stacks
express as recording + alerting rules:

* :class:`ThresholdRule` -- a windowed aggregate of one metric crosses
  a bound (``mean(repro_resource_queue_depth[15s]) >= 12``).  The rule
  is evaluated once per labeled series of its metric, so one rule over
  ``repro_obs_source_network_relrate`` yields per-machine alerts that
  *name the machine* in their label key.
* :class:`AbsenceRule` -- staleness: a series stopped being sampled (or
  never appeared).  The watchdog for the telemetry pipeline itself.
* :class:`BurnRateRule` -- SRE-style multi-window error-budget burn on
  per-tenant SLO attainment.  Burn rate is ``error_rate / budget``
  where ``budget = 1 - objective``; a window *pair* (short, long) fires
  only when **both** windows burn past the pair's threshold -- the
  short window gives fast detection and fast resolution, the long one
  filters blips.  Defaults follow the SRE workbook's page thresholds
  (14.4x over the fast pair, 6x over the slow pair), scaled to
  simulated seconds: fast 5s/1m, slow 30s/6m.

Every rule carries ``for_s`` (a pending hold before firing, like
Prometheus ``for:``) and a severity.  Rules are frozen dataclasses:
an alert timeline is a deterministic function of (rules, telemetry),
never of evaluation-order accidents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ObsError

__all__ = ["ThresholdRule", "AbsenceRule", "BurnRateRule", "OPS",
           "SEVERITIES", "rule_kind", "validate_rule",
           "exemplar_metric_of"]

#: Comparison operators a threshold rule may use.
OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
}

#: Recognized severities, least to most urgent.
SEVERITIES = ("info", "warning", "critical")


def _check_common(name: str, severity: str, for_s: float) -> None:
    if not name:
        raise ObsError("alert rule needs a non-empty name")
    if severity not in SEVERITIES:
        raise ObsError(f"rule {name!r}: unknown severity {severity!r}; "
                       f"use one of {SEVERITIES}")
    if for_s < 0:
        raise ObsError(f"rule {name!r}: for_s must be >= 0: {for_s!r}")


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when ``agg(metric[window_s]) op threshold`` holds.

    ``agg`` is any :data:`repro.clarity.tsdb.AGGREGATIONS` name or a
    ``pNN`` percentile.  ``exemplar_metric`` names the series whose
    recorded exemplar a firing alert links to (defaults to the rule's
    own metric; the observability plane falls back to its global
    worst-job exemplar when no per-series exemplar exists).
    """

    name: str
    metric: str
    op: str
    threshold: float
    window_s: float = 15.0
    agg: str = "last"
    for_s: float = 0.0
    severity: str = "warning"
    #: Human statement of what firing means; ``detail`` on transitions.
    summary: str = ""
    exemplar_metric: str = ""

    def __post_init__(self) -> None:
        _check_common(self.name, self.severity, self.for_s)
        if self.op not in OPS:
            raise ObsError(f"rule {self.name!r}: unknown operator "
                           f"{self.op!r}; use one of {sorted(OPS)}")
        if not self.window_s > 0:
            raise ObsError(f"rule {self.name!r}: window_s must be "
                           f"positive: {self.window_s!r}")


@dataclass(frozen=True)
class AbsenceRule:
    """Fire when a metric has no sample newer than ``stale_after_s``.

    A metric with *no series at all* counts as absent -- that is the
    interesting failure (a component that was supposed to register its
    telemetry never did, or the pipeline feeding it died).
    """

    name: str
    metric: str
    stale_after_s: float = 10.0
    for_s: float = 0.0
    severity: str = "warning"
    summary: str = ""

    def __post_init__(self) -> None:
        _check_common(self.name, self.severity, self.for_s)
        if not self.stale_after_s > 0:
            raise ObsError(f"rule {self.name!r}: stale_after_s must be "
                           f"positive: {self.stale_after_s!r}")


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window error-budget burn on an SLO good/total counter pair.

    ``good_metric`` and ``total_metric`` are counters sharing label
    sets (one series per tenant); over a window,
    ``error_rate = 1 - increase(good) / increase(total)`` and
    ``burn = error_rate / (1 - objective)``.  The rule fires for a
    series when any ``(short, long)`` window pair burns past its
    threshold in *both* windows.
    """

    name: str
    good_metric: str
    total_metric: str
    objective: float = 0.99
    #: (short_window_s, long_window_s) pairs, fastest first.
    windows: Tuple[Tuple[float, float], ...] = ((5.0, 60.0), (30.0, 360.0))
    #: Burn-rate threshold per window pair.
    burn_thresholds: Tuple[float, ...] = (14.4, 6.0)
    for_s: float = 0.0
    severity: str = "critical"
    summary: str = ""
    exemplar_metric: str = ""

    def __post_init__(self) -> None:
        _check_common(self.name, self.severity, self.for_s)
        if not 0.0 < self.objective < 1.0:
            raise ObsError(f"rule {self.name!r}: objective must be in "
                           f"(0, 1): {self.objective!r}")
        if len(self.windows) != len(self.burn_thresholds):
            raise ObsError(
                f"rule {self.name!r}: {len(self.windows)} window pairs "
                f"but {len(self.burn_thresholds)} burn thresholds")
        if not self.windows:
            raise ObsError(f"rule {self.name!r}: needs at least one "
                           f"window pair")
        for short_s, long_s in self.windows:
            if not 0 < short_s < long_s:
                raise ObsError(
                    f"rule {self.name!r}: window pair ({short_s!r}, "
                    f"{long_s!r}) must satisfy 0 < short < long")
        for burn in self.burn_thresholds:
            if not burn > 0:
                raise ObsError(f"rule {self.name!r}: burn threshold "
                               f"must be positive: {burn!r}")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated miss fraction."""
        return 1.0 - self.objective


def rule_kind(rule) -> str:
    """The family name of a rule instance (for journal details)."""
    if isinstance(rule, ThresholdRule):
        return "threshold"
    if isinstance(rule, AbsenceRule):
        return "absence"
    if isinstance(rule, BurnRateRule):
        return "burn-rate"
    raise ObsError(f"unknown rule type {type(rule).__name__}")


def validate_rule(rule) -> None:
    """Type-check one rule object (dataclass validation runs in
    ``__post_init__``; this guards against foreign objects)."""
    rule_kind(rule)


#: Optional attr present on threshold/burn rules; absence rules have no
#: exemplar (there is no offending job behind missing telemetry).
def exemplar_metric_of(rule) -> Optional[str]:
    """The metric whose exemplar a firing alert should link, if any."""
    metric = getattr(rule, "exemplar_metric", "")
    if metric:
        return metric
    if isinstance(rule, ThresholdRule):
        return rule.metric
    if isinstance(rule, BurnRateRule):
        return rule.total_metric
    return None
