"""Exemplar-linked metrics: from a number to the job behind it.

An aggregate alone ("p99 latency is 3.1s") tells you *that* something
is slow, never *which request* to go look at.  Production metric
systems attach *exemplars* to hot series -- the trace/span id of a
recent, representative (usually worst) contributor.  The observability
plane does the same: whenever a served job completes, the worst recent
contributor per series key is remembered here, and a firing alert is
stamped with that exemplar, so ``repro obs alerts`` links straight to
the offending job's dominant critical-path span.

Everything is keyed the way the telemetry store keys series --
``(metric name, sorted label pairs)`` -- plus one reserved global key,
:data:`WORST_JOB_METRIC`, holding the worst job seen recently across
all tenants (the fallback when a rule's metric has no per-series
exemplar, e.g. an alert on a derived gauge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ObsError

__all__ = ["Exemplar", "ExemplarStore", "WORST_JOB_METRIC"]

Labels = Tuple[Tuple[str, str], ...]

#: Reserved series key for the globally worst recent job.
WORST_JOB_METRIC = "repro_obs_worst_job"


@dataclass(frozen=True)
class Exemplar:
    """One representative contributor behind a metric value.

    ``value`` is whatever makes it "worst" for its series (latency
    seconds for SLO series, dominant-segment seconds for the global
    key); ``trace_id``/``span_id`` point into the span collector;
    ``detail`` is a one-phrase human label ("job 7 network on machine
    1, 2.4s of critical path").
    """

    t: float
    value: float
    trace_id: str
    span_id: int
    detail: str = ""


class ExemplarStore:
    """Bounded per-series lists of recent exemplars.

    ``keep_per_series`` recent exemplars are retained per key (newest
    last); :meth:`lookup` returns the *worst* (highest value) exemplar
    within ``window_s`` of now, so a firing alert links to the most
    representative recent offender, not merely the latest one.
    """

    def __init__(self, keep_per_series: int = 16,
                 window_s: float = 120.0) -> None:
        if keep_per_series < 1:
            raise ObsError(
                f"keep_per_series must be >= 1: {keep_per_series}")
        if not window_s > 0:
            raise ObsError(f"window_s must be positive: {window_s!r}")
        self.keep_per_series = keep_per_series
        self.window_s = window_s
        self._series: Dict[Tuple[str, Labels], List[Exemplar]] = {}

    def record(self, metric: str, labels: Labels,
               exemplar: Exemplar) -> None:
        """Remember one contributor for ``(metric, labels)``."""
        key = (metric, labels)
        bucket = self._series.setdefault(key, [])
        bucket.append(exemplar)
        del bucket[:-self.keep_per_series]

    def lookup(self, metric: str, labels: Labels,
               now: float) -> Optional[Exemplar]:
        """The worst recent exemplar for a series, with fallbacks.

        Tries the exact ``(metric, labels)`` key, then the metric with
        no labels, then the global :data:`WORST_JOB_METRIC` key; only
        exemplars within ``window_s`` of ``now`` qualify.  Ties on
        value break toward the newer exemplar.
        """
        for key in ((metric, labels), (metric, ()),
                    (WORST_JOB_METRIC, ())):
            bucket = self._series.get(key)
            if not bucket:
                continue
            recent = [e for e in bucket if now - e.t <= self.window_s]
            if not recent:
                continue
            return max(recent, key=lambda e: (e.value, e.t))
        return None

    def series(self) -> List[Tuple[str, Labels]]:
        """Every key holding at least one exemplar, sorted."""
        return sorted(self._series)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._series.values())
