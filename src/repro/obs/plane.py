"""The observability plane: one facade over alerts, drift, exemplars,
and the event journal.

An :class:`ObservabilityPlane` owns its *own*
:class:`~repro.trace.TelemetryRegistry` (so it never collides with an
optional :class:`~repro.trace.TelemetrySampler`'s registry on the same
run), asks the engine to register its live gauges into it, adds its own
derived series, and runs a 1 Hz simulated-time tick that samples the
registry and evaluates the alert rules over the sampled windows.
Everything downstream of the tick is a deterministic function of the
simulation, so same-seed runs replay byte-identical alert timelines
and journals.

Derived series (all under the ``repro_obs_`` prefix):

* ``repro_obs_slo_requests_total`` / ``repro_obs_slo_good_total``
  per SLO tenant -- the good/total counter pair the default burn-rate
  rule watches, bumped from the collector's serve-record stream.
* ``repro_obs_source_network_relrate`` per machine -- each source
  machine's recent transfer throughput relative to the cluster median,
  recomputed per tick from :class:`TransferRecord` flows.  This is the
  health monitor's per-source attribution insight recast as plain
  telemetry: a sick uplink shows up as *that machine's* series sinking
  below 1.0, so a plain threshold rule names the machine and resource.
* ``repro_obs_drift_ratio`` -- the drift detector's recent
  measured/modeled ratio (1.0 = the model is tracking reality).
* ``repro_obs_driver_up`` per driver -- 1/0 liveness when a control
  plane is attached.
* ``repro_obs_self_overhead_ms_per_s`` -- the plane's *own* wall-clock
  cost per simulated second (the self-overhead account).  Wall-clock
  values never feed rules, the journal, or report text -- they are
  observable, not load-bearing, so determinism holds.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ObsError
from repro.metrics.events import ServeRecord
from repro.obs.alerts import Alert, AlertEngine
from repro.obs.drift import DriftVerdict, ModelDriftDetector
from repro.obs.exemplars import WORST_JOB_METRIC, Exemplar, ExemplarStore
from repro.obs.journal import EventJournal, JsonlJournalSink
from repro.obs.rules import (AbsenceRule, BurnRateRule, ThresholdRule)
from repro.trace.telemetry import TelemetryRegistry

__all__ = ["ObservabilityPlane"]

Labels = Tuple[Tuple[str, str], ...]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Metric names the default rules watch.
SLO_TOTAL_METRIC = "repro_obs_slo_requests_total"
SLO_GOOD_METRIC = "repro_obs_slo_good_total"
RELRATE_METRIC = "repro_obs_source_network_relrate"
DRIFT_METRIC = "repro_obs_drift_ratio"
DRIVER_UP_METRIC = "repro_obs_driver_up"
OVERHEAD_METRIC = "repro_obs_self_overhead_ms_per_s"


class ObservabilityPlane:
    """Streaming alerting over a serving or control-plane run.

    Usage::

        obs = ObservabilityPlane()
        server = JobServer(ctx, ..., obs=obs)
        ...
        report = server.run()        # report carries firing alerts
        print(obs.journal.format())  # the unified event journal

    ``interval_s`` is the evaluation cadence (simulated seconds);
    ``drift_envelope`` the tolerated measured/modeled ratio;
    ``source_slow_threshold`` the relative-throughput floor below which
    a source machine's uplink is declared sick; ``journal_path`` tees
    the journal to a JSONL file.  ``default_rules=False`` starts with
    an empty rulebook (add your own via :meth:`add_rule`).
    """

    def __init__(self, interval_s: float = 1.0,
                 drift_envelope: float = 2.0,
                 source_slow_threshold: float = 0.5,
                 source_window_s: float = 10.0,
                 slo_objective: float = 0.99,
                 capacity_per_series: int = 4096,
                 retention_s: Optional[float] = None,
                 journal_capacity: int = 4096,
                 journal_path: Optional[str] = None,
                 default_rules: bool = True) -> None:
        if not interval_s > 0:
            raise ObsError(
                f"obs interval must be positive: {interval_s!r}")
        if not 0.0 < source_slow_threshold < 1.0:
            raise ObsError(f"source_slow_threshold must be in (0, 1): "
                           f"{source_slow_threshold!r}")
        self.interval_s = interval_s
        self.drift_envelope = drift_envelope
        self.source_slow_threshold = source_slow_threshold
        self.source_window_s = source_window_s
        self.slo_objective = slo_objective
        self.default_rules = default_rules
        self.registry = TelemetryRegistry(
            capacity_per_series=capacity_per_series,
            retention_s=retention_s)
        self.exemplars = ExemplarStore()
        self.journal_sink = (JsonlJournalSink(journal_path)
                             if journal_path is not None else None)
        self.journal = EventJournal(capacity=journal_capacity,
                                    sink=self.journal_sink)
        #: Built at :meth:`attach` (needs the collector for records).
        self.alerts: Optional[AlertEngine] = None
        self.drift: Optional[ModelDriftDetector] = None
        self.env = None
        self.engine = None
        self.metrics = None
        # SLO counter state, bumped from serve records.
        self._slo_total: Dict[str, int] = {}
        self._slo_good: Dict[str, int] = {}
        # Per-source transfer-rate state, recomputed per tick.
        self._relrate: Dict[int, float] = {}
        self._transfer_cursor = 0
        #: machine -> [(end_t, bytes/s)] flows within source_window_s.
        self._flows: Dict[int, List[Tuple[float, float]]] = {}
        # Self-overhead account (wall clock; observable, never
        # load-bearing).
        self._overhead_wall_s = 0.0
        self._sim_start: Optional[float] = None
        self.ticks = 0
        self._running = False
        self._pending_rules: List[object] = []

    # -- wiring --------------------------------------------------------------------

    def add_rule(self, rule) -> None:
        """Register a rule (before or after :meth:`attach`)."""
        if self.alerts is None:
            self._pending_rules.append(rule)
        else:
            self.alerts.add_rule(rule)

    def attach(self, engine, tenants=None) -> None:
        """Bind to an engine: register gauges, listener, default rules.

        ``tenants`` is a name -> Tenant mapping (or iterable of Tenant);
        tenants with an SLO get their good/total counter pair registered
        eagerly so the series exist from the first tick.
        """
        if self.engine is not None:
            raise ObsError("observability plane is already attached")
        self.engine = engine
        self.env = engine.env
        self.metrics = engine.metrics
        self.alerts = AlertEngine(self.registry, metrics=self.metrics,
                                  exemplars=self.exemplars)
        self.drift = ModelDriftDetector(cluster=engine.cluster,
                                        envelope=self.drift_envelope)
        # The engine's own gauges (queue depths, flows, dirty bytes,
        # plus datasvc / control-plane chains) become rule targets too.
        engine.register_telemetry(self.registry)
        self._register_derived_series()
        self.metrics.add_event_listener(self._on_event)
        for tenant in self._iter_tenants(tenants):
            if tenant.slo_s is not None:
                self._ensure_slo_series(tenant.name)
        if self.default_rules:
            self._install_default_rules()
        for rule in self._pending_rules:
            self.alerts.add_rule(rule)
        del self._pending_rules[:]

    @staticmethod
    def _iter_tenants(tenants):
        if tenants is None:
            return ()
        if hasattr(tenants, "values"):
            return tuple(tenants.values())
        return tuple(tenants)

    def _ensure_slo_series(self, tenant: str) -> None:
        if tenant in self._slo_total:
            return
        self._slo_total[tenant] = 0
        self._slo_good[tenant] = 0
        self.registry.counter(
            SLO_TOTAL_METRIC,
            "SLO-scoped requests reaching a terminal outcome",
            lambda t=tenant: float(self._slo_total[t]), tenant=tenant)
        self.registry.counter(
            SLO_GOOD_METRIC,
            "SLO-scoped requests that completed within their SLO",
            lambda t=tenant: float(self._slo_good[t]), tenant=tenant)

    def _register_derived_series(self) -> None:
        engine_name = self.engine.name
        for machine in self.engine.cluster.machines:
            machine_id = machine.machine_id
            self._relrate[machine_id] = 1.0
            self.registry.gauge(
                RELRATE_METRIC,
                "Source machine's recent transfer throughput relative "
                "to the cluster median (1.0 = typical)",
                lambda m=machine_id: self._relrate[m],
                machine=machine_id)
        self.registry.gauge(
            DRIFT_METRIC,
            "Recent job-time drift vs the template-calibrated ideal-"
            "model baseline (1.0 = on baseline)",
            lambda: self.drift.drift_ratio(), engine=engine_name)
        self.registry.counter(
            "repro_obs_unattributable_jobs",
            "Completed jobs the ideal model could not score",
            lambda: float(self.drift.unattributable_count()),
            engine=engine_name)
        self.registry.counter(
            "repro_obs_journal_events_total",
            "Events folded into the unified journal",
            lambda: float(self.journal.total))
        self.registry.gauge(
            "repro_obs_alerts_firing",
            "Alerts currently in the firing state",
            lambda: float(len(self.alerts.firing())))
        self.registry.gauge(
            OVERHEAD_METRIC,
            "Observability-plane wall-clock cost per simulated second",
            lambda: self.overhead()["ms_per_sim_s"])
        plane = getattr(self.engine, "controlplane", None)
        if plane is not None:
            for driver in plane.drivers:
                self.registry.gauge(
                    DRIVER_UP_METRIC,
                    "Driver replica liveness (1 = up)",
                    lambda d=driver.driver_id:
                        0.0 if plane.driver_is_down(d) else 1.0,
                    driver=driver.driver_id)

    def _install_default_rules(self) -> None:
        if self._slo_total:
            self.alerts.add_rule(BurnRateRule(
                name="slo-burn", good_metric=SLO_GOOD_METRIC,
                total_metric=SLO_TOTAL_METRIC,
                objective=self.slo_objective, severity="critical",
                summary="tenant is burning its SLO error budget"))
            self.alerts.add_rule(AbsenceRule(
                name="slo-signal", metric=SLO_TOTAL_METRIC,
                stale_after_s=max(15.0, 5 * self.interval_s),
                severity="warning",
                summary="SLO request counters stopped being sampled"))
        self.alerts.add_rule(ThresholdRule(
            name="source-slow", metric=RELRATE_METRIC, op="<",
            threshold=self.source_slow_threshold,
            window_s=2 * self.interval_s, agg="last",
            for_s=2 * self.interval_s, severity="critical",
            summary="machine's network uplink is serving transfers far "
                    "below the cluster-typical rate"))
        self.alerts.add_rule(ThresholdRule(
            name="model-drift", metric=DRIFT_METRIC, op=">",
            threshold=self.drift_envelope,
            window_s=max(5.0, 2 * self.interval_s), agg="last",
            severity="warning",
            summary="measured job times drifted outside the ideal "
                    "model's envelope"))
        if getattr(self.engine, "controlplane", None) is not None:
            self.alerts.add_rule(ThresholdRule(
                name="driver-down", metric=DRIVER_UP_METRIC, op="<",
                threshold=0.5, window_s=max(5.0, 2 * self.interval_s),
                agg="last", severity="critical",
                summary="driver replica is down"))

    # -- event stream --------------------------------------------------------------

    def _on_event(self, source: str, record) -> None:
        """The collector's listener hook: journal + SLO/drift feeds."""
        if source == "serve":
            self._observe_serve(record)
            return  # serve records are accounting, not journal events
        self.journal.observe(source, record)

    def _observe_serve(self, record: ServeRecord) -> None:
        if record.slo_s is not None:
            self._ensure_slo_series(record.tenant)
            self._slo_total[record.tenant] += 1
            if record.slo_met:
                self._slo_good[record.tenant] += 1
        if record.outcome != "completed" or record.job_id < 0:
            return
        now = self.env.now
        self.drift.observe_job(self.metrics, record.job_id,
                               tenant=record.tenant, at=now,
                               template=record.template)
        self._record_exemplars(record, now)

    def _record_exemplars(self, record: ServeRecord, now: float) -> None:
        try:
            report = self.metrics.critical_path_report(
                record.job_id, engine=self.engine.name)
        except Exception:
            return  # unfinished/odd job: no exemplar, never an outage
        segments = [s for s in report.segments if s.span_id >= 0]
        if not segments:
            return
        worst = max(segments,
                    key=lambda s: (s.duration, s.start, s.span_id))
        where = ("driver" if worst.machine_id < 0
                 else f"machine {worst.machine_id}")
        exemplar = Exemplar(
            t=now, value=record.latency_s,
            trace_id=self.metrics.job_trace_id(record.job_id),
            span_id=worst.span_id,
            detail=(f"job {record.job_id} spent {worst.duration:.3f}s of "
                    f"critical path on {worst.label} ({where})"))
        self.exemplars.record(WORST_JOB_METRIC, (), exemplar)
        if record.slo_s is not None:
            labels: Labels = (("tenant", record.tenant),)
            self.exemplars.record(SLO_TOTAL_METRIC, labels, exemplar)
        if worst.machine_id >= 0:
            self.exemplars.record(
                RELRATE_METRIC,
                (("machine", str(worst.machine_id)),), exemplar)

    # -- the tick ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the evaluation tick (idempotent; needs attach first)."""
        if self.engine is None:
            raise ObsError("attach() the plane to an engine before "
                           "start()")
        if self._running:
            return
        self._running = True
        if self._sim_start is None:
            self._sim_start = self.env.now
        self.env.process(self._run())

    def stop(self) -> None:
        """Stop after the current tick (idempotent)."""
        self._running = False

    def close(self) -> None:
        """Stop and flush the journal sink, if any."""
        self.stop()
        if self.journal_sink is not None:
            self.journal_sink.close()

    def _run(self):
        while self._running:
            self._tick(self.env.now)
            yield self.env.timeout(self.interval_s)

    def _tick(self, now: float) -> None:
        wall_start = time.perf_counter()
        self._refresh_relrates(now)
        self.registry.sample(now)
        self.alerts.evaluate(now)
        self.ticks += 1
        self._overhead_wall_s += time.perf_counter() - wall_start

    def _refresh_relrates(self, now: float) -> None:
        """Fold new transfers in; recompute per-source relative rates.

        A machine's rate is the *median* of its recent per-flow
        throughputs, not a byte-weighted average: a degraded uplink
        slows every flow the machine sources, while a peer is slowed
        only on the minority of its flows destined *to* the sick
        machine (whose downlink is equally degraded) -- the median
        keeps the peers' rates honest, so the sick source stands out
        against the cluster median instead of dragging it down.
        """
        transfers = self.metrics.transfers
        horizon = now - self.source_window_s
        while self._transfer_cursor < len(transfers):
            t = transfers[self._transfer_cursor]
            self._transfer_cursor += 1
            if t.duration > 0:
                self._flows.setdefault(t.src_machine_id, []).append(
                    (t.end, t.nbytes / t.duration))
        rates: Dict[int, float] = {}
        for machine_id, flows in self._flows.items():
            flows[:] = [f for f in flows if f[0] >= horizon]
            if flows:
                rates[machine_id] = _median([f[1] for f in flows])
        observed = [rates[m] for m in sorted(rates)]
        if not observed:
            for machine_id in self._relrate:
                self._relrate[machine_id] = 1.0
            return
        median = _median(observed)
        for machine_id in self._relrate:
            rate = rates.get(machine_id)
            if rate is None or median <= 0:
                self._relrate[machine_id] = 1.0
            else:
                self._relrate[machine_id] = rate / median

    # -- reading -------------------------------------------------------------------

    def firing(self) -> List[Alert]:
        """Currently firing alerts, sorted by (rule, labels)."""
        return self.alerts.firing() if self.alerts is not None else []

    def alert_timeline(self) -> List:
        """Every alert transition recorded so far, in time order."""
        return list(self.alerts.transitions) \
            if self.alerts is not None else []

    def drift_verdicts(self) -> List[DriftVerdict]:
        """Retained drift verdicts, oldest first."""
        return list(self.drift.verdicts) if self.drift is not None else []

    def overhead(self) -> Dict[str, float]:
        """The self-overhead account (wall-clock; not deterministic).

        ``ms_per_sim_s`` is the headline number the benchmark budget
        gates: milliseconds of real CPU the whole pipeline (relrate
        refresh + sampling + rule evaluation + listener fan-out costs
        charged inside the tick) spent per simulated second observed.
        """
        sim_s = 0.0
        if self._sim_start is not None and self.env is not None:
            sim_s = self.env.now - self._sim_start
        return {
            "wall_s": self._overhead_wall_s,
            "sim_s": sim_s,
            "ticks": float(self.ticks),
            "ms_per_sim_s": (1000.0 * self._overhead_wall_s / sim_s
                             if sim_s > 0 else 0.0),
        }
