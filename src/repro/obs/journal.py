"""A unified, bounded, severity-leveled event journal.

The simulator already narrates itself through four disjoint record
streams -- injected faults (:class:`FaultEventRecord`), health-monitor
decisions (:class:`HealthEventRecord`, including integrity faults),
control-plane membership (:class:`DriverEventRecord`), and alert
lifecycle transitions (:class:`AlertEventRecord`).  Debugging an
incident means interleaving all of them by time; the journal does that
fold *online*, via the metrics collector's event-listener hook, into
one bounded stream of :class:`JournalEvent` rows with a uniform
``(t, severity, source, kind, subject, detail)`` shape.

The journal is bounded (oldest dropped first, with a drop counter, so
an always-on serving run cannot grow it without limit) and optionally
tees every event to a :class:`JsonlJournalSink` as it arrives, in the
spirit of ``JsonlSpanSink`` -- one JSON object per line, no trailing
buffering, deterministic key order.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, List, Optional, Union

from repro.errors import ObsError

__all__ = ["JournalEvent", "EventJournal", "JsonlJournalSink",
           "fold_event", "severity_of", "SEVERITY_ORDER", "JOURNAL_SCHEMA"]

#: Severity ranks, least to most urgent (journal filters compare ranks).
SEVERITY_ORDER = {"info": 0, "warning": 1, "critical": 2}

#: Version stamped into every JSONL line the journal sink writes.
JOURNAL_SCHEMA = 1

#: Fault kinds that mean lost state/work rather than degradation.
_FAULT_CRITICAL = ("crash", "failure", "partition")
_HEALTH_CRITICAL = ("exclude", "integrity-fault")
_HEALTH_WARNING = ("suspect", "heartbeat-miss", "probation")
_DRIVER_CRITICAL = ("driver-crash", "lost", "isolated")
_DRIVER_WARNING = ("election", "reassign", "driver-partition",
                   "heartbeat-miss", "replay")


def severity_of(source: str, record) -> str:
    """Map one source record to a journal severity.

    The mapping encodes "what would page": lost work and lost state are
    critical; degradation signals and recovery churn are warnings;
    bookkeeping (leader announcements, reinstatements, resolved alerts)
    is info.  Alert records carry their own severity when firing.
    """
    kind = getattr(record, "kind", "")
    if source == "fault":
        if any(word in kind for word in _FAULT_CRITICAL):
            return "critical"
        return "warning"
    if source == "health":
        if kind in _HEALTH_CRITICAL:
            return "critical"
        if kind in _HEALTH_WARNING:
            return "warning"
        return "info"
    if source == "driver":
        if kind in _DRIVER_CRITICAL:
            return "critical"
        if kind in _DRIVER_WARNING:
            return "warning"
        return "info"
    if source == "alert":
        if kind == "firing":
            return record.severity
        return "info"
    raise ObsError(f"unknown journal source {source!r}")


@dataclass
class JournalEvent:
    """One folded event: a uniform row whatever the original stream."""

    t: float
    severity: str
    #: Which stream it came from: fault | health | driver | alert.
    source: str
    kind: str
    #: What it is about: ``machine 1``, ``driver 0``, a rule+labels key.
    subject: str
    detail: str = ""
    #: Exemplar link carried over from alert records (-1 = none).
    span_id: int = -1
    trace_id: str = ""

    def to_dict(self) -> dict:
        """A JSON-ready dict with deterministic field order."""
        return asdict(self)

    def format(self) -> str:
        """One aligned human line (``repro obs events`` output)."""
        link = f" span={self.trace_id}/{self.span_id}" \
            if self.span_id >= 0 else ""
        detail = f": {self.detail}" if self.detail else ""
        return (f"[{self.t:9.3f}] {self.severity.upper():8s} "
                f"{self.source}/{self.kind} {self.subject}{detail}{link}")


def _fold(source: str, record) -> JournalEvent:
    """Build the uniform row for one source record."""
    severity = severity_of(source, record)
    at = getattr(record, "at")
    if source == "fault":
        return JournalEvent(
            t=at, severity=severity, source=source, kind=record.kind,
            subject=f"machine {record.machine_id}", detail=record.detail)
    if source == "health":
        subject = f"machine {record.machine_id}"
        if record.resource:
            subject += f" {record.resource}"
        return JournalEvent(
            t=at, severity=severity, source=source, kind=record.kind,
            subject=subject, detail=record.detail)
    if source == "driver":
        subject = f"driver {record.driver_id}"
        if record.peer_id >= 0:
            subject += f" peer {record.peer_id}"
        if record.tenant:
            subject += f" tenant {record.tenant}"
        return JournalEvent(
            t=at, severity=severity, source=source, kind=record.kind,
            subject=subject, detail=record.detail)
    # source == "alert" (severity_of already rejected anything else)
    subject = record.rule
    if record.labels:
        subject += f"{{{record.labels}}}"
    return JournalEvent(
        t=at, severity=severity, source=source, kind=record.kind,
        subject=subject, detail=record.detail, span_id=record.span_id,
        trace_id=record.trace_id)


#: Public name for the fold (capsule recorders fold the same streams).
fold_event = _fold


class EventJournal:
    """Bounded fold of every event stream, in arrival order.

    Arrival order equals time order here because every producer records
    events at its own simulated ``now`` and the collector notifies
    listeners synchronously.  ``capacity`` bounds retained rows (oldest
    dropped first; :attr:`dropped` counts casualties); ``sink`` tees
    each row out as it arrives, so a bounded journal can still leave a
    complete JSONL audit trail on disk.
    """

    def __init__(self, capacity: int = 4096,
                 sink: Optional["JsonlJournalSink"] = None) -> None:
        if capacity < 1:
            raise ObsError(f"journal capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.sink = sink
        self._events: List[JournalEvent] = []
        self.dropped = 0
        self.total = 0

    def observe(self, source: str, record) -> JournalEvent:
        """Fold one source record in (the collector-listener entry)."""
        event = self._fold_and_append(_fold(source, record))
        return event

    def append(self, event: JournalEvent) -> JournalEvent:
        """Append an already-folded row (synthetic/bridge events)."""
        return self._fold_and_append(event)

    def _fold_and_append(self, event: JournalEvent) -> JournalEvent:
        self._events.append(event)
        self.total += 1
        overflow = len(self._events) - self.capacity
        if overflow > 0:
            del self._events[:overflow]
            self.dropped += overflow
        if self.sink is not None:
            self.sink.write(event)
        return event

    def events(self, min_severity: str = "info",
               source: Optional[str] = None) -> List[JournalEvent]:
        """Retained rows at or above a severity, optionally per source."""
        floor = SEVERITY_ORDER.get(min_severity)
        if floor is None:
            raise ObsError(
                f"unknown severity {min_severity!r}; use one of "
                f"{sorted(SEVERITY_ORDER, key=SEVERITY_ORDER.get)}")
        return [e for e in self._events
                if SEVERITY_ORDER[e.severity] >= floor
                and (source is None or e.source == source)]

    def __len__(self) -> int:
        return len(self._events)

    def format(self, min_severity: str = "info",
               source: Optional[str] = None) -> str:
        """The filtered journal as aligned human-readable lines."""
        rows = self.events(min_severity=min_severity, source=source)
        if not rows:
            return "(journal empty)"
        return "\n".join(event.format() for event in rows)


class JsonlJournalSink:
    """Streams journal rows to a JSON-lines file as they happen.

    Mirrors ``repro.trace.JsonlSpanSink``: opened eagerly, one compact
    JSON object per line (stamped with :data:`JOURNAL_SCHEMA`),
    idempotent :meth:`close`, usable as a context manager, and rows
    arriving after close are dropped silently (shutdown races are not
    errors).
    """

    def __init__(self, path_or_handle: Union[str, IO[str]]) -> None:
        if isinstance(path_or_handle, str):
            self._handle: Optional[IO[str]] = open(
                path_or_handle, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = path_or_handle
            self._owns_handle = False
        self.written = 0

    def write(self, event: JournalEvent) -> None:
        """Serialize one row (no-op after close)."""
        if self._handle is None:
            return
        record = event.to_dict()
        record["schema"] = JOURNAL_SCHEMA
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered rows to the OS (no-op after close)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonlJournalSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
