"""Model-drift detection: measured attribution vs the ideal model.

Monotasks' performance clarity rests on the claim that the ideal-rate
model *predicts* job runtime from per-resource monotask measurements
(§6 of the paper validates modeled-vs-measured across workloads).
That makes the model itself a health signal -- but not via the raw
ratio: the model divides by *aggregate cluster* capacity, so a job too
small to fill the cluster runs at a measured/modeled ratio well above
1.0 even when perfectly healthy, and the bias is workload-shaped, not
a constant.  What is stable on a healthy cluster is that a given job
*template* keeps producing the same ratio run after run.

So the detector self-calibrates: the first ``baseline_samples``
attributable jobs per template establish that template's baseline
ratio (their median), and from then on every job is scored by its
*normalized* ratio -- measured/modeled divided by the baseline.  A
healthy cluster holds the normalized ratio at ~1.0; a sick NIC, a
contended disk, or a failing-slow machine pushes the jobs it touches
off their baseline before anyone has diagnosed why, and the verdict
names the worst stage.  Firing condition: normalized ratio outside
``[1/envelope, envelope]``.

On the Spark-style engine the model has no per-resource measurements
to work from (§6.6) -- ``profile_job`` raises ``ModelError`` -- and
every verdict is NOT ATTRIBUTABLE: the same observability cliff the
paper demonstrates offline, here online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError, ObsError
from repro.model.ideal import hardware_profile, model_stage, profile_job
from repro.stats import percentile

__all__ = ["DriftVerdict", "ModelDriftDetector"]


@dataclass(frozen=True)
class DriftVerdict:
    """One completed job's modeled-vs-measured comparison."""

    job_id: int
    tenant: str
    at: float
    #: False on the Spark-style engine: no monotask measurements, no
    #: model, no attribution (the §6.6 contrast, online).
    attributable: bool
    template: str = ""
    measured_s: float = float("nan")
    modeled_s: float = float("nan")
    #: Raw measured / modeled (carries the model's small-job bias).
    ratio: float = float("nan")
    #: The template's calibrated healthy ratio (nan while calibrating).
    baseline: float = float("nan")
    #: ratio / baseline; ~1.0 = the template behaves as it always has.
    normalized: float = float("nan")
    drifting: bool = False
    worst_stage_id: int = -1
    worst_stage_ratio: float = float("nan")
    reason: str = ""

    @property
    def calibrating(self) -> bool:
        """True while this verdict only fed the baseline."""
        return self.attributable and self.baseline != self.baseline


class ModelDriftDetector:
    """Compares completed jobs against the ideal model, online.

    ``envelope`` is the tolerated multiplicative drift of the
    *normalized* ratio: a job drifts when ``normalized > envelope`` or
    ``normalized < 1 / envelope`` (running far *faster* than baseline
    also means the detector's picture of the workload is stale).
    ``baseline_samples`` attributable jobs per template calibrate that
    template's baseline (their median) before scoring starts.
    Verdicts are kept newest-last, bounded by ``keep``;
    :meth:`drift_ratio` feeds the plane's ``repro_obs_drift_ratio``
    gauge with the mean normalized ratio over the last ``window``
    scored verdicts (1.0 when there are none, so the gauge reads "no
    drift" on an idle or still-calibrating cluster).
    """

    def __init__(self, cluster=None, envelope: float = 2.0,
                 baseline_samples: int = 2, keep: int = 256,
                 window: int = 8) -> None:
        if not envelope > 1.0:
            raise ObsError(
                f"drift envelope must be > 1.0: {envelope!r}")
        if baseline_samples < 1:
            raise ObsError(
                f"baseline_samples must be >= 1: {baseline_samples}")
        if keep < 1 or window < 1:
            raise ObsError(
                f"keep and window must be >= 1: {keep}, {window}")
        self.cluster = cluster
        self.envelope = envelope
        self.baseline_samples = baseline_samples
        self.keep = keep
        self.window = window
        self.verdicts: List[DriftVerdict] = []
        #: template -> calibration ratios (until baseline_samples).
        self._calibration: Dict[str, List[float]] = {}
        #: template -> established baseline ratio.
        self._baselines: Dict[str, float] = {}
        self._hardware = None

    def _hardware_profile(self):
        if self._hardware is None:
            if self.cluster is None:
                raise ObsError("drift detector has no cluster to "
                               "profile hardware from")
            self._hardware = hardware_profile(self.cluster)
        return self._hardware

    def baseline_for(self, template: str = "") -> float:
        """The template's calibrated baseline ratio (nan = not yet)."""
        return self._baselines.get(template, float("nan"))

    def observe_job(self, metrics, job_id: int, tenant: str, at: float,
                    template: str = "") -> DriftVerdict:
        """Score one completed job; returns (and retains) the verdict."""
        try:
            profiles = profile_job(metrics, job_id)
        except ModelError as exc:
            verdict = DriftVerdict(
                job_id=job_id, tenant=tenant, at=at, attributable=False,
                template=template,
                reason=f"NOT ATTRIBUTABLE: {exc}")
            self._retain(verdict)
            return verdict
        hardware = self._hardware_profile()
        measured = 0.0
        modeled = 0.0
        worst_id = -1
        worst_ratio = 0.0
        for profile in profiles:
            stage_model = model_stage(profile, hardware)
            ideal = stage_model.ideal_completion_s
            measured += profile.measured_duration_s
            modeled += ideal
            if ideal > 0:
                stage_ratio = profile.measured_duration_s / ideal
                if stage_ratio > worst_ratio:
                    worst_ratio = stage_ratio
                    worst_id = profile.stage_id
        if modeled <= 0:
            verdict = DriftVerdict(
                job_id=job_id, tenant=tenant, at=at, attributable=False,
                template=template, measured_s=measured,
                reason="NOT ATTRIBUTABLE: model predicts zero runtime")
            self._retain(verdict)
            return verdict
        ratio = measured / modeled
        baseline = self._baselines.get(template)
        if baseline is None:
            samples = self._calibration.setdefault(template, [])
            samples.append(ratio)
            if len(samples) >= self.baseline_samples:
                self._baselines[template] = percentile(samples, 50.0)
                del self._calibration[template]
            verdict = DriftVerdict(
                job_id=job_id, tenant=tenant, at=at, attributable=True,
                template=template, measured_s=measured,
                modeled_s=modeled, ratio=ratio,
                worst_stage_id=worst_id, worst_stage_ratio=worst_ratio)
            self._retain(verdict)
            return verdict
        normalized = ratio / baseline
        drifting = (normalized > self.envelope
                    or normalized < 1.0 / self.envelope)
        reason = ""
        if drifting:
            direction = "above" if normalized > 1.0 else "below"
            reason = (f"job {job_id} runs at {normalized:.2f}x its "
                      f"template baseline, {direction} the "
                      f"{self.envelope:g}x envelope; worst stage "
                      f"{worst_id} at {worst_ratio:.2f}x the model")
        verdict = DriftVerdict(
            job_id=job_id, tenant=tenant, at=at, attributable=True,
            template=template, measured_s=measured, modeled_s=modeled,
            ratio=ratio, baseline=baseline, normalized=normalized,
            drifting=drifting, worst_stage_id=worst_id,
            worst_stage_ratio=worst_ratio, reason=reason)
        self._retain(verdict)
        return verdict

    def _retain(self, verdict: DriftVerdict) -> None:
        self.verdicts.append(verdict)
        del self.verdicts[:-self.keep]

    # -- gauge feeds ---------------------------------------------------------------

    def drift_ratio(self) -> float:
        """Mean normalized ratio over recently *scored* verdicts."""
        recent = [v.normalized for v in self.verdicts[-self.window:]
                  if v.attributable and v.normalized == v.normalized]
        if not recent:
            return 1.0
        return sum(recent) / len(recent)

    def unattributable_count(self) -> int:
        """How many retained verdicts could not be modeled at all."""
        return sum(1 for v in self.verdicts if not v.attributable)

    def drifting_verdicts(self) -> List[DriftVerdict]:
        """Retained verdicts that left the envelope, oldest first."""
        return [v for v in self.verdicts if v.drifting]
