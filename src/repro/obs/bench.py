"""Observability benchmark: alert timelines, detection latency, overhead.

Three seeded, deterministic scenarios pin the streaming alerting
plane's claims (ISSUE 9; the paper's §6.6 "performance clarity as a
health signal" recast online):

* **Fault-free** -- a light Poisson serving stream with the full plane
  attached.  The gate: *zero* alerts fire and every scored drift
  verdict stays inside the envelope, so the default rulebook has no
  false positives on a healthy cluster.  This run also measures the
  plane's self-overhead (wall-clock ms per simulated second) and
  asserts it under the documented budget.
* **Fail-slow** -- machine 1's network degrades 10x at t=5s under an
  SLO-bearing tenant, with the health monitor running alongside.  The
  gates: the ``source-slow`` alert names machine 1, the ``slo-burn``
  alert names the tenant, both fire *before* the health monitor
  excludes the machine (the alert is the early warning, the exclusion
  the remediation), and the firing alert's exemplar span resolves to a
  real critical-path span in the trace store.
* **Driver-crash** -- the control-plane leader fail-stops mid-run; the
  ``driver-down`` alert names the dead replica and the journal records
  the crash as critical.

Every invariant is a deterministic function of the seed: the benchmark
runs the scenario set twice and raises on any cross-run drift, so CI
diffs the committed ``BENCH_obs.json`` invariants exactly.  Wall-clock
overhead is machine-dependent -- it is budget-gated, never diffed.

``scripts/bench_trajectory.py --bench obs`` runs exactly this code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["ObsWorkload", "run_obs_benchmark", "trajectory_summary"]


@dataclass(frozen=True)
class ObsWorkload:
    """The seeded scenarios the observability benchmark drives."""

    machines: int = 4
    disks: int = 2
    seed: int = 1
    #: Plane's own wall-clock budget: ms of real CPU per simulated
    #: second observed.  Generous vs the ~0.2 measured locally so slow
    #: CI machines gate gross regressions, not scheduler noise.
    overhead_budget_ms_per_sim_s: float = 50.0
    # Fault-free scenario: light open-loop stream, lenient SLO.
    free_rate_per_s: float = 0.05
    free_horizon_s: float = 120.0
    free_slo_s: float = 120.0
    free_num_blocks: int = 2
    free_block_mb: float = 8.0
    # Fail-slow scenario: machine 1's NIC degrades under a tight SLO.
    slow_machine: int = 1
    slow_at: float = 5.0
    slow_factor: float = 10.0
    slow_tenant: str = "analytics"
    slow_slo_s: float = 3.0
    slow_num_blocks: int = 4
    slow_block_mb: float = 16.0
    slow_jobs: int = 20
    slow_period_s: float = 2.5
    # Driver-crash scenario: the leader replica dies mid-run.
    crash_num_drivers: int = 2
    crash_driver: int = 1
    crash_at: float = 15.0
    crash_rate_per_s: float = 0.3
    crash_horizon_s: float = 40.0
    crash_tenants: int = 4

    def params(self) -> Dict:
        """The workload knobs, for embedding in the JSON summary."""
        return {
            "machines": self.machines, "disks": self.disks,
            "seed": self.seed,
            "overhead_budget_ms_per_sim_s":
                self.overhead_budget_ms_per_sim_s,
            "free_rate_per_s": self.free_rate_per_s,
            "free_horizon_s": self.free_horizon_s,
            "free_slo_s": self.free_slo_s,
            "free_num_blocks": self.free_num_blocks,
            "free_block_mb": self.free_block_mb,
            "slow_machine": self.slow_machine,
            "slow_at": self.slow_at,
            "slow_factor": self.slow_factor,
            "slow_tenant": self.slow_tenant,
            "slow_slo_s": self.slow_slo_s,
            "slow_num_blocks": self.slow_num_blocks,
            "slow_block_mb": self.slow_block_mb,
            "slow_jobs": self.slow_jobs,
            "slow_period_s": self.slow_period_s,
            "crash_num_drivers": self.crash_num_drivers,
            "crash_driver": self.crash_driver,
            "crash_at": self.crash_at,
            "crash_rate_per_s": self.crash_rate_per_s,
            "crash_horizon_s": self.crash_horizon_s,
            "crash_tenants": self.crash_tenants,
        }


def _timeline(obs) -> List[Dict]:
    """The alert transitions as plain, exactly-diffable dicts."""
    return [{
        "t": round(record.at, 3),
        "rule": record.rule,
        "kind": record.kind,
        "labels": record.labels,
        "value": (None if record.value != record.value
                  else round(record.value, 3)),
        "exemplar": (f"{record.trace_id}/{record.span_id}"
                     if record.span_id >= 0 else ""),
    } for record in obs.alert_timeline()]


def _journal_counts(obs) -> Dict[str, int]:
    counts = {"critical": 0, "warning": 0, "info": 0}
    for event in obs.journal.events():
        counts[event.severity] += 1
    counts["dropped"] = obs.journal.dropped
    return counts


def _exemplar_resolves(metrics, record) -> bool:
    """Does the firing alert's exemplar point at a real stored span?"""
    if record.span_id < 0 or not record.trace_id.startswith("job-"):
        return False
    job_id = int(record.trace_id[len("job-"):])
    return any(span.span_id == record.span_id
               for span in metrics.spans_for_job(job_id))


def _first(timeline_records, rule: str, kind: str):
    for record in timeline_records:
        if record.rule == rule and record.kind == kind:
            return record
    return None


def _fault_free(workload: ObsWorkload):
    """Healthy stream: the rulebook must stay silent."""
    from repro.api.context import AnalyticsContext
    from repro.cluster import hdd_cluster
    from repro.obs import ObservabilityPlane
    from repro.serve import JobServer
    from repro.serve.workload import PoissonArrivals, wordcount_template

    cluster = hdd_cluster(num_machines=workload.machines,
                          num_disks=workload.disks, seed=workload.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    obs = ObservabilityPlane()
    server = JobServer(ctx, seed=workload.seed, obs=obs)
    server.add_tenant("batch", slo_s=workload.free_slo_s)
    template = wordcount_template(ctx,
                                  num_blocks=workload.free_num_blocks,
                                  block_mb=workload.free_block_mb)
    server.add_workload("batch", template,
                        PoissonArrivals(workload.free_rate_per_s,
                                        horizon_s=workload.free_horizon_s))
    report = server.run()
    timeline = _timeline(obs)
    if timeline:
        raise AssertionError(
            f"fault-free run fired alerts: {timeline}")
    verdicts = obs.drift_verdicts()
    drifting = [v for v in verdicts if v.drifting]
    if drifting:
        raise AssertionError(
            f"fault-free run drifted off its own baseline: {drifting}")
    invariants = {
        "completed": report.total_completed,
        "alert_transitions": 0,
        "drift_scored": sum(1 for v in verdicts if v.attributable),
        "drift_outside_envelope": 0,
        "journal": _journal_counts(obs),
    }
    return invariants, obs.overhead()


def _fail_slow(workload: ObsWorkload) -> Dict:
    """Machine 1 fails slow: alerts must name it before exclusion."""
    from repro.api.context import AnalyticsContext
    from repro.cluster import hdd_cluster
    from repro.faults import FaultInjector, fail_slow_plan
    from repro.health import HealthMonitor, HealthPolicy
    from repro.obs import ObservabilityPlane
    from repro.serve import JobServer
    from repro.serve.workload import TraceArrivals, wordcount_template

    cluster = hdd_cluster(num_machines=workload.machines,
                          num_disks=workload.disks, seed=workload.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    plan = fail_slow_plan(machine_id=workload.slow_machine,
                          at=workload.slow_at,
                          factor=workload.slow_factor)
    FaultInjector(ctx.engine, plan).start()
    monitor = HealthMonitor(ctx.engine, HealthPolicy())
    obs = ObservabilityPlane()
    server = JobServer(ctx, seed=workload.seed, health=monitor, obs=obs)
    server.add_tenant(workload.slow_tenant, slo_s=workload.slow_slo_s)
    template = wordcount_template(ctx,
                                  num_blocks=workload.slow_num_blocks,
                                  block_mb=workload.slow_block_mb)
    arrivals = TraceArrivals([1.0 + workload.slow_period_s * i
                              for i in range(workload.slow_jobs)])
    server.add_workload(workload.slow_tenant, template, arrivals)
    report = server.run()

    transitions = obs.alert_timeline()
    source_firing = _first(transitions, "source-slow", "firing")
    if source_firing is None:
        raise AssertionError("fail-slow run never fired source-slow: "
                             f"{_timeline(obs)}")
    expected = f"machine={workload.slow_machine}"
    if expected not in source_firing.labels:
        raise AssertionError(
            f"source-slow fired on {source_firing.labels!r}, "
            f"not {expected}")
    burn_firing = _first(transitions, "slo-burn", "firing")
    if burn_firing is None:
        raise AssertionError("fail-slow run never fired slo-burn: "
                             f"{_timeline(obs)}")
    if f"tenant={workload.slow_tenant}" not in burn_firing.labels:
        raise AssertionError(
            f"slo-burn fired on {burn_firing.labels!r}, not tenant="
            f"{workload.slow_tenant}")
    excludes = ctx.metrics.health_records(kind="exclude")
    if not excludes:
        raise AssertionError("health monitor never excluded the "
                             "fail-slow machine")
    excluded_at = excludes[0].at
    if not source_firing.at < excluded_at:
        raise AssertionError(
            f"source-slow fired at {source_firing.at} but the health "
            f"monitor had already excluded at {excluded_at} -- the "
            f"alert is supposed to be the early warning")
    for record in (source_firing, burn_firing):
        if not _exemplar_resolves(ctx.metrics, record):
            raise AssertionError(
                f"{record.rule} exemplar {record.trace_id}/"
                f"{record.span_id} does not resolve to a stored span")
    return {
        "completed": report.total_completed,
        "timeline": _timeline(obs),
        "source_slow_fired_at": round(source_firing.at, 3),
        "slo_burn_fired_at": round(burn_firing.at, 3),
        "health_excluded_at": round(excluded_at, 3),
        "detection_latency_s": round(
            source_firing.at - workload.slow_at, 3),
        "alert_led_exclusion_by_s": round(
            excluded_at - source_firing.at, 3),
        "exemplars_resolve": True,
        "journal": _journal_counts(obs),
    }


def _driver_crash(workload: ObsWorkload) -> Dict:
    """The control-plane leader dies: driver-down must name it."""
    from repro.api.context import AnalyticsContext
    from repro.cluster import hdd_cluster
    from repro.controlplane import ControlPlane
    from repro.faults import DriverCrash, FaultInjector, FaultPlan
    from repro.obs import ObservabilityPlane
    from repro.serve.workload import PoissonArrivals, wordcount_template

    cluster = hdd_cluster(num_machines=workload.machines,
                          num_disks=workload.disks, seed=workload.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    obs = ObservabilityPlane()
    plane = ControlPlane(ctx, num_drivers=workload.crash_num_drivers,
                         seed=workload.seed, obs=obs)
    template = wordcount_template(ctx, num_blocks=1, block_mb=2.0)
    for i in range(workload.crash_tenants):
        tenant = f"tenant{i}"
        plane.add_tenant(tenant)
        plane.add_workload(
            tenant, template,
            PoissonArrivals(workload.crash_rate_per_s,
                            horizon_s=workload.crash_horizon_s))
    FaultInjector(ctx.engine, FaultPlan([
        DriverCrash(at=workload.crash_at,
                    driver_id=workload.crash_driver)])).start()
    report = plane.run()

    transitions = obs.alert_timeline()
    down_firing = _first(transitions, "driver-down", "firing")
    if down_firing is None:
        raise AssertionError("driver crash never fired driver-down: "
                             f"{_timeline(obs)}")
    expected = f"driver={workload.crash_driver}"
    if expected not in down_firing.labels:
        raise AssertionError(
            f"driver-down fired on {down_firing.labels!r}, "
            f"not {expected}")
    counts = _journal_counts(obs)
    if counts["critical"] < 1:
        raise AssertionError(
            f"driver crash left no critical journal events: {counts}")
    return {
        "completed": report.total_completed,
        "jobs_lost": report.jobs_lost,
        "driver_down_fired_at": round(down_firing.at, 3),
        "driver_down_labels": down_firing.labels,
        "timeline": _timeline(obs),
        "journal": counts,
    }


def run_obs_benchmark(workload: Optional[ObsWorkload] = None,
                      repeats: int = 2) -> Dict:
    """All invariants, verified byte-stable across repeats.

    Returns ``{"invariants": ..., "overhead": ...}``: the invariants
    must be identical on every repeat (same seed, same timeline, to the
    byte); the overhead dict is the *best* (lowest ms-per-simulated-
    second) measurement across repeats, gated against the workload's
    budget but never diffed -- wall clock is the machine's, not the
    seed's.
    """
    if workload is None:
        workload = ObsWorkload()
    best: Optional[Dict] = None
    best_overhead: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        free, overhead = _fault_free(workload)
        invariants = {
            "fault_free": free,
            "fail_slow": _fail_slow(workload),
            "driver_crash": _driver_crash(workload),
        }
        if best is None:
            best = invariants
        elif invariants != best:
            raise AssertionError(
                f"non-deterministic benchmark run: {invariants} != {best}")
        if (best_overhead is None
                or overhead["ms_per_sim_s"]
                < best_overhead["ms_per_sim_s"]):
            best_overhead = overhead
    budget = workload.overhead_budget_ms_per_sim_s
    if best_overhead["ms_per_sim_s"] > budget:
        raise AssertionError(
            f"observability self-overhead "
            f"{best_overhead['ms_per_sim_s']:.3f} ms per simulated "
            f"second exceeds the {budget} ms budget")
    return {"invariants": best, "overhead": best_overhead}


def trajectory_summary(result: Dict,
                       workload: Optional[ObsWorkload] = None,
                       repeats: int = 2) -> Dict:
    """The JSON dict ``BENCH_obs.json`` holds.

    ``invariants`` is byte-stable and exactly diffed by CI;
    ``observed_overhead`` is informational (machine-dependent) -- the
    check gates it against ``workload.overhead_budget_ms_per_sim_s``
    instead of diffing it.
    """
    if workload is None:
        workload = ObsWorkload()
    overhead = result["overhead"]
    return {
        "benchmark": "obs_alerting",
        "workload": workload.params(),
        "repeats": repeats,
        "invariants": result["invariants"],
        "observed_overhead": {
            "ms_per_sim_s": round(overhead["ms_per_sim_s"], 4),
            "ticks": int(overhead["ticks"]),
            "sim_s": round(overhead["sim_s"], 3),
            "note": "wall-clock; budget-gated, not diffed",
        },
    }
