"""The control plane's frozen knobs: membership, checkpoints, failover.

Mirrors :class:`repro.health.HealthPolicy`: every tunable is validated
at construction so a misconfigured plane fails loudly before the
simulation starts, and the policy object is immutable so mid-run state
cannot drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ControlPlanePolicy"]


@dataclass(frozen=True)
class ControlPlanePolicy:
    """Knobs for a sharded multi-driver control plane.

    * ``heartbeat_interval_s`` -- how often the membership loop gossips
      liveness and re-evaluates every replica's view.
    * ``heartbeat_timeout_s`` -- silence threshold after which a peer is
      suspected dead (must exceed the interval or every tick would
      suspect everyone).
    * ``checkpoint_interval_s`` -- periodic full sweep of per-tenant
      checkpoints, belt-and-braces over the per-mutation writes.
    * ``control_service_s`` -- seconds of sequential driver work each
      dispatch costs; this serialization is exactly what sharding
      tenants across replicas parallelizes.
    * ``checkpoint`` / ``failover`` -- feature gates: with
      ``checkpoint=False`` a dead driver's requests are lost; with
      ``failover=False`` nobody adopts them at all.
    * ``vnodes`` -- virtual points per replica on the tenant hash ring.
    * ``checkpoint_nodes`` / ``checkpoint_replication`` -- size of the
      metadata store holding tenant checkpoints.
    """

    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 2.0
    checkpoint_interval_s: float = 5.0
    control_service_s: float = 0.005
    checkpoint: bool = True
    failover: bool = True
    vnodes: int = 64
    checkpoint_nodes: int = 2
    checkpoint_replication: int = 2

    def __post_init__(self) -> None:
        for name in ("heartbeat_interval_s", "heartbeat_timeout_s",
                     "checkpoint_interval_s"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value > 0):
                raise ConfigError(f"{name} must be finite and > 0: {value!r}")
        if not (math.isfinite(self.control_service_s)
                and self.control_service_s >= 0):
            raise ConfigError(f"control_service_s must be finite and >= 0: "
                              f"{self.control_service_s!r}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ConfigError(
                f"heartbeat_timeout_s ({self.heartbeat_timeout_s!r}) must "
                f"exceed heartbeat_interval_s "
                f"({self.heartbeat_interval_s!r})")
        if self.vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1: {self.vnodes}")
        if self.checkpoint_nodes < 1:
            raise ConfigError(
                f"checkpoint_nodes must be >= 1: {self.checkpoint_nodes}")
        if self.checkpoint_replication < 1:
            raise ConfigError(f"checkpoint_replication must be >= 1: "
                              f"{self.checkpoint_replication}")
