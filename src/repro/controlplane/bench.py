"""Control-plane benchmark: driver scaling and crash failover.

Two seeded, deterministic scenarios pin the sharded control plane's
claims (PAPERS.md: Sparrow's distributed schedulers, Borg/Omega-style
replicated masters):

* **Driver scaling** -- the same open-loop workload (8 tenants, Poisson
  arrivals, cached wordcount plans) served by 1, 2, and 4 driver
  replicas.  Every dispatch serializes for ``control_service_s`` on its
  shard's driver, so once the control plane is the bottleneck an
  N-driver plane must admit measurably more jobs/sec than one driver --
  the gate asserts it, and the per-tenant p95 collapse shows where the
  single driver's admission queue was the whole story.
* **Crash failover** -- the leader driver is crashed mid-run under a
  busier workload, with checkpointed failover on vs off.  With failover
  on, a survivor wins the election, adopts the dead shard from its
  checkpoints, and resumes the in-flight jobs: the gates demand zero
  lost requests and at least one resumed (not re-executed) job.  With
  failover off the same crash must lose requests -- that contrast is
  the benchmark's headline number.

Every number in the summary is a deterministic function of the seed, so
CI diffs the committed ``BENCH_controlplane.json`` exactly; the
benchmark runs twice and raises on cross-run drift, making every
invocation double as a determinism check.

``scripts/bench_trajectory.py --bench controlplane`` runs exactly this
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["ControlPlaneWorkload", "run_controlplane_benchmark",
           "trajectory_summary"]


@dataclass(frozen=True)
class ControlPlaneWorkload:
    """The seeded scenarios the control-plane benchmark drives."""

    machines: int = 4
    disks: int = 2
    seed: int = 11
    tenants: int = 8
    #: Per-dispatch driver serialization; high enough that one driver
    #: saturates under the scaling workload's aggregate arrival rate.
    control_service_s: float = 0.2
    # Scaling scenario: light jobs arriving faster than one driver
    # can admit them.
    scale_rate_per_s: float = 1.5
    scale_horizon_s: float = 40.0
    scale_driver_counts: tuple = (1, 2, 4)
    # Crash scenario: heavier jobs so the shard has work in flight
    # when its driver dies.
    crash_rate_per_s: float = 0.5
    crash_horizon_s: float = 40.0
    crash_num_drivers: int = 2
    #: The leader (highest id) dies, forcing an election too.
    crash_driver: int = 1
    crash_at: float = 20.0

    def params(self) -> Dict:
        """The workload knobs, for embedding in the JSON summary."""
        return {
            "machines": self.machines, "disks": self.disks,
            "seed": self.seed, "tenants": self.tenants,
            "control_service_s": self.control_service_s,
            "scale_rate_per_s": self.scale_rate_per_s,
            "scale_horizon_s": self.scale_horizon_s,
            "scale_driver_counts": list(self.scale_driver_counts),
            "crash_rate_per_s": self.crash_rate_per_s,
            "crash_horizon_s": self.crash_horizon_s,
            "crash_num_drivers": self.crash_num_drivers,
            "crash_driver": self.crash_driver,
            "crash_at": self.crash_at,
        }


def _plane(workload: ControlPlaneWorkload, num_drivers: int,
           rate_per_s: float, horizon_s: float, num_blocks: int,
           block_mb: float, failover: bool = True):
    """Build one ready-to-run plane over a fresh context."""
    from repro.api.context import AnalyticsContext
    from repro.cluster import hdd_cluster
    from repro.controlplane import ControlPlane, ControlPlanePolicy
    from repro.serve.workload import PoissonArrivals, wordcount_template

    cluster = hdd_cluster(num_machines=workload.machines,
                          num_disks=workload.disks, seed=workload.seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    policy = ControlPlanePolicy(
        control_service_s=workload.control_service_s,
        checkpoint=failover, failover=failover)
    plane = ControlPlane(ctx, num_drivers=num_drivers, config=policy,
                         seed=workload.seed)
    template = wordcount_template(ctx, num_blocks=num_blocks,
                                  block_mb=block_mb)
    for i in range(workload.tenants):
        tenant = f"tenant{i}"
        plane.add_tenant(tenant)
        plane.add_workload(tenant, template,
                           PoissonArrivals(rate_per_s,
                                           horizon_s=horizon_s))
    return plane


def _worst_p95(report) -> float:
    """The slowest tenant's p95 latency (the fairness-tail headline)."""
    values = [stats.p95_s for stats in report.serve.stats]
    return max(v for v in values if v is not None)


def _scaling_invariants(workload: ControlPlaneWorkload) -> Dict:
    """jobs/sec at each driver count; N>1 must beat one driver."""
    by_drivers: Dict[str, Dict] = {}
    throughput: Dict[int, float] = {}
    for num_drivers in workload.scale_driver_counts:
        plane = _plane(workload, num_drivers,
                       workload.scale_rate_per_s,
                       workload.scale_horizon_s,
                       num_blocks=1, block_mb=0.5)
        report = plane.run()
        if report.jobs_lost:
            raise AssertionError(
                f"scaling run with {num_drivers} drivers lost "
                f"{report.jobs_lost} jobs with no fault injected")
        throughput[num_drivers] = report.jobs_per_s
        by_drivers[str(num_drivers)] = {
            "jobs_per_s": round(report.jobs_per_s, 3),
            "completed": report.total_completed,
            "worst_p95_s": round(_worst_p95(report), 3),
        }
    base = throughput[workload.scale_driver_counts[0]]
    for num_drivers in workload.scale_driver_counts[1:]:
        if throughput[num_drivers] <= base * 1.2:
            raise AssertionError(
                f"{num_drivers} drivers admitted {throughput[num_drivers]:.3f}"
                f" jobs/s vs {base:.3f} for one driver -- sharding "
                f"bought no throughput")
    return by_drivers


def _crash_invariants(workload: ControlPlaneWorkload,
                      failover: bool) -> Dict:
    """One mid-run leader crash, failover on or off."""
    from repro.faults import DriverCrash, FaultInjector, FaultPlan

    plane = _plane(workload, workload.crash_num_drivers,
                   workload.crash_rate_per_s, workload.crash_horizon_s,
                   num_blocks=2, block_mb=4.0, failover=failover)
    plan = FaultPlan([DriverCrash(at=workload.crash_at,
                                  driver_id=workload.crash_driver)])
    FaultInjector(plane.engine, plan).start()
    report = plane.run()
    counters = report.counters
    invariants = {
        "completed": report.total_completed,
        "jobs_lost": report.jobs_lost,
        "jobs_resumed": int(counters["jobs_resumed"]),
        "jobs_replayed": int(counters["jobs_replayed"]),
        "elections": int(counters["elections"]),
        "tenants_reassigned": int(counters["tenants_reassigned"]),
        "worst_p95_s": round(_worst_p95(report), 3),
        "leader_id": report.leader_id,
    }
    if failover:
        invariants["checkpoint_restores"] = int(
            counters["checkpoint_restores"])
        if report.jobs_lost:
            raise AssertionError(
                f"failover-on crash lost {report.jobs_lost} jobs: "
                f"{invariants}")
        if invariants["jobs_resumed"] < 1:
            raise AssertionError(
                f"failover resumed no in-flight jobs (all re-executed "
                f"or lost): {invariants}")
        if invariants["elections"] < 1:
            raise AssertionError(
                f"leader crash triggered no election: {invariants}")
        if invariants["checkpoint_restores"] < 1:
            raise AssertionError(
                f"failover restored no checkpoints: {invariants}")
    elif not report.jobs_lost:
        raise AssertionError(
            "crash with failover disabled lost nothing -- the "
            "failover-on gate is vacuous")
    return invariants


def run_controlplane_benchmark(
        workload: Optional[ControlPlaneWorkload] = None,
        repeats: int = 2) -> Dict:
    """All invariants, verified byte-stable across repeats."""
    if workload is None:
        workload = ControlPlaneWorkload()
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        invariants = {
            "driver_scaling": _scaling_invariants(workload),
            "crash_failover_on": _crash_invariants(workload,
                                                   failover=True),
            "crash_failover_off": _crash_invariants(workload,
                                                    failover=False),
        }
        if best is None:
            best = invariants
        elif invariants != best:
            raise AssertionError(
                f"non-deterministic benchmark run: {invariants} != {best}")
    return best


def trajectory_summary(invariants: Dict,
                       workload: Optional[ControlPlaneWorkload] = None,
                       repeats: int = 2) -> Dict:
    """The byte-stable JSON dict ``BENCH_controlplane.json`` holds."""
    if workload is None:
        workload = ControlPlaneWorkload()
    return {
        "benchmark": "controlplane_failover",
        "workload": workload.params(),
        "repeats": repeats,
        "invariants": invariants,
    }
