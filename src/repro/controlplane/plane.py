"""The sharded multi-driver control plane over one engine.

A :class:`ControlPlane` runs ``num_drivers``
:class:`~repro.controlplane.replica.DriverReplica` instances on top of
a single engine: each replica owns the hash-ring shard of tenants the
plane assigned it and pays the per-dispatch ``control_service_s``
serialization for its shard only, so an N-driver plane admits jobs
roughly N times faster than one driver once the control plane -- not
the cluster -- is the bottleneck (the clarity aggregator's per-shard
windows make that saturation visible).

Robustness is layered on three mechanisms:

* **Membership** -- a heartbeat loop (the gossip analogue of
  :mod:`repro.health`'s task-rate heartbeats) maintains a per-replica
  liveness view; a peer silent for ``heartbeat_timeout_s`` is suspected
  dead.  A replica that can reach *no* peer marks itself isolated and
  quiesces dispatch, so a partitioned driver never split-brains a
  shard.
* **Leader election** -- bully-style: when a replica's view says the
  leader is dead, the highest-id replica alive in that view claims the
  role and bumps the leader epoch.  The leader alone owns shard
  reassignment.
* **Checkpointed failover** -- every shard mutation (enqueue, dispatch,
  completion) and a periodic sweep write the tenant's soft state to a
  replicated :class:`~repro.controlplane.checkpoint.CheckpointStore`
  riding a *dedicated* metadata network (so checkpoint traffic never
  perturbs compute-flow timing).  When the leader declares a driver
  dead it walks the dead shard tenant by tenant: the consistent-hash
  ring (minus the corpse) picks each adopter, the adopter restores the
  checkpoint, **resumes** still-running engine jobs by re-attaching
  completion watchers (the engine's attempt-tracked task pool never
  stopped them), **replays** requests that were only queued, and
  records anything unrecoverable as ``lost``.  Without a checkpoint
  the whole shard state is lost -- exactly the contrast the benchmark
  measures.

Exactly-once accounting holds through partitions because a request's
completion is fenced by its ``recorded`` flag (first writer wins) and
stale owners fence their queues against the plane's assignment table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.api.plan import JobPlan
from repro.controlplane.checkpoint import CheckpointStore
from repro.controlplane.policy import ControlPlanePolicy
from repro.controlplane.replica import DriverReplica
from repro.controlplane.report import ControlPlaneReport, FailoverSummary
from repro.controlplane.ring import HashRing
from repro.datasvc.service import DataService
from repro.errors import ConfigError, ReproError, SimulationError
from repro.metrics.events import DriverEventRecord, ServeRecord
from repro.serve.admission import AdmissionController, CostEstimator
from repro.serve.server import JobRequest, Tenant
from repro.serve.slo import ServeReport
from repro.serve.workload import JobTemplate
from repro.simulator import Event
from repro.simulator.network import Network
from repro.simulator.rng import RngStreams
from repro.trace.spans import (LINK_FAILOVER_RESUME, SPAN_FAILOVER,
                               SpanLink, SpanRecord)

__all__ = ["ControlPlane"]


class ControlPlane:
    """N driver replicas sharding tenants over one engine.

    Usage::

        ctx = AnalyticsContext(cluster, engine="monospark")
        plane = ControlPlane(ctx, num_drivers=4)
        plane.add_tenant("interactive", slo_s=30.0)
        plane.add_workload("interactive", template,
                           PoissonArrivals(2.0, horizon_s=120))
        report = plane.run()
        print(report.format())

    ``config`` is a :class:`ControlPlanePolicy`; ``scheduling`` names
    the per-replica job scheduler ("weighted_fair", "fifo",
    "deadline").  ``health``, ``telemetry``, and ``clarity`` mirror
    :class:`~repro.serve.server.JobServer`'s hooks.
    """

    def __init__(self, ctx, num_drivers: int = 2,
                 config: Optional[ControlPlanePolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 scheduling: str = "weighted_fair", seed: int = 0,
                 health=None, telemetry=None, clarity=None,
                 obs=None) -> None:
        if num_drivers < 1:
            raise ConfigError(f"num_drivers must be >= 1: {num_drivers}")
        self.ctx = ctx
        self.engine = ctx.engine
        self.env = ctx.engine.env
        self.metrics = ctx.metrics
        self.policy = config if config is not None else ControlPlanePolicy()
        self.admission = admission
        self.rng = RngStreams(seed)
        self.num_drivers = num_drivers
        self.health = health
        self.telemetry = telemetry
        self.clarity = clarity
        #: Optional :class:`repro.obs.ObservabilityPlane` (attached at
        #: :meth:`run`, after ``engine.controlplane`` is set, so its
        #: per-driver liveness gauges and driver-down rule exist).
        self.obs = obs
        self.estimator = CostEstimator(ctx.engine)
        self.tenants: Dict[str, Tenant] = {}
        self.drivers: List[DriverReplica] = [
            DriverReplica(self, i, scheduling) for i in range(num_drivers)]
        self.ring = HashRing(vnodes=self.policy.vnodes)
        for i in range(num_drivers):
            self.ring.add(i)
        #: tenant -> owning driver id (sticky; changed only by failover).
        self.assignment: Dict[str, int] = {}
        #: tenant -> ownership epoch (bumped per reassignment).
        self.epochs: Dict[str, int] = {}
        self.leader_id = num_drivers - 1
        self.leader_epoch = 0
        # Checkpoint tier: its own Network so metadata flows never
        # re-bank compute-flow shares (float-exact timing either way).
        self.store: Optional[CheckpointStore] = None
        self._driver_fabric: Dict[int, int] = {}
        if self.policy.checkpoint:
            self.cp_network = Network(self.env)
            service = DataService(
                ctx.cluster, num_nodes=self.policy.checkpoint_nodes,
                replication=self.policy.checkpoint_replication,
                network=self.cp_network)
            service.attach_engine(ctx.engine)
            self.store = CheckpointStore(service)
            base = ctx.cluster.num_machines + self.policy.checkpoint_nodes
            bps = ctx.cluster.spec.network_bps
            for i in range(num_drivers):
                self.cp_network.register_machine(base + i, up_bps=bps,
                                                 down_bps=bps)
                self._driver_fabric[i] = base + i
        # Serving state.
        self._workloads: List[tuple] = []
        self._open_sources = 0
        self._seq = 0
        #: seq -> request: the canonical handle an adopter resumes.
        self._requests: Dict[int, JobRequest] = {}
        #: engine job id -> driver process (survives driver crashes).
        self._job_procs: Dict[int, object] = {}
        #: tenant -> requests buffered while the shard owner is
        #: unreachable (clients retrying until failover or heal).
        self._orphans: Dict[str, List[JobRequest]] = {}
        #: Admitted requests not yet completed/failed/lost.
        self._outstanding = 0
        self._handled: set = set()
        self._all_done: Optional[Event] = None
        self._ran = False
        # Counters (telemetry / report face).
        self.elections = 0
        self.tenants_reassigned = 0
        self.jobs_resumed = 0
        self.jobs_replayed = 0
        self.jobs_lost = 0
        self.orphaned = 0
        self.failovers: List[FailoverSummary] = []
        # The engine-side attach point (mirrors engine.datasvc): fault
        # injection and telemetry chaining find the plane here.
        self.engine.controlplane = self

    # -- configuration -------------------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0,
                   slo_s: Optional[float] = None) -> Tenant:
        """Register a tenant and place it on the ring."""
        if name in self.tenants:
            raise SimulationError(f"tenant {name!r} is already registered")
        tenant = Tenant(name, weight=weight, slo_s=slo_s)
        self.tenants[name] = tenant
        owner = self.ring.assign(name)
        self.assignment[name] = owner
        self.epochs[name] = 0
        self.drivers[owner].ensure_tenant(name)
        return tenant

    def add_workload(self, tenant: str, template: JobTemplate,
                     arrivals) -> None:
        """Attach an open-loop source (own rng stream per source)."""
        if tenant not in self.tenants:
            self.add_tenant(tenant)
        index = len(self._workloads)
        self._workloads.append((tenant, template, arrivals, index))

    # -- lookups -------------------------------------------------------------------

    def owner_of(self, tenant: str) -> int:
        """The driver id currently owning ``tenant`` (-1 = unknown)."""
        return self.assignment.get(tenant, -1)

    def epoch_of(self, tenant: str) -> int:
        """The tenant's ownership epoch (bumped per reassignment)."""
        return self.epochs.get(tenant, 0)

    def driver_is_down(self, driver_id: int) -> bool:
        """Whether the driver has fail-stopped (FaultInjector guard)."""
        return self._driver(driver_id).down

    def driver_is_partitioned(self, driver_id: int) -> bool:
        """Whether the driver is partitioned (FaultInjector guard)."""
        return self._driver(driver_id).partitioned

    @property
    def live_driver_count(self) -> int:
        """Driver replicas currently up (partitioned still counts)."""
        return sum(1 for d in self.drivers if not d.down)

    def _driver(self, driver_id: int) -> DriverReplica:
        if not (0 <= driver_id < self.num_drivers):
            raise SimulationError(f"no driver {driver_id}")
        return self.drivers[driver_id]

    def register_job(self, job_id: int, driver_proc) -> None:
        """Remember the engine process behind a job (failover resume)."""
        self._job_procs[job_id] = driver_proc

    def record_driver_event(self, kind: str, driver_id: int,
                            peer_id: int = -1, tenant: str = "",
                            detail: str = "") -> None:
        """Record one membership/election/failover event, timestamped."""
        self.metrics.record_driver(DriverEventRecord(
            kind=kind, driver_id=driver_id, at=self.env.now,
            peer_id=peer_id, tenant=tenant, detail=detail))

    # -- submission ----------------------------------------------------------------

    def submit(self, job: Union[JobTemplate, JobPlan],
               tenant: str = "default") -> JobRequest:
        """Submit one request, routed to the tenant's shard owner."""
        if tenant not in self.tenants:
            self.add_tenant(tenant)
        template, plan = (job, None) if isinstance(job, JobTemplate) \
            else (None, job)
        if plan is not None and not isinstance(plan, JobPlan):
            raise ConfigError(f"submit() takes a JobTemplate or JobPlan: "
                              f"{job!r}")
        name = template.name if template is not None else plan.name
        request = JobRequest(
            seq=self._seq, tenant=tenant, template_name=name,
            arrival=self.env.now, done=self.env.event(), template=template,
            plan=plan, slo_s=self.tenants[tenant].slo_s,
            estimate_s=self.estimator.estimate(name))
        request.recorded = False
        self._seq += 1
        self._requests[request.seq] = request
        owner = self._driver(self.assignment[tenant])
        if self.admission is not None:
            admit, reason = self.admission.decide(
                request.estimate_s,
                [r.estimate_s for r in owner._queue])
            if not admit:
                request.shed = True
                request.recorded = True
                self.metrics.record_serve(ServeRecord(
                    tenant=tenant, template=name, arrival=request.arrival,
                    outcome="shed", estimate_s=request.estimate_s,
                    slo_s=request.slo_s, detail=reason))
                request.done.succeed(None)
                return request
        self._outstanding += 1
        if owner.down or owner.partitioned:
            if owner.down and not self.policy.failover:
                self._lose(request, f"driver {owner.driver_id} down with "
                                    f"failover disabled")
            else:
                # The client keeps retrying until failover (or a heal)
                # installs a reachable owner.
                self._orphans.setdefault(tenant, []).append(request)
                self.orphaned += 1
        else:
            owner.enqueue(request)
            self.checkpoint_tenant(owner, tenant)
        return request

    def _source(self, tenant: str, template: JobTemplate, arrivals,
                index: int):
        stream = self.rng.stream(
            f"controlplane/{index}/{tenant}/{template.name}")
        for at in arrivals.times(stream):
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            self.submit(template, tenant=tenant)
        self._open_sources -= 1
        self._maybe_finish()

    # -- completion accounting -----------------------------------------------------

    def finalize(self, driver: DriverReplica, request: JobRequest,
                 outcome: str, detail: str, result) -> None:
        """Record one request's terminal outcome, exactly once.

        Duplicate completions (split-brain double dispatch) hit the
        ``recorded`` fence and only clean up local state.
        """
        if request.recorded:
            driver.kick()
            return
        request.recorded = True
        request.result = result
        counts = driver.tenant_counts.setdefault(
            request.tenant, {"completed": 0, "failed": 0})
        if result is not None:
            driver.completed += 1
            counts["completed"] += 1
            driver.scheduler.credit(request.tenant, result.duration)
            self.estimator.observe(request.template_name, self.metrics,
                                   result)
            if self.clarity is not None:
                self.clarity.observe_job(self.metrics, request.plan.job_id,
                                         engine=self.engine.name,
                                         tenant=request.tenant)
        else:
            driver.failed += 1
            counts["failed"] += 1
        self.metrics.record_serve(ServeRecord(
            tenant=request.tenant, template=request.template_name,
            arrival=request.arrival, job_id=request.plan.job_id,
            dispatched=request.dispatched, completed=self.env.now,
            outcome=outcome, estimate_s=request.estimate_s,
            slo_s=request.slo_s, detail=detail))
        request.done.succeed(result)
        self._outstanding -= 1
        self.checkpoint_tenant(driver, request.tenant)
        driver.kick()
        self._maybe_finish()

    def _lose(self, request: JobRequest, reason: str) -> None:
        """Give up on a request: no surviving state can complete it."""
        if request.recorded:
            return
        request.recorded = True
        self.jobs_lost += 1
        job_id = request.plan.job_id if request.plan is not None else -1
        self.metrics.record_serve(ServeRecord(
            tenant=request.tenant, template=request.template_name,
            arrival=request.arrival, job_id=job_id,
            dispatched=request.dispatched, outcome="lost",
            estimate_s=request.estimate_s, slo_s=request.slo_s,
            detail=reason))
        self.record_driver_event("lost", self.owner_of(request.tenant),
                                 tenant=request.tenant,
                                 detail=f"request {request.seq}: {reason}")
        request.done.succeed(None)
        self._outstanding -= 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self._open_sources == 0 and self._outstanding == 0
                and self._all_done is not None
                and not self._all_done.triggered):
            self._all_done.succeed()

    # -- checkpointing -------------------------------------------------------------

    def checkpoint_tenant(self, driver: DriverReplica,
                          tenant: str) -> None:
        """Persist a tenant's shard state (fire-and-forget).

        The content is committed at issue time; the write process only
        models the metadata-tier I/O, so checkpointing on vs off leaves
        job timing identical.  A partitioned driver cannot reach the
        store, so its post-partition mutations are (deliberately) not
        durable.
        """
        if self.store is None or driver.down or driver.partitioned:
            return
        if self.owner_of(tenant) != driver.driver_id:
            return
        state = driver.tenant_state(tenant)
        self.env.process(self._write_checkpoint(driver.driver_id, tenant,
                                                state))

    def _write_checkpoint(self, driver_id: int, tenant: str, state: Dict):
        try:
            yield from self.store.write(self._driver_fabric[driver_id],
                                        tenant, state)
        except ReproError:
            self.store.write_failures += 1

    def _sweep(self):
        while True:
            yield self.env.timeout(self.policy.checkpoint_interval_s)
            for driver in self.drivers:
                if driver.down or driver.partitioned:
                    continue
                for tenant in sorted(self.assignment):
                    if self.assignment[tenant] == driver.driver_id:
                        self.checkpoint_tenant(driver, tenant)

    # -- membership, election, failover ----------------------------------------------

    def _reachable(self, listener: DriverReplica,
                   sender: DriverReplica) -> bool:
        if sender.down:
            return False
        if sender is listener:
            return True
        return not (listener.partitioned or sender.partitioned)

    def _membership(self):
        interval = self.policy.heartbeat_interval_s
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for d in self.drivers:
                if d.down:
                    continue
                for peer in self.drivers:
                    if self._reachable(d, peer):
                        d.last_heard[peer.driver_id] = now
            for d in self.drivers:
                if not d.down:
                    self._evaluate_view(d, now)

    def _evaluate_view(self, d: DriverReplica, now: float) -> None:
        timeout = self.policy.heartbeat_timeout_s
        suspected = set()
        for peer in self.drivers:
            if peer.driver_id == d.driver_id:
                continue
            heard = d.last_heard.get(peer.driver_id, float("-inf"))
            stale = now - heard > timeout
            was = peer.driver_id in d.suspects
            if stale and not was:
                d.suspects.add(peer.driver_id)
                self.record_driver_event(
                    "heartbeat-miss", d.driver_id, peer_id=peer.driver_id,
                    detail=f"silent {now - heard:.1f}s")
            elif not stale and was:
                d.suspects.discard(peer.driver_id)
                self.record_driver_event("heartbeat-restore", d.driver_id,
                                         peer_id=peer.driver_id)
            if stale:
                suspected.add(peer.driver_id)
        if self.num_drivers > 1:
            # "All peers unreachable" is ambiguous: am I partitioned, or
            # did everyone else crash?  The metadata fabric is the
            # witness that disambiguates -- a driver that can still
            # renew its lease there (i.e. is not partitioned) keeps
            # serving; one that cannot quiesces rather than split-brain
            # the shards it may no longer own.
            lease_lost = d.partitioned
            if len(suspected) == self.num_drivers - 1 and lease_lost:
                if not d.isolated:
                    d.isolated = True
                    self.record_driver_event(
                        "isolated", d.driver_id,
                        detail="no reachable peers and no witness lease; "
                               "dispatch quiesced")
                return
            if d.isolated and not lease_lost:
                d.isolated = False
                self.record_driver_event("rejoin", d.driver_id)
                d.kick()
        if self.leader_id in suspected:
            winner = max(i for i in range(self.num_drivers)
                         if i not in suspected)
            if winner == d.driver_id and self.leader_id != d.driver_id:
                self.leader_epoch += 1
                self.elections += 1
                self.leader_id = d.driver_id
                self.record_driver_event(
                    "election", d.driver_id,
                    detail=f"epoch {self.leader_epoch}")
                self.record_driver_event(
                    "leader", d.driver_id,
                    detail=f"epoch {self.leader_epoch}")
        if self.leader_id == d.driver_id and self.policy.failover:
            for peer_id in sorted(suspected):
                key = (peer_id, self.drivers[peer_id].incarnation)
                if key in self._handled:
                    continue
                self._handled.add(key)
                self.env.process(self._failover(self.drivers[peer_id]))

    def _failover(self, dead: DriverReplica):
        """Leader-driven shard recovery for one declared-dead driver."""
        detect = self.env.now
        incarnation = dead.incarnation
        span_id = self.metrics.new_span_id()
        if dead.driver_id in self.ring and len(self.ring) > 1:
            self.ring.remove(dead.driver_id)
        shard = sorted(t for t, owner in self.assignment.items()
                       if owner == dead.driver_id)
        resumed = replayed = lost = restored = 0
        adopters: Dict[str, int] = {}
        for tenant in shard:
            adopter_id = self.ring.assign(tenant)
            adopter = self.drivers[adopter_id]
            self.assignment[tenant] = adopter_id
            self.epochs[tenant] = self.epochs.get(tenant, 0) + 1
            self.tenants_reassigned += 1
            adopters[tenant] = adopter_id
            self.record_driver_event(
                "reassign", adopter_id, peer_id=dead.driver_id,
                tenant=tenant, detail=f"epoch {self.epochs[tenant]}")
            r, p, l, rs = yield from self._adopt(dead, adopter, tenant,
                                                 span_id)
            resumed += r
            replayed += p
            lost += l
            restored += rs
        end = self.env.now
        self.metrics.record_span(SpanRecord(
            span_id=span_id, trace_id="controlplane", parent_id=None,
            kind=SPAN_FAILOVER, name=f"failover:driver{dead.driver_id}",
            start=detect, end=end,
            attrs={"dead_driver": dead.driver_id,
                   "tenants": len(shard), "resumed": resumed,
                   "replayed": replayed, "lost": lost,
                   "restored_checkpoints": restored}))
        self.failovers.append(FailoverSummary(
            at=detect, completed_at=end, dead_driver=dead.driver_id,
            incarnation=incarnation, tenants=tuple(shard),
            adopters=adopters, resumed=resumed, replayed=replayed,
            lost=lost, restored=restored))
        self._maybe_finish()

    def _adopt(self, dead: DriverReplica, adopter: DriverReplica,
               tenant: str, span_id: int):
        """Move one tenant to ``adopter``, restoring its checkpoint."""
        state = None
        if self.store is not None:
            try:
                state = yield from self.store.read(
                    self._driver_fabric[adopter.driver_id], tenant)
            except ReproError:
                state = None
        resumed = replayed = lost = 0
        restored = 0
        adopter.ensure_tenant(tenant)
        if state is not None:
            restored = 1
            self.record_driver_event(
                "checkpoint-restore", adopter.driver_id,
                peer_id=dead.driver_id, tenant=tenant,
                detail=f"{len(state['queued'])} queued, "
                       f"{len(state['inflight'])} in flight")
            adopter.restore_tenant(tenant, state)
            for job_id, seq, _dispatched in state["inflight"]:
                request = self._requests.get(seq)
                if request is None or request.recorded:
                    continue
                driver_proc = self._job_procs.get(job_id)
                if driver_proc is None:
                    if not self._replay(adopter, dead, request):
                        self._lose(request,
                                   f"job {job_id} unrecoverable after "
                                   f"driver {dead.driver_id} failure")
                        lost += 1
                    else:
                        replayed += 1
                    continue
                self._resume(adopter, dead, request, job_id, driver_proc,
                             span_id)
                resumed += 1
            for seq in state["queued"]:
                request = self._requests.get(seq)
                if request is None or request.recorded:
                    continue
                if (request.plan is not None
                        and request.plan.job_id in self._job_procs):
                    # Split-brain: the partitioned owner dispatched it
                    # after its last durable checkpoint.  Adopt the
                    # running job instead of replaying a duplicate.
                    self._resume(adopter, dead, request,
                                 request.plan.job_id,
                                 self._job_procs[request.plan.job_id],
                                 span_id)
                    resumed += 1
                    continue
                if self._replay(adopter, dead, request):
                    replayed += 1
                else:
                    self._lose(request,
                               f"request {seq} unrecoverable after "
                               f"driver {dead.driver_id} failure")
                    lost += 1
        else:
            # Nothing durable: the shard's queued and in-flight
            # requests die with the driver.
            for request in dead.held_requests(tenant):
                if request.recorded:
                    continue
                self._lose(request,
                           f"driver {dead.driver_id} died without a "
                           f"checkpoint")
                lost += 1
        for request in self._orphans.pop(tenant, []):
            adopter.enqueue(request)
        adopter.kick()
        return resumed, replayed, lost, restored

    def _resume(self, adopter: DriverReplica, dead: DriverReplica,
                request: JobRequest, job_id: int, driver_proc,
                span_id: int) -> None:
        """Re-attach a still-running engine job to the adopter."""
        adopter._running[job_id] = request
        adopter.attach(request, driver_proc)
        self.jobs_resumed += 1
        self.record_driver_event(
            "resume", adopter.driver_id, peer_id=dead.driver_id,
            tenant=request.tenant, detail=f"job {job_id}")
        roots = self.metrics.spans_for_job(job_id)
        if roots:
            self.metrics.record_link(SpanLink(
                from_span_id=span_id, to_span_id=roots[0].span_id,
                kind=LINK_FAILOVER_RESUME, trace_id=roots[0].trace_id,
                at=self.env.now,
                detail=f"driver {dead.driver_id} -> "
                       f"driver {adopter.driver_id}"))

    def _replay(self, adopter: DriverReplica, dead: DriverReplica,
                request: JobRequest) -> bool:
        """Re-queue a never-completed request at the adopter."""
        if request.template is not None:
            request.plan = None  # fresh job/shuffle ids on redispatch
        elif request.plan is None:
            return False
        adopter.enqueue(request)
        self.jobs_replayed += 1
        self.record_driver_event(
            "replay", adopter.driver_id, peer_id=dead.driver_id,
            tenant=request.tenant, detail=f"request {request.seq}")
        return True

    # -- fault entry points (FaultInjector API) --------------------------------------

    def crash_driver(self, driver_id: int) -> None:
        """Fail-stop one driver replica."""
        driver = self._driver(driver_id)
        if driver.down:
            raise SimulationError(f"driver {driver_id} is already down")
        self.record_driver_event("driver-crash", driver_id)
        driver.halt()
        if not self.policy.failover:
            for request in driver.held_requests():
                self._lose(request, f"driver {driver_id} crashed with "
                                    f"failover disabled")
            driver._queue = []
            driver._running = {}
            driver._admitting = None
        self._maybe_finish()

    def restart_driver(self, driver_id: int) -> None:
        """Bring a crashed driver back, empty (shards stay adopted)."""
        driver = self._driver(driver_id)
        if not driver.down:
            raise SimulationError(f"driver {driver_id} is not down")
        driver.revive(self.env.now, self.num_drivers)
        if driver_id not in self.ring:
            self.ring.add(driver_id)
        self.record_driver_event(
            "driver-restart", driver_id,
            detail=f"incarnation {driver.incarnation}")
        self._drain_orphans_for(driver_id)

    def partition_driver(self, driver_id: int) -> None:
        """Cut one driver off from its peers and the checkpoint store."""
        driver = self._driver(driver_id)
        if driver.down:
            raise SimulationError(f"driver {driver_id} is down")
        if driver.partitioned:
            raise SimulationError(
                f"driver {driver_id} is already partitioned")
        driver.partitioned = True
        self.record_driver_event("driver-partition", driver_id)

    def heal_driver(self, driver_id: int) -> None:
        """Heal a partition; the driver rejoins with a fresh view."""
        driver = self._driver(driver_id)
        if not driver.partitioned:
            raise SimulationError(f"driver {driver_id} is not partitioned")
        driver.partitioned = False
        driver.incarnation += 1
        driver.last_heard = {peer: self.env.now
                             for peer in range(self.num_drivers)}
        if driver_id not in self.ring:
            self.ring.add(driver_id)
        self.record_driver_event(
            "partition-heal", driver_id,
            detail=f"incarnation {driver.incarnation}")
        self._drain_orphans_for(driver_id)
        driver.kick()

    def _drain_orphans_for(self, driver_id: int) -> None:
        for tenant in sorted(self.assignment):
            if self.assignment[tenant] != driver_id:
                continue
            for request in self._orphans.pop(tenant, []):
                self.drivers[driver_id].enqueue(request)

    # -- telemetry -----------------------------------------------------------------

    def register_telemetry(self, registry) -> None:
        """Register the plane's gauges and counters (labeled per driver)."""
        engine = self.engine.name
        registry.gauge("repro_cp_live_drivers",
                       "Driver replicas currently up",
                       lambda: float(self.live_driver_count), engine=engine)
        registry.gauge("repro_cp_leader",
                       "Current leader's driver id",
                       lambda: float(self.leader_id), engine=engine)
        registry.counter("repro_cp_elections",
                         "Leader elections after the initial choice",
                         lambda: float(self.elections), engine=engine)
        registry.counter("repro_cp_tenants_reassigned",
                         "Tenant shards moved by failover",
                         lambda: float(self.tenants_reassigned),
                         engine=engine)
        registry.counter("repro_cp_jobs_resumed",
                         "In-flight jobs adopted without re-execution",
                         lambda: float(self.jobs_resumed), engine=engine)
        registry.counter("repro_cp_jobs_replayed",
                         "Queued requests re-dispatched after failover",
                         lambda: float(self.jobs_replayed), engine=engine)
        registry.counter("repro_cp_jobs_lost",
                         "Requests lost to unrecovered driver failures",
                         lambda: float(self.jobs_lost), engine=engine)
        if self.store is not None:
            store = self.store
            registry.counter("repro_cp_checkpoints",
                             "Tenant checkpoint writes issued",
                             lambda: float(store.writes), engine=engine)
            registry.counter("repro_cp_checkpoint_bytes",
                             "Bytes of tenant checkpoints written",
                             lambda: store.bytes_written, engine=engine)
            registry.counter("repro_cp_checkpoint_restores",
                             "Checkpoint restores during failover",
                             lambda: float(store.restores), engine=engine)
        for driver in self.drivers:
            registry.gauge("repro_cp_queued_requests",
                           "Admitted requests waiting in one shard",
                           driver.queue_depth, engine=engine,
                           driver=str(driver.driver_id))
            registry.gauge("repro_cp_running_jobs",
                           "Jobs one shard has in flight",
                           driver.running_jobs, engine=engine,
                           driver=str(driver.driver_id))

    # -- driving -------------------------------------------------------------------

    def run(self) -> ControlPlaneReport:
        """Serve until every source is exhausted and every request has
        a terminal outcome (completed, failed, shed, or lost)."""
        if self._ran:
            raise SimulationError("a ControlPlane can only run once")
        self._ran = True
        self._all_done = self.env.event()
        start = self.env.now
        if self.obs is not None:
            # Before the initial leader announcement, so even that
            # first driver event lands in the unified journal.
            self.obs.attach(self.engine, tenants=self.tenants)
            self.obs.start()
        self.record_driver_event("leader", self.leader_id,
                                 detail="initial (highest id)")
        for driver in self.drivers:
            driver.last_heard = {peer: start
                                 for peer in range(self.num_drivers)}
            driver.start()
        self._open_sources = len(self._workloads)
        for tenant, template, arrivals, index in self._workloads:
            self.env.process(self._source(tenant, template, arrivals,
                                          index))
        self.env.process(self._membership())
        if self.store is not None:
            self.env.process(self._sweep())
        if self.health is not None:
            self.health.start()
        if self.telemetry is not None:
            registry = self.telemetry.registry
            # Chains to register_telemetry above via engine.controlplane.
            self.engine.register_telemetry(registry)
            retention = getattr(registry, "retention_s", None)
            if retention is not None:
                self.ctx.cluster.set_tracker_retention(retention)
            self.telemetry.start()
        self._maybe_finish()
        self.env.run(until=self._all_done)
        if self.health is not None:
            self.health.stop()
        if self.telemetry is not None:
            self.telemetry.stop()
        if self.obs is not None:
            self.obs.stop()
        duration = self.env.now - start
        serve = ServeReport.from_metrics(
            self.metrics, engine_name=self.engine.name,
            tenants=sorted(self.tenants), duration_s=duration)
        if self.telemetry is not None:
            serve.attach_telemetry(self.telemetry.registry)
        if self.clarity is not None:
            serve.attach_clarity(self.clarity)
        datasvc = getattr(self.engine, "datasvc", None)
        if datasvc is not None:
            serve.attach_datasvc(datasvc)
        if self.obs is not None:
            serve.attach_obs(self.obs)
        return self._report(serve, duration)

    def _report(self, serve: ServeReport,
                duration: float) -> ControlPlaneReport:
        counters = {
            "elections": float(self.elections),
            "leader_epoch": float(self.leader_epoch),
            "tenants_reassigned": float(self.tenants_reassigned),
            "jobs_resumed": float(self.jobs_resumed),
            "jobs_replayed": float(self.jobs_replayed),
            "jobs_lost": float(self.jobs_lost),
            "requests_orphan_buffered": float(self.orphaned),
        }
        if self.store is not None:
            counters.update(self.store.stats())
        per_driver = []
        for d in self.drivers:
            per_driver.append({
                "driver": d.driver_id,
                "state": d.state,
                "tenants": sum(1 for owner in self.assignment.values()
                               if owner == d.driver_id),
                "dispatched": d.dispatched,
                "completed": d.completed,
                "failed": d.failed,
                "fenced": d.fenced,
                "crashes": d.crashes,
                "control_busy_s": d.control_busy_s,
            })
        return ControlPlaneReport(
            serve=serve, num_drivers=self.num_drivers,
            leader_id=self.leader_id, leader_epoch=self.leader_epoch,
            assignment=dict(sorted(self.assignment.items())),
            per_driver=per_driver, counters=counters,
            failovers=list(self.failovers),
            events=list(self.metrics.driver_events))
