"""The control-plane run report: serving stats plus failover timeline.

Wraps the serving layer's :class:`~repro.serve.slo.ServeReport` and
adds what a multi-driver plane uniquely knows: per-driver shard stats,
membership/election/failover counters, every
:class:`~repro.metrics.events.DriverEventRecord` in time order, and a
:class:`FailoverSummary` per recovered driver.  ``format()`` renders
with fixed precision, so identical runs produce byte-identical text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.events import DriverEventRecord
from repro.metrics.report import format_table
from repro.serve.slo import ServeReport

__all__ = ["FailoverSummary", "ControlPlaneReport"]


@dataclass
class FailoverSummary:
    """One leader-driven recovery of a declared-dead driver."""

    #: When the leader declared the driver dead and began reassignment.
    at: float
    #: When the last tenant's adoption (checkpoint restore included)
    #: finished.
    completed_at: float
    dead_driver: int
    #: The dead driver's incarnation at failure (restarts bump it).
    incarnation: int
    tenants: Tuple[str, ...] = ()
    #: tenant -> adopting driver id.
    adopters: Dict[str, int] = field(default_factory=dict)
    #: In-flight jobs re-attached to adopters without re-execution.
    resumed: int = 0
    #: Queued requests re-dispatched by adopters.
    replayed: int = 0
    #: Requests with no surviving state (checkpointing off).
    lost: int = 0
    #: Tenant checkpoints successfully restored.
    restored: int = 0

    @property
    def duration_s(self) -> float:
        """Detection-to-adoption time for the whole dead shard."""
        return self.completed_at - self.at


@dataclass
class ControlPlaneReport:
    """Everything one sharded serving run produced."""

    serve: ServeReport
    num_drivers: int
    leader_id: int
    leader_epoch: int
    #: tenant -> owning driver at run end.
    assignment: Dict[str, int] = field(default_factory=dict)
    per_driver: List[Dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    failovers: List[FailoverSummary] = field(default_factory=list)
    events: List[DriverEventRecord] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Simulated seconds the serving run spanned."""
        return self.serve.duration_s

    @property
    def total_completed(self) -> int:
        """Requests completed across every tenant and shard."""
        return self.serve.total_completed

    @property
    def jobs_lost(self) -> int:
        """Requests that vanished with a driver -- zero when checkpointed
        failover did its job (the CLI exits non-zero otherwise)."""
        return self.serve.total_lost

    @property
    def jobs_per_s(self) -> float:
        """Completed jobs per simulated second, across all shards."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_completed / self.duration_s

    def format(self) -> str:
        """Render the full report (serving stats first)."""
        sections = [self.serve.format()]
        driver_rows = [
            [f"d{d['driver']}", d["state"], d["tenants"], d["dispatched"],
             d["completed"], d["failed"], d["fenced"], d["crashes"],
             f"{d['control_busy_s']:.3f}"]
            for d in self.per_driver]
        sections.append(format_table(
            ["driver", "state", "tenants", "dispatched", "done", "failed",
             "fenced", "crashes", "busy (s)"],
            driver_rows,
            title=(f"Control plane ({self.num_drivers} drivers, leader "
                   f"d{self.leader_id} epoch {self.leader_epoch}, "
                   f"{self.jobs_per_s:.2f} jobs/s)")))
        counter_rows = [[name, f"{value:g}"]
                        for name, value in sorted(self.counters.items())]
        sections.append(format_table(
            ["counter", "value"], counter_rows,
            title="Control-plane counters"))
        if self.failovers:
            failover_rows = [
                [f"{f.at:.1f}", f"d{f.dead_driver}",
                 ",".join(f.tenants) or "-",
                 ",".join(f"{t}->d{d}"
                          for t, d in sorted(f.adopters.items())) or "-",
                 f.restored, f.resumed, f.replayed, f.lost,
                 f"{f.duration_s:.3f}"]
                for f in self.failovers]
            sections.append(format_table(
                ["t (s)", "dead", "tenants", "adopters", "restored",
                 "resumed", "replayed", "lost", "took (s)"],
                failover_rows, title="Failover timeline"))
        if self.events:
            event_rows = [
                [f"{e.at:.1f}", e.kind, f"d{e.driver_id}",
                 "-" if e.peer_id < 0 else f"d{e.peer_id}",
                 e.tenant or "-", e.detail or "-"]
                for e in self.events]
            sections.append(format_table(
                ["t (s)", "event", "driver", "peer", "tenant", "detail"],
                event_rows, title="Driver event timeline"))
        return "\n\n".join(sections)
