"""Deterministic consistent hashing: tenants onto driver replicas.

The control plane shards tenants across driver replicas with a classic
consistent-hash ring: every member contributes ``vnodes`` virtual
points, a key is owned by the first point clockwise of its hash, and
membership churn therefore moves only the keys whose arcs the joining
or leaving member touches -- the churn-stability property the tests
pin.

Hashes come from :func:`hashlib.sha256`, never the builtin ``hash``
(which is salted per process): the same members and keys produce the
same assignment in every run, on every machine.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError, SimulationError

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """A deterministic 64-bit ring position for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer member ids.

    ``vnodes`` virtual points per member smooth the load split; 64 is
    plenty for the handful of driver replicas a control plane runs.
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, int]] = []  # (position, member)
        self._members: set = set()

    # -- membership ----------------------------------------------------------------

    def members(self) -> List[int]:
        """Current member ids, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members

    def add(self, member: int) -> None:
        """Join ``member``; duplicate joins are an error."""
        if member in self._members:
            raise SimulationError(f"ring member {member} already joined")
        self._members.add(member)
        for v in range(self.vnodes):
            position = _point(f"member:{member}#{v}")
            bisect.insort(self._points, (position, member))

    def remove(self, member: int) -> None:
        """Leave ``member``; unknown members are an error."""
        if member not in self._members:
            raise SimulationError(f"ring member {member} never joined")
        self._members.discard(member)
        self._points = [(pos, m) for pos, m in self._points if m != member]

    # -- assignment ----------------------------------------------------------------

    def assign(self, key: str) -> int:
        """The member owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise SimulationError("cannot assign on an empty ring")
        position = _point(f"key:{key}")
        index = bisect.bisect_right(self._points, (position, 2 ** 64))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def assignment(self, keys: Iterable[str]) -> Dict[str, int]:
        """Owner per key, in one pass."""
        return {key: self.assign(key) for key in keys}
