"""Durable per-tenant driver state on the metadata data-service tier.

A driver replica's soft state for one tenant -- the admitted queue,
in-flight job attempts, compiled-template cache keys, and the fair
scheduler's SLO accounting -- is encoded as canonical JSON (sorted
keys, fixed separators: byte-identical across runs) and written through
:meth:`repro.datasvc.DataService.write_block` as a replicated,
checksummed block named ``ckpt:{tenant}``.  A re-write replaces the
previous version, so the block always holds the latest checkpoint.

The store rides a *dedicated* metadata :class:`~repro.simulator.network.
Network` (the plane builds the service with ``network=``), so
checkpoint traffic never re-banks the max-min fair shares of compute
flows -- checkpointing on vs off leaves job timing float-identical,
which ``tests/test_determinism.py`` pins.

Reads pay the full simulated I/O cost (replica selection, CRC verify,
transfer) via :meth:`~repro.datasvc.DataService.read_block`, then
decode the payload the service stored at write time.
"""

from __future__ import annotations

import json
from typing import Dict, Generator, Optional

__all__ = ["CheckpointStore", "encode_state", "decode_state"]

_IDS = (-1, -1, -1)  # checkpoint I/O belongs to no job/stage/task


def encode_state(state: Dict) -> str:
    """Canonical JSON: sorted keys, no whitespace -- byte-stable."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def decode_state(encoded: str) -> Dict:
    """Inverse of :func:`encode_state`."""
    return json.loads(encoded)


class CheckpointStore:
    """Tenant checkpoints over a (metadata) :class:`DataService`."""

    def __init__(self, service) -> None:
        self.service = service
        self.env = service.env
        # Cumulative counters (telemetry / report face).  Stamped at
        # issue time, so they are deterministic whatever the I/O takes.
        self.writes = 0
        self.restores = 0
        self.write_failures = 0
        self.bytes_written = 0.0

    @staticmethod
    def block_id(tenant: str) -> str:
        return f"ckpt:{tenant}"

    def write(self, src_machine_id: int, tenant: str,
              state: Dict) -> Generator:
        """A process body that persists ``state`` for ``tenant``.

        The content is encoded (and, once the generator first advances,
        durably stored by the service) at issue time; the generator then
        models the put/replication cost.  Callers fire it with
        ``env.process`` so checkpointing never blocks the dispatch path.
        """
        encoded = encode_state(state)
        nbytes = float(len(encoded.encode("utf-8")))
        self.writes += 1
        self.bytes_written += nbytes
        return self._write(src_machine_id, self.block_id(tenant), nbytes,
                           encoded)

    def _write(self, src_machine_id: int, block_id: str, nbytes: float,
               encoded: str) -> Generator:
        yield from self.service.write_block(src_machine_id, block_id,
                                            nbytes, _IDS, payload=encoded)

    def read(self, dst_machine_id: int, tenant: str) -> Generator:
        """A process body yielding the latest checkpoint, or ``None``.

        Pays the simulated read cost (verified replica, transfer over
        the metadata fabric) before decoding.  Raises
        :class:`~repro.errors.FaultError` when every replica is gone --
        the adopter then treats the tenant as having no checkpoint.
        """
        info = self.service.block_info(self.block_id(tenant))
        if info is None:
            return None
        nbytes, payload = info
        yield from self.service.read_block(dst_machine_id,
                                           self.block_id(tenant),
                                           nbytes, _IDS)
        self.restores += 1
        return decode_state(payload)

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (merged into the control-plane report)."""
        return {
            "checkpoint_writes": float(self.writes),
            "checkpoint_restores": float(self.restores),
            "checkpoint_write_failures": float(self.write_failures),
            "checkpoint_bytes": self.bytes_written,
        }
