"""One driver replica: a shard-local job server over the shared engine.

Each :class:`DriverReplica` owns the hash-ring shard of tenants the
:class:`~repro.controlplane.plane.ControlPlane` assigned it and runs
its own admitted queue, job scheduler, and sequential dispatcher --
every dispatch costs ``control_service_s`` of driver time, which is the
serialization that sharding across N replicas parallelizes.  The
engine's task pool below is shared: replicas shard the *control* plane,
not the cluster.

A replica's life-cycle flags drive the failure semantics:

* ``down`` -- fail-stop crash: the dispatcher and every completion
  watcher are interrupted; in-flight engine jobs keep running headless
  until an adopter re-attaches watchers from the tenant checkpoint.
* ``partitioned`` -- reachable by nobody (peers or checkpoint store)
  but still alive: the membership loop will mark it ``isolated``, which
  quiesces dispatch so a healed replica never split-brains a shard it
  no longer owns.  Completion records are fenced by the request's
  ``recorded`` flag (first writer wins) and dispatch is fenced by the
  plane's assignment table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import Interrupted, ReproError
from repro.serve.scheduler import make_scheduler
from repro.serve.server import JobRequest
from repro.simulator import Event

__all__ = ["DriverReplica"]


class DriverReplica:
    """One of the plane's N drivers; see the module docstring."""

    def __init__(self, plane, driver_id: int, policy: str) -> None:
        self.plane = plane
        self.env = plane.env
        self.engine = plane.engine
        self.driver_id = driver_id
        self._policy_name = policy
        self.scheduler = make_scheduler(policy)
        # Life-cycle.
        self.down = False
        self.partitioned = False
        self.isolated = False
        #: Bumped on every return to service (restart or partition
        #: heal), so each failure of this replica is failed over once.
        self.incarnation = 0
        #: Liveness view: peer id -> last heartbeat receipt time.
        self.last_heard: Dict[int, float] = {}
        #: Peers this replica currently suspects dead.
        self.suspects: set = set()
        # Shard-local serving state.
        self._queue: List[JobRequest] = []
        self._running: Dict[int, JobRequest] = {}
        self._watchers: Dict[int, object] = {}
        #: The request held by the dispatcher during its admission
        #: window (removed from the queue, not yet dispatched).
        self._admitting: Optional[JobRequest] = None
        self._registered: set = set()
        self._wakeup: Optional[Event] = None
        self._dispatcher_proc = None
        # Counters (report face).
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.crashes = 0
        self.fenced = 0
        self.control_busy_s = 0.0
        #: tenant -> {"completed": n, "failed": n} -- checkpointed and
        #: restored with the shard.
        self.tenant_counts: Dict[str, Dict[str, int]] = {}

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> str:
        """The replica's life-cycle state, one word (report face)."""
        if self.down:
            return "down"
        if self.partitioned:
            return "partitioned"
        if self.isolated:
            return "isolated"
        return "up"

    def queue_depth(self) -> int:
        """Admitted requests waiting (the mid-admission one included)."""
        return len(self._queue) + (self._admitting is not None)

    def running_jobs(self) -> int:
        """Engine jobs this shard currently has in flight."""
        return len(self._running)

    def held_requests(self, tenant: Optional[str] = None
                      ) -> List[JobRequest]:
        """Every request this replica holds (queued, admitting, or
        in flight), optionally filtered to one tenant."""
        held = list(self._queue)
        if self._admitting is not None:
            held.append(self._admitting)
        held.extend(self._running.values())
        if tenant is not None:
            held = [r for r in held if r.tenant == tenant]
        return held

    def ensure_tenant(self, tenant: str) -> None:
        """Register ``tenant`` with the local scheduler once."""
        if tenant in self._registered:
            return
        self._registered.add(tenant)
        self.scheduler.register_tenant(
            tenant, self.plane.tenants[tenant].weight)
        self.tenant_counts.setdefault(tenant, {"completed": 0, "failed": 0})

    def tenant_state(self, tenant: str) -> Dict:
        """The tenant's checkpointable soft state, canonical order."""
        queued = sorted(r.seq for r in self._queue if r.tenant == tenant)
        if (self._admitting is not None
                and self._admitting.tenant == tenant):
            # Mid-admission requests checkpoint as still queued: if the
            # driver dies inside the admission window the adopter
            # replays them rather than losing them.
            queued = sorted(queued + [self._admitting.seq])
        inflight = sorted(
            [r.plan.job_id, r.seq, r.dispatched]
            for r in self._running.values() if r.tenant == tenant)
        templates = sorted({r.template_name
                            for r in self.held_requests(tenant)})
        counts = self.tenant_counts.get(tenant,
                                        {"completed": 0, "failed": 0})
        return {
            "tenant": tenant,
            "epoch": self.plane.epoch_of(tenant),
            "queued": queued,
            "inflight": inflight,
            "templates": templates,
            "virtual_time": self.scheduler.virtual_time(tenant)
            if hasattr(self.scheduler, "virtual_time") else 0.0,
            "completed": counts["completed"],
            "failed": counts["failed"],
        }

    def restore_tenant(self, tenant: str, state: Dict) -> None:
        """Adopt the checkpointed accounting for a failed-over tenant."""
        self.ensure_tenant(tenant)
        self.scheduler.restore_virtual_time(
            tenant, float(state.get("virtual_time", 0.0)))
        counts = self.tenant_counts[tenant]
        counts["completed"] = max(counts["completed"],
                                  int(state.get("completed", 0)))
        counts["failed"] = max(counts["failed"],
                               int(state.get("failed", 0)))

    # -- serving -------------------------------------------------------------------

    def enqueue(self, request: JobRequest) -> None:
        """Admit one request to this shard's queue and wake dispatch."""
        self.ensure_tenant(request.tenant)
        self._queue.append(request)
        self._kick()

    def start(self) -> None:
        """Spawn the shard's sequential dispatcher process."""
        self._dispatcher_proc = self.env.process(self._dispatcher())

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def kick(self) -> None:
        """Public wakeup (the plane pokes adopters after a failover)."""
        self._kick()

    def _quiesced(self) -> bool:
        return self.down or self.isolated

    def _dispatcher(self):
        plane = self.plane
        cost = plane.policy.control_service_s
        try:
            while True:
                while self._queue and not self._quiesced():
                    request = self.scheduler.pick_next(self._queue)
                    self._queue.remove(request)
                    if plane.owner_of(request.tenant) != self.driver_id:
                        # Ownership moved (we were partitioned and the
                        # shard failed over): the adopter holds the
                        # authoritative copy -- drop ours.
                        self.fenced += 1
                        plane.record_driver_event(
                            "fenced", self.driver_id,
                            tenant=request.tenant,
                            detail=f"request {request.seq} now owned by "
                                   f"driver {plane.owner_of(request.tenant)}")
                        continue
                    self._admitting = request
                    if cost > 0:
                        yield self.env.timeout(cost)
                    self.control_busy_s += cost
                    if plane.clarity is not None:
                        plane.clarity.observe_control(self.driver_id, cost,
                                                      self.env.now)
                    self._admitting = None
                    if self.down:
                        # Crashed inside the admission window; the last
                        # checkpoint still lists the request as queued,
                        # so the adopter replays it.
                        return
                    if (self.isolated or plane.owner_of(request.tenant)
                            != self.driver_id):
                        self._queue.append(request)
                        break
                    self._dispatch(request)
                if self.down:
                    return
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
        except Interrupted:
            self._wakeup = None
            return

    def _dispatch(self, request: JobRequest) -> None:
        plane = self.plane
        if request.plan is None:
            request.plan = request.template.instantiate(plane.ctx)
        request.dispatched = self.env.now
        driver_proc = self.engine.submit_job(request.plan)
        plane.register_job(request.plan.job_id, driver_proc)
        self._running[request.plan.job_id] = request
        self.dispatched += 1
        self.attach(request, driver_proc)
        plane.checkpoint_tenant(self, request.tenant)

    def attach(self, request: JobRequest, driver_proc) -> None:
        """Watch an engine job for this shard (dispatch or adoption)."""
        watcher = self.env.process(self._watch(request, driver_proc))
        self._watchers[request.plan.job_id] = watcher

    def _watch(self, request: JobRequest, driver_proc):
        outcome, detail, result = "completed", "", None
        try:
            result = yield driver_proc
        except Interrupted:
            # Our driver crashed; the adopter re-attaches from the
            # checkpoint and the engine job keeps running untouched.
            return
        except ReproError as error:
            outcome, detail = "failed", type(error).__name__
        self._running.pop(request.plan.job_id, None)
        self._watchers.pop(request.plan.job_id, None)
        if self.down:
            return
        self.plane.finalize(self, request, outcome, detail, result)

    # -- failure hooks (driven by the plane) -----------------------------------------

    def halt(self) -> None:
        """Fail-stop: interrupt the dispatcher and every watcher."""
        self.down = True
        self.crashes += 1
        if (self._dispatcher_proc is not None
                and self._dispatcher_proc.is_alive):
            self._dispatcher_proc.interrupt("driver crash")
        for watcher in list(self._watchers.values()):
            if watcher.is_alive:
                watcher.interrupt("driver crash")
        self._watchers.clear()

    def revive(self, now: float, num_drivers: int) -> None:
        """Return to service empty: sticky shards stay where they went."""
        self.down = False
        self.partitioned = False
        self.isolated = False
        self.incarnation += 1
        self.suspects = set()
        self.last_heard = {peer: now for peer in range(num_drivers)}
        self._queue = []
        self._running = {}
        self._watchers = {}
        self._admitting = None
        self._registered = set()
        self.scheduler = make_scheduler(self._policy_name)
        self.start()
