"""Sharded multi-driver control plane (``repro.controlplane``).

The serving layer's single :class:`~repro.serve.server.JobServer`
driver is both a throughput ceiling (every dispatch serializes through
one admission loop) and a single point of failure.  This package runs
N driver replicas over one engine: a consistent-hash ring shards
tenants across replicas, heartbeat membership and bully leader
election keep the replica set coherent, and per-tenant checkpoints on
a dedicated metadata data-service tier let a surviving replica adopt a
dead driver's shard -- resuming its in-flight jobs through the
engine's attempt-tracked task pool instead of failing them.  See
``docs/controlplane.md``.
"""

from repro.controlplane.checkpoint import (CheckpointStore, decode_state,
                                           encode_state)
from repro.controlplane.plane import ControlPlane
from repro.controlplane.policy import ControlPlanePolicy
from repro.controlplane.replica import DriverReplica
from repro.controlplane.report import ControlPlaneReport, FailoverSummary
from repro.controlplane.ring import HashRing

__all__ = [
    "CheckpointStore",
    "ControlPlane",
    "ControlPlanePolicy",
    "ControlPlaneReport",
    "DriverReplica",
    "FailoverSummary",
    "HashRing",
    "decode_state",
    "encode_state",
]
