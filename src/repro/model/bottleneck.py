"""Bottleneck analysis (§6.5, Figure 14).

Ousterhout et al.'s NSDI'15 study added extensive blocked-time
instrumentation to Spark to answer "how much faster would the job run if
it never blocked on disk/network?".  With monotasks "the necessary
instrumentation is built into the framework's execution model": the
best-case completion time with an infinitely fast resource is the model
of §6.1 with that resource excluded from the per-stage maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError
from repro.metrics.events import CPU, DISK, NETWORK
from repro.model.ideal import (HardwareProfile, StageProfile, model_stage)

__all__ = ["BottleneckReport", "analyze_bottlenecks"]


@dataclass
class BottleneckReport:
    """Per-job answers to "what if resource X were infinitely fast?"."""

    measured_s: float
    modeled_s: float
    #: resource -> modeled job seconds with that resource free.
    modeled_without: Dict[str, float]
    #: stage_id -> bottleneck resource.
    stage_bottlenecks: Dict[int, str]

    def speedup_fraction(self, resource: str) -> float:
        """Fraction of (modeled) runtime removed by optimizing away
        ``resource``: the paper's "best-case improvement"."""
        if self.modeled_s <= 0:
            raise ModelError("modeled time is zero")
        return 1.0 - self.modeled_without[resource] / self.modeled_s

    def predicted_runtime_without(self, resource: str) -> float:
        """Measured runtime scaled to the infinitely-fast-X scenario."""
        if self.modeled_s <= 0:
            raise ModelError("modeled time is zero")
        return self.measured_s * (self.modeled_without[resource]
                                  / self.modeled_s)

    @property
    def job_bottleneck(self) -> str:
        """The resource whose removal helps most."""
        return min(self.modeled_without, key=self.modeled_without.get)


def analyze_bottlenecks(profiles: List[StageProfile], measured_s: float,
                        hardware: HardwareProfile) -> BottleneckReport:
    """Build the Fig 14-style report for one job."""
    if not profiles:
        raise ModelError("no stage profiles supplied")
    models = {profile.stage_id: model_stage(profile, hardware)
              for profile in profiles}
    modeled_s = sum(m.ideal_completion_s for m in models.values())
    modeled_without = {
        resource: sum(m.without(resource) for m in models.values())
        for resource in (CPU, DISK, NETWORK)
    }
    return BottleneckReport(
        measured_s=measured_s,
        modeled_s=modeled_s,
        modeled_without=modeled_without,
        stage_bottlenecks={stage_id: model.bottleneck
                           for stage_id, model in models.items()})
