"""Can the model be used for Spark? (§6.6, Figures 15-17)

Three progressively better -- and still inadequate -- ways to model a
Spark-style engine, reproducing the paper's negative results:

* **Slot model** (Fig 15): Spark's only scheduling dimension is slots,
  so the natural prediction scales runtime by the slot ratio; hardware
  changes that do not change the slot count predict *no* change.

* **Slot-share attribution** (Fig 16): when jobs run concurrently, a
  user can only attribute an executor's total resource use to stages in
  proportion to the slots their tasks held.  Jobs with different
  resource profiles make this estimate wrong by large factors, whereas
  monotask self-reports attribute exactly.

* **Measured-utilization model** (Fig 17): even with per-stage resource
  totals measured in isolation (our simulator's ground truth, standing
  in for executor-level counters), feeding them into the §6.1 model
  mispredicts because Spark's fine-grained interleaving changes
  *effective* resource throughput (HDD seek contention), and because
  deserialization time cannot be separated out (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.model.ideal import HardwareProfile, StageProfile

__all__ = [
    "slot_model_prediction",
    "spark_stage_profiles",
    "AttributionEstimate",
    "true_stage_usage",
    "slot_share_stage_usage",
    "attribution_errors",
]


# ---------------------------------------------------------------------------
# Fig 15: the slot model
# ---------------------------------------------------------------------------

def slot_model_prediction(measured_s: float, old_slots: int,
                          new_slots: int) -> float:
    """Runtime predicted from slot counts alone.

    "if a job took 10 seconds to complete on a cluster with 8 slots, it
    should take 5 seconds to complete on a cluster with 16 slots."
    """
    if old_slots < 1 or new_slots < 1:
        raise ModelError("slot counts must be >= 1")
    return measured_s * (old_slots / new_slots)


# ---------------------------------------------------------------------------
# Fig 17: the measured-utilization model
# ---------------------------------------------------------------------------

def spark_stage_profiles(metrics: MetricsCollector,
                         job_id: int) -> List[StageProfile]:
    """Stage profiles from a *Spark* run's resource-usage ground truth.

    This approximates the paper's restricted measurement: per-stage
    executor resource totals gathered while the job runs in isolation.
    Deserialization time is not separable in Spark (§6.3), so the
    in-memory what-ifs cannot be evaluated from these profiles
    (``input_deserialize_s`` stays zero, and disk bytes are not broken
    out by phase).
    """
    stage_records = metrics.stage_records(job_id)
    if not stage_records:
        raise ModelError(f"no stages recorded for job {job_id}")
    profiles = []
    for stage_record in stage_records:
        usage = metrics.usage_for_stage(job_id, stage_record.stage_id)
        if not usage:
            raise ModelError(
                f"no Spark resource-usage records for job {job_id} stage "
                f"{stage_record.stage_id}")
        profile = StageProfile(
            job_id=job_id, stage_id=stage_record.stage_id,
            name=stage_record.name,
            measured_duration_s=stage_record.duration)
        for record in usage:
            profile.compute_s += record.cpu_s
            profile.disk_bytes["measured"] = (
                profile.disk_bytes.get("measured", 0.0)
                + record.disk_bytes_read + record.disk_bytes_written)
            profile.network_bytes += record.network_bytes
        profiles.append(profile)
    return profiles


# ---------------------------------------------------------------------------
# Fig 16: attributing resource use across concurrent jobs
# ---------------------------------------------------------------------------

@dataclass
class AttributionEstimate:
    """Resource use attributed to one stage of one job."""

    cpu_s: float = 0.0
    disk_bytes: float = 0.0
    network_bytes: float = 0.0

    def relative_errors(self, truth: "AttributionEstimate"
                        ) -> Dict[str, float]:
        """Per-resource relative error against ``truth``."""
        errors = {}
        for name in ("cpu_s", "disk_bytes", "network_bytes"):
            true_value = getattr(truth, name)
            if true_value <= 0:
                continue
            errors[name] = abs(getattr(self, name) - true_value) / true_value
        return errors


def true_stage_usage(metrics: MetricsCollector, job_id: int,
                     stage_id: int) -> AttributionEstimate:
    """Ground truth from per-task accounting (or monotask reports)."""
    estimate = AttributionEstimate()
    usage = metrics.usage_for_stage(job_id, stage_id)
    if usage:
        for record in usage:
            estimate.cpu_s += record.cpu_s
            estimate.disk_bytes += (record.disk_bytes_read
                                    + record.disk_bytes_written)
            estimate.network_bytes += record.network_bytes
        return estimate
    # MonoSpark: monotask self-reports are the (exact) measurement.
    for record in metrics.stage_monotasks(job_id, stage_id):
        if record.resource == "cpu":
            estimate.cpu_s += record.duration
        elif record.resource == "disk":
            estimate.disk_bytes += record.nbytes
        elif record.resource == "network":
            estimate.network_bytes += record.nbytes
    return estimate


def _overlap(start_a: float, end_a: float, start_b: float,
             end_b: float) -> float:
    return max(0.0, min(end_a, end_b) - max(start_a, start_b))


def slot_share_stage_usage(metrics: MetricsCollector, cluster: Cluster,
                           job_id: int,
                           stage_id: int) -> AttributionEstimate:
    """What a Spark user can estimate: machine totals scaled by the
    fraction of slot time the stage's tasks held (§6.6)."""
    window_start, window_end = metrics.stage_window(job_id, stage_id)
    estimate = AttributionEstimate()
    for machine in cluster.machines:
        machine_id = machine.machine_id
        stage_slot_s = 0.0
        total_slot_s = 0.0
        for task in metrics.tasks:
            if task.machine_id != machine_id:
                continue
            slot_s = _overlap(task.start, task.end, window_start, window_end)
            total_slot_s += slot_s
            if task.job_id == job_id and task.stage_id == stage_id:
                stage_slot_s += slot_s
        if total_slot_s <= 0 or stage_slot_s <= 0:
            continue
        share = stage_slot_s / total_slot_s
        cpu_s = machine.cpu.tracker.busy_time(window_start, window_end)
        disk_bytes = sum(
            nbytes
            for disk in machine.disks
            for (when, nbytes, _kind) in disk.transfer_log
            if window_start <= when <= window_end)
        network_bytes = sum(
            nbytes
            for (when, nbytes, dst, _src) in machine.network.completion_log
            if dst == machine_id and window_start <= when <= window_end)
        estimate.cpu_s += cpu_s * share
        estimate.disk_bytes += disk_bytes * share
        estimate.network_bytes += network_bytes * share
    return estimate


def attribution_errors(metrics: MetricsCollector, cluster: Cluster,
                       job_id: int) -> Dict[int, Dict[str, float]]:
    """Per-stage relative attribution errors for one job (Fig 16)."""
    errors: Dict[int, Dict[str, float]] = {}
    for stage_record in metrics.stage_records(job_id):
        truth = true_stage_usage(metrics, job_id, stage_record.stage_id)
        estimate = slot_share_stage_usage(metrics, cluster, job_id,
                                          stage_record.stage_id)
        errors[stage_record.stage_id] = estimate.relative_errors(truth)
    return errors
