"""The monotasks performance model (§6.1).

"Decomposing jobs into monotasks leads to a simple model for job
completion time": per stage,

* ideal CPU time   = sum of compute monotask seconds / total cores
* ideal disk time  = sum of bytes moved to/from disk / aggregate disk
  throughput
* ideal network time = sum of bytes received over the network /
  aggregate NIC bandwidth

and the ideal stage completion time is the maximum of the three -- the
time spent on the bottleneck resource.  A job is the sum of its stages.

:class:`StageProfile` holds the measured inputs (straight from monotask
self-reports); :class:`HardwareProfile` the cluster's capacities;
:func:`model_stage` combines them.  What-if questions (§6.2-§6.4) are
answered by editing one or both and re-evaluating -- see
:mod:`repro.model.predictor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import (CPU, DISK, NETWORK, PHASE_INPUT_READ)

__all__ = ["StageProfile", "HardwareProfile", "StageModel", "profile_job",
           "hardware_profile", "model_stage", "model_job_seconds"]

#: Model resources.
RESOURCES = (CPU, DISK, NETWORK)


@dataclass
class StageProfile:
    """Measured monotask totals for one stage."""

    job_id: int
    stage_id: int
    name: str
    measured_duration_s: float
    #: Total compute monotask seconds, split into phases.
    compute_s: float = 0.0
    deserialize_s: float = 0.0
    serialize_s: float = 0.0
    #: Deserialization attributable to reading *input* data (map stages);
    #: subtracted for the "input stored deserialized" what-if (§6.3).
    input_deserialize_s: float = 0.0
    #: Disk bytes by phase (input_read, shuffle_write, ...).
    disk_bytes: Dict[str, float] = field(default_factory=dict)
    network_bytes: float = 0.0

    @property
    def total_disk_bytes(self) -> float:
        """Bytes moved to or from disk, all phases."""
        return sum(self.disk_bytes.values())

    @property
    def reads_dfs_input(self) -> bool:
        """True for map stages that read DFS blocks."""
        return self.disk_bytes.get(PHASE_INPUT_READ, 0.0) > 0


@dataclass(frozen=True)
class HardwareProfile:
    """Aggregate cluster capacities the model divides by."""

    num_machines: int
    cores_per_machine: int
    disks_per_machine: int
    disk_throughput_bps: float  # per disk
    network_bps: float  # per machine, one direction

    @property
    def total_cores(self) -> int:
        """Cores across the cluster."""
        return self.num_machines * self.cores_per_machine

    @property
    def aggregate_disk_bps(self) -> float:
        """Sequential disk bandwidth across the cluster."""
        return (self.num_machines * self.disks_per_machine
                * self.disk_throughput_bps)

    @property
    def aggregate_network_bps(self) -> float:
        """One-direction NIC bandwidth across the cluster."""
        return self.num_machines * self.network_bps

    def scaled(self, machines: Optional[int] = None,
               disks_per_machine: Optional[int] = None,
               disk_throughput_bps: Optional[float] = None,
               network_bps: Optional[float] = None,
               cores_per_machine: Optional[int] = None) -> "HardwareProfile":
        """A copy with some capacities changed (the what-if hardware)."""
        return HardwareProfile(
            num_machines=machines or self.num_machines,
            cores_per_machine=cores_per_machine or self.cores_per_machine,
            disks_per_machine=(disks_per_machine
                               if disks_per_machine is not None
                               else self.disks_per_machine),
            disk_throughput_bps=(disk_throughput_bps
                                 if disk_throughput_bps is not None
                                 else self.disk_throughput_bps),
            network_bps=network_bps or self.network_bps)


@dataclass
class StageModel:
    """Ideal per-resource completion times for one stage."""

    ideal_cpu_s: float
    ideal_disk_s: float
    ideal_network_s: float

    @property
    def ideal_completion_s(self) -> float:
        """Time on the bottleneck resource (the stage model, §6.1)."""
        return max(self.ideal_cpu_s, self.ideal_disk_s, self.ideal_network_s)

    @property
    def bottleneck(self) -> str:
        """The resource with the longest ideal time."""
        times = {CPU: self.ideal_cpu_s, DISK: self.ideal_disk_s,
                 NETWORK: self.ideal_network_s}
        return max(times, key=times.get)

    def without(self, resource: str) -> float:
        """Ideal completion if ``resource`` were infinitely fast (§6.5)."""
        times = {CPU: self.ideal_cpu_s, DISK: self.ideal_disk_s,
                 NETWORK: self.ideal_network_s}
        if resource not in times:
            raise ModelError(f"unknown resource {resource!r}")
        del times[resource]
        return max(times.values())


def hardware_profile(cluster: Cluster) -> HardwareProfile:
    """Describe a simulated cluster for the model."""
    spec = cluster.spec
    return HardwareProfile(
        num_machines=cluster.num_machines,
        cores_per_machine=spec.cores,
        disks_per_machine=len(spec.disks),
        disk_throughput_bps=spec.disks[0].throughput_bps,
        network_bps=spec.network_bps)


def profile_job(metrics: MetricsCollector, job_id: int) -> List[StageProfile]:
    """Build per-stage profiles from a job's monotask self-reports."""
    stage_records = metrics.stage_records(job_id)
    if not stage_records:
        raise ModelError(f"no stages recorded for job {job_id}")
    profiles = []
    for stage_record in stage_records:
        profile = StageProfile(
            job_id=job_id, stage_id=stage_record.stage_id,
            name=stage_record.name,
            measured_duration_s=stage_record.duration)
        for record in metrics.stage_monotasks(job_id, stage_record.stage_id):
            if record.resource == CPU:
                profile.compute_s += record.duration
                profile.deserialize_s += record.deserialize_s
                profile.serialize_s += record.serialize_s
            elif record.resource == DISK:
                profile.disk_bytes[record.phase] = (
                    profile.disk_bytes.get(record.phase, 0.0) + record.nbytes)
            elif record.resource == NETWORK:
                profile.network_bytes += record.nbytes
        if profile.reads_dfs_input:
            # Map stages deserialize only their input, so all measured
            # deserialization time is input deserialization.
            profile.input_deserialize_s = profile.deserialize_s
        profiles.append(profile)
    if all(p.compute_s == 0 for p in profiles):
        raise ModelError(
            f"job {job_id} has no compute monotask records; was it run on "
            f"the MonoSpark engine?")
    return profiles


def model_stage(profile: StageProfile,
                hardware: HardwareProfile) -> StageModel:
    """The §6.1 model for one stage on the given hardware."""
    return StageModel(
        ideal_cpu_s=profile.compute_s / hardware.total_cores,
        ideal_disk_s=profile.total_disk_bytes / hardware.aggregate_disk_bps,
        ideal_network_s=(profile.network_bytes
                         / hardware.aggregate_network_bps))


def model_job_seconds(profiles: List[StageProfile],
                      hardware: HardwareProfile) -> float:
    """Modeled job completion time: sum of the stages' ideal times."""
    return sum(model_stage(profile, hardware).ideal_completion_s
               for profile in profiles)
