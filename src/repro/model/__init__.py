"""Performance models (§6): ideal times, what-ifs, bottlenecks, Spark models."""

from repro.model.bottleneck import BottleneckReport, analyze_bottlenecks
from repro.model.diagnosis import (DiagnosisReport, MachineHealth,
                                   diagnose_stragglers)
from repro.model.ideal import (HardwareProfile, StageModel, StageProfile,
                               hardware_profile, model_job_seconds,
                               model_stage, profile_job)
from repro.model.predictor import Prediction, WhatIf, predict
from repro.model.sparkmodel import (AttributionEstimate, attribution_errors,
                                    slot_model_prediction,
                                    slot_share_stage_usage,
                                    spark_stage_profiles, true_stage_usage)

__all__ = [
    "HardwareProfile",
    "StageModel",
    "StageProfile",
    "hardware_profile",
    "model_job_seconds",
    "model_stage",
    "profile_job",
    "Prediction",
    "WhatIf",
    "predict",
    "BottleneckReport",
    "analyze_bottlenecks",
    "DiagnosisReport",
    "MachineHealth",
    "diagnose_stragglers",
    "AttributionEstimate",
    "attribution_errors",
    "slot_model_prediction",
    "slot_share_stage_usage",
    "spark_stage_profiles",
    "true_stage_usage",
]
