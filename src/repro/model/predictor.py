"""What-if prediction (§6.2-§6.4).

A :class:`WhatIf` describes a hypothetical hardware and/or software
configuration; :func:`predict` evaluates the monotasks model under the
current and hypothetical configurations and scales the *measured*
runtime by the modeled ratio -- exactly the paper's procedure ("we scale
the job's original completion time by the predicted change in job
completion time based on the model", §6.2), which corrects for effects
the simple model ignores (imperfect parallelism, ramp-up periods).

Software what-ifs follow §6.3: storing input in-memory and deserialized
removes the input-read disk bytes and the input deserialization CPU
time, which is only measurable because compute monotasks report their
deserialization phase separately.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.errors import ModelError
from repro.metrics.events import PHASE_INPUT_READ
from repro.model.ideal import (HardwareProfile, StageModel, StageProfile,
                               model_stage)

__all__ = ["WhatIf", "Prediction", "predict"]


@dataclass(frozen=True)
class WhatIf:
    """A hypothetical configuration, relative to the measured one."""

    #: Replacement hardware (None = unchanged).
    hardware: Optional[HardwareProfile] = None
    #: Input stored in memory, already deserialized (§6.3).
    input_in_memory_deserialized: bool = False
    #: Scale factor on every stage's network bytes (e.g. reduced input
    #: locality after moving to a larger cluster sends more data remote).
    network_bytes_scale: float = 1.0

    def describe(self) -> str:
        """Human-readable summary of the hypothetical changes."""
        parts = []
        if self.hardware is not None:
            hw = self.hardware
            parts.append(f"{hw.num_machines} machines x "
                         f"{hw.disks_per_machine} disks @ "
                         f"{hw.disk_throughput_bps / 2**20:.0f} MB/s")
        if self.input_in_memory_deserialized:
            parts.append("input in-memory deserialized")
        if self.network_bytes_scale != 1.0:
            parts.append(f"network bytes x{self.network_bytes_scale:.2f}")
        return ", ".join(parts) or "unchanged"


@dataclass
class Prediction:
    """The model's answer to a what-if question."""

    measured_s: float
    modeled_old_s: float
    modeled_new_s: float
    stage_models_old: List[StageModel]
    stage_models_new: List[StageModel]

    @property
    def predicted_s(self) -> float:
        """Measured runtime scaled by the modeled change."""
        if self.modeled_old_s <= 0:
            raise ModelError("modeled baseline time is zero")
        return self.measured_s * (self.modeled_new_s / self.modeled_old_s)

    def error_vs(self, actual_s: float) -> float:
        """Relative prediction error against an actual runtime."""
        if actual_s <= 0:
            raise ModelError("actual runtime must be positive")
        return abs(self.predicted_s - actual_s) / actual_s


def _apply_software_changes(profile: StageProfile,
                            what_if: WhatIf) -> StageProfile:
    """A copy of ``profile`` with the software what-ifs applied."""
    disk_bytes = dict(profile.disk_bytes)
    compute_s = profile.compute_s
    if what_if.input_in_memory_deserialized and profile.reads_dfs_input:
        disk_bytes.pop(PHASE_INPUT_READ, None)
        compute_s -= profile.input_deserialize_s
    return replace(profile, compute_s=compute_s, disk_bytes=disk_bytes,
                   network_bytes=(profile.network_bytes
                                  * what_if.network_bytes_scale))


def predict(profiles: List[StageProfile], measured_s: float,
            current_hardware: HardwareProfile,
            what_if: WhatIf) -> Prediction:
    """Answer a what-if question for a job measured on MonoSpark."""
    if not profiles:
        raise ModelError("no stage profiles supplied")
    new_hardware = what_if.hardware or current_hardware
    old_models = [model_stage(profile, current_hardware)
                  for profile in profiles]
    new_profiles = [_apply_software_changes(profile, what_if)
                    for profile in profiles]
    new_models = [model_stage(profile, new_hardware)
                  for profile in new_profiles]
    return Prediction(
        measured_s=measured_s,
        modeled_old_s=sum(m.ideal_completion_s for m in old_models),
        modeled_new_s=sum(m.ideal_completion_s for m in new_models),
        stage_models_old=old_models,
        stage_models_new=new_models)
