"""Why did my workload run slowly? -- straggler/degradation diagnosis.

The paper's introduction motivates performance clarity with questions
like "Is hardware degradation leading to poor performance?  Is
performance affected by contention from other users?".  Monotask
self-reports answer them directly: every disk monotask reports bytes and
duration, so each machine's *effective* disk rate is observable; every
compute monotask reports its priced CPU seconds and its wall time, so a
slow core shows up as wall time exceeding priced time.

No extra instrumentation is required -- exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ModelError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import CPU, DISK
from repro.metrics.utilization import percentile

__all__ = ["MachineHealth", "DiagnosisReport", "diagnose_stragglers"]

#: Ignore tiny monotasks when estimating rates (latency-dominated).
MIN_DISK_BYTES = 1 * 1024 * 1024
MIN_COMPUTE_SECONDS = 0.05


@dataclass
class MachineHealth:
    """Observed hardware rates of one machine, from monotask reports."""

    machine_id: int
    #: Effective bytes/s over this machine's disk monotasks.
    disk_bps: Optional[float] = None
    #: Wall seconds per priced CPU second (1.0 = nominal; 2.0 = half
    #: speed).
    cpu_slowdown: Optional[float] = None
    disk_monotasks: int = 0
    compute_monotasks: int = 0


@dataclass
class DiagnosisReport:
    """Cluster-wide health summary plus flagged stragglers."""

    machines: Dict[int, MachineHealth]
    median_disk_bps: Optional[float]
    median_cpu_slowdown: Optional[float]
    #: Machines whose disk rate fell below the threshold of the median.
    slow_disks: List[int] = field(default_factory=list)
    #: Machines whose CPU slowdown exceeds the threshold over the median.
    slow_cpus: List[int] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when no machine was flagged."""
        return not self.slow_disks and not self.slow_cpus


def _machine_health(metrics: MetricsCollector, job_id: int,
                    machine_id: int) -> MachineHealth:
    health = MachineHealth(machine_id=machine_id)
    disk_bytes = 0.0
    disk_seconds = 0.0
    priced = 0.0
    walled = 0.0
    for record in metrics.stage_monotasks(job_id):
        if record.machine_id != machine_id:
            continue
        if record.resource == DISK and record.nbytes >= MIN_DISK_BYTES:
            disk_bytes += record.nbytes
            disk_seconds += record.duration
            health.disk_monotasks += 1
        elif record.resource == CPU:
            priced_seconds = (record.deserialize_s + record.op_s
                              + record.serialize_s)
            if priced_seconds >= MIN_COMPUTE_SECONDS:
                priced += priced_seconds
                walled += record.duration
                health.compute_monotasks += 1
    if disk_seconds > 0:
        health.disk_bps = disk_bytes / disk_seconds
    if priced > 0:
        health.cpu_slowdown = walled / priced
    return health


def diagnose_stragglers(metrics: MetricsCollector, job_id: int,
                        disk_threshold: float = 0.7,
                        cpu_threshold: float = 1.4) -> DiagnosisReport:
    """Flag machines whose observed rates deviate from the cluster.

    ``disk_threshold``: a machine is a slow-disk straggler when its
    effective disk rate is below ``threshold * median``.
    ``cpu_threshold``: a slow-CPU straggler when its wall/priced compute
    ratio exceeds ``threshold * median``.
    """
    if not 0 < disk_threshold <= 1.0:
        raise ModelError("disk threshold must be in (0, 1]")
    if cpu_threshold < 1.0:
        raise ModelError("cpu threshold must be >= 1")
    machine_ids = sorted({record.machine_id
                          for record in metrics.stage_monotasks(job_id)})
    if not machine_ids:
        raise ModelError(f"no monotask records for job {job_id}; "
                         "diagnosis requires a MonoSpark run")
    machines = {machine_id: _machine_health(metrics, job_id, machine_id)
                for machine_id in machine_ids}

    disk_rates = [h.disk_bps for h in machines.values()
                  if h.disk_bps is not None]
    cpu_rates = [h.cpu_slowdown for h in machines.values()
                 if h.cpu_slowdown is not None]
    median_disk = percentile(disk_rates, 50) if disk_rates else None
    median_cpu = percentile(cpu_rates, 50) if cpu_rates else None

    report = DiagnosisReport(machines=machines,
                             median_disk_bps=median_disk,
                             median_cpu_slowdown=median_cpu)
    for machine_id, health in machines.items():
        if (median_disk and health.disk_bps is not None
                and health.disk_bps < disk_threshold * median_disk):
            report.slow_disks.append(machine_id)
        if (median_cpu and health.cpu_slowdown is not None
                and health.cpu_slowdown > cpu_threshold * median_cpu):
            report.slow_cpus.append(machine_id)
    return report
