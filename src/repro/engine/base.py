"""Engine-independent execution machinery.

Both engines share: the job driver (stages launch when their parents
finish), the locality-aware task pool, input resolution against the DFS /
shuffle registry / block manager, and result assembly.  Subclasses
implement two things only: how many multitasks to assign concurrently to
each machine (§3.4) and how one task actually uses the hardware -- which
is precisely the axis the paper varies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.api.plan import (CachedInput, CollectOutput, DfsInput, DfsOutput,
                            JobPlan, LocalInput, ShuffleInput, ShuffleOutput,
                            Stage, TaskDescriptor)
from repro.cluster.blockmanager import BlockManager
from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.config import CostModel
from repro.datamodel.records import Partition
from repro.datamodel.serialization import DESERIALIZED
from repro.datamodel.shuffle import MapOutputRegistry
from repro.engine.semantics import ResolvedInput, TaskWork, compute_task_work
from repro.errors import ExecutionError
from repro.metrics.collector import MetricsCollector
from repro.simulator import Environment, Event

__all__ = ["JobResult", "TaskPool", "BaseEngine"]


class JobResult:
    """What an action returns: timing plus any collected data."""

    def __init__(self, job_id: int, name: str, start: float,
                 end: float) -> None:
        self.job_id = job_id
        self.name = name
        self.start = start
        self.end = end
        #: Records per final-stage task (CollectOutput only).
        self.collected: Optional[List[List[Any]]] = None
        #: Modeled record count (CollectOutput(count_only=True)).
        self.count: Optional[float] = None

    @property
    def duration(self) -> float:
        """Job wall-clock seconds."""
        return self.end - self.start

    def all_records(self) -> List[Any]:
        """All collected records, in task-index order."""
        if self.collected is None:
            raise ExecutionError("job did not collect records")
        records: List[Any] = []
        for task_records in self.collected:
            records.extend(task_records)
        return records


class TaskPool:
    """Assigns pending tasks to per-machine execution slots.

    ``concurrency[machine_id]`` tasks run concurrently on each machine.
    A central dispatcher (standing in for the job scheduler's driver)
    assigns pending tasks in FIFO order, placing each on the free
    machine it prefers (data locality) when possible and otherwise on
    the free machine with the most idle slots.  Spark would wait out a
    locality delay before running a task remotely; immediate remote
    placement approximates the expired-delay case and keeps both
    engines' placement identical.
    """

    def __init__(self, env: Environment, machines: List[Machine],
                 concurrency: Dict[int, int],
                 run_task: Callable[[TaskDescriptor, Machine], Generator],
                 policy: str = "fifo") -> None:
        if policy not in ("fifo", "fair"):
            raise ExecutionError(f"unknown scheduling policy: {policy!r}")
        self.env = env
        self.machines = {m.machine_id: m for m in machines}
        self.run_task = run_task
        #: "fifo" serves pending tasks in submission order; "fair"
        #: round-robins across jobs (the §8 "share machines between
        #: different users" policy).
        self.policy = policy
        self.pending: Deque[TaskDescriptor] = deque()
        self.free_slots: Dict[int, int] = dict(concurrency)
        self._done: Dict[str, Event] = {}
        self._last_job_served: Optional[int] = None

    def submit(self, descriptor: TaskDescriptor) -> Event:
        """Queue a task; the event fires when it completes."""
        done = self.env.event()
        self._done[descriptor.task_id] = done
        self.pending.append(descriptor)
        self._dispatch()
        return done

    def _next_pending(self) -> Optional[TaskDescriptor]:
        """The task to place next, honoring the scheduling policy."""
        if not self.pending:
            return None
        if self.policy == "fifo":
            return self.pending[0]
        # Fair: prefer the next job after the one served last.
        job_ids = sorted({task.job_id for task in self.pending})
        if self._last_job_served in job_ids:
            start = job_ids.index(self._last_job_served) + 1
        else:
            start = 0
        target = job_ids[start % len(job_ids)]
        for task in self.pending:
            if task.job_id == target:
                return task
        return self.pending[0]

    def _choose_machine(self, task: TaskDescriptor) -> Optional[int]:
        """Freest preferred machine, else the freest machine overall."""
        preferred = [m for m in task.preferred_machines
                     if self.free_slots.get(m, 0) > 0]
        if preferred:
            return max(preferred, key=lambda m: (self.free_slots[m], -m))
        candidates = [m for m, free in self.free_slots.items() if free > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda m: (self.free_slots[m], -m))

    def _dispatch(self) -> None:
        # Place tasks until the next candidate is unplaceable, so the
        # policy's ordering is respected (like a driver's task queue).
        while self.pending:
            task = self._next_pending()
            machine_id = self._choose_machine(task)
            if machine_id is None:
                return
            self.pending.remove(task)
            self._last_job_served = task.job_id
            self.free_slots[machine_id] -= 1
            self.env.process(self._run(task, self.machines[machine_id]))

    def _run(self, task: TaskDescriptor, machine: Machine) -> Generator:
        try:
            yield self.env.process(self.run_task(task, machine))
        finally:
            self.free_slots[machine.machine_id] += 1
        self._done.pop(task.task_id).succeed()
        self._dispatch()


class BaseEngine:
    """Shared driver: subclasses provide task execution and concurrency."""

    name = "base"

    def __init__(self, cluster: Cluster,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsCollector] = None,
                 scheduling_policy: str = "fifo") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.cost = cost_model or CostModel()
        self.metrics = metrics or MetricsCollector()
        self.block_manager = BlockManager(cluster)
        self.map_outputs = MapOutputRegistry()
        #: (job_id, stage_id, task_index) -> collected records / count.
        self._task_outputs: Dict[Tuple[int, int, int], Any] = {}
        #: job_id -> [(machine_id, bytes)] of in-memory shuffle data,
        #: released when the job completes (shuffles are intra-job).
        self._in_memory_shuffle: Dict[int, List[Tuple[int, float]]] = {}
        self.pool = TaskPool(
            self.env, cluster.machines,
            {m.machine_id: self.concurrency_for(m) for m in cluster.machines},
            self._execute_task, policy=scheduling_policy)

    # -- subclass hooks ------------------------------------------------------------

    def concurrency_for(self, machine: Machine) -> int:
        """How many multitasks to assign concurrently to a machine (§3.4)."""
        raise NotImplementedError

    def run_task_on_machine(self, work: TaskWork,
                            machine: Machine) -> Generator:
        """Drive one task's resource use; must yield simulation events."""
        raise NotImplementedError

    # -- public API ---------------------------------------------------------------

    def run_job(self, plan: JobPlan) -> JobResult:
        """Run one job to completion."""
        return self.run_jobs([plan])[0]

    def run_jobs(self, plans: List[JobPlan]) -> List[JobResult]:
        """Run jobs concurrently; returns once all complete."""
        results: Dict[int, JobResult] = {}
        drivers = [self.env.process(self._job_driver(plan, results))
                   for plan in plans]
        self.env.run(until=self.env.all_of(drivers))
        return [results[plan.job_id] for plan in plans]

    # -- job driving ---------------------------------------------------------------

    def _job_driver(self, plan: JobPlan,
                    results: Dict[int, JobResult]) -> Generator:
        self.metrics.job_started(plan.job_id, plan.name, self.env.now)
        start = self.env.now
        self._prepare_outputs(plan)
        stage_done: Dict[int, Event] = {
            stage.stage_id: self.env.event() for stage in plan.stages}
        for stage in plan.stages:
            self.env.process(self._stage_runner(plan, stage, stage_done))
        yield self.env.all_of(list(stage_done.values()))
        self._release_in_memory_shuffle(plan.job_id)
        self.metrics.job_finished(plan.job_id, self.env.now)
        results[plan.job_id] = self._assemble_result(plan, start)
        return results[plan.job_id]

    def note_in_memory_shuffle(self, job_id: int, machine: Machine,
                               nbytes: float) -> None:
        """Account shuffle data held in worker memory until job end."""
        machine.memory.acquire(nbytes)
        self._in_memory_shuffle.setdefault(job_id, []).append(
            (machine.machine_id, nbytes))

    def _release_in_memory_shuffle(self, job_id: int) -> None:
        for machine_id, nbytes in self._in_memory_shuffle.pop(job_id, []):
            self.cluster.machine(machine_id).memory.release(nbytes)

    def _prepare_outputs(self, plan: JobPlan) -> None:
        for stage in plan.stages:
            for task in stage.tasks:
                output = task.output
                if isinstance(output, ShuffleOutput):
                    self.map_outputs.expect_maps(output.shuffle_id,
                                                 stage.num_tasks)
                    break  # Same output spec for every task in the stage.
                if isinstance(output, DfsOutput):
                    if not self.cluster.dfs.exists(output.file_name):
                        self.cluster.dfs.open_output_file(output.file_name)
                    break
                break

    def _stage_runner(self, plan: JobPlan, stage: Stage,
                      stage_done: Dict[int, Event]) -> Generator:
        if stage.parent_stage_ids:
            yield self.env.all_of(
                [stage_done[parent] for parent in stage.parent_stage_ids])
        self.metrics.stage_started(plan.job_id, stage.stage_id, stage.name,
                                   stage.num_tasks, self.env.now)
        task_events = [self.pool.submit(task) for task in stage.tasks]
        if task_events:
            yield self.env.all_of(task_events)
        self.metrics.stage_finished(plan.job_id, stage.stage_id, self.env.now)
        stage_done[stage.stage_id].succeed()

    # -- task execution wrapper -----------------------------------------------------

    def _execute_task(self, descriptor: TaskDescriptor,
                      machine: Machine) -> Generator:
        inputs = self._resolve_inputs(descriptor, machine)
        work = compute_task_work(descriptor, inputs, self.cost)
        record = self.metrics.task_started(
            descriptor.job_id, descriptor.stage_id, descriptor.index,
            machine.machine_id, self.env.now)
        yield self.env.process(self.run_task_on_machine(work, machine))
        record.end = self.env.now
        self._finalize_task(work, machine)

    def _finalize_task(self, work: TaskWork, machine: Machine) -> None:
        descriptor = work.descriptor
        output = descriptor.output
        if isinstance(output, CollectOutput):
            key = (descriptor.job_id, descriptor.stage_id, descriptor.index)
            if output.count_only:
                self._task_outputs[key] = work.output_partition.record_count
            else:
                self._task_outputs[key] = list(work.output_partition.records)
        if descriptor.cache is not None and work.cache_partition is not None:
            self.block_manager.put(
                descriptor.cache.rdd_id, descriptor.index,
                machine.machine_id, work.cache_partition,
                descriptor.cache.fmt)

    # -- input resolution -------------------------------------------------------------

    def _resolve_inputs(self, descriptor: TaskDescriptor,
                        machine: Machine) -> List[ResolvedInput]:
        spec = descriptor.input
        if isinstance(spec, DfsInput):
            return [self._resolve_dfs_input(spec, machine)]
        if isinstance(spec, LocalInput):
            return [ResolvedInput(partition=spec.partition, stored_bytes=0.0,
                                  fmt=DESERIALIZED, machine_id=None,
                                  in_memory=True)]
        if isinstance(spec, CachedInput):
            location, partition, fmt = self.block_manager.get(
                spec.rdd_id, spec.partition_index)
            return [ResolvedInput(partition=partition,
                                  stored_bytes=partition.data_bytes,
                                  fmt=fmt, machine_id=location,
                                  in_memory=True)]
        if isinstance(spec, ShuffleInput):
            resolved = []
            for dep in spec.deps:
                for bucket in self.map_outputs.buckets_for_reduce(
                        dep.shuffle_id, spec.reduce_index):
                    resolved.append(ResolvedInput(
                        partition=bucket.partition,
                        stored_bytes=dep.fmt.stored_bytes(bucket.nbytes),
                        fmt=dep.fmt,
                        machine_id=bucket.machine_id,
                        disk_index=bucket.disk_index,
                        in_memory=bucket.in_memory,
                        map_index=bucket.map_index,
                        tag_side=dep.side if spec.tagged else None,
                        block_id=bucket.block_id))
            return resolved
        raise ExecutionError(f"unknown input spec: {spec!r}")

    def _resolve_dfs_input(self, spec: DfsInput,
                           machine: Machine) -> ResolvedInput:
        block = spec.block
        payload = block.payload
        if not isinstance(payload, Partition):
            raise ExecutionError(
                f"DFS block {block.block_id} has no partition payload")
        if machine.machine_id in block.machines():
            location = machine.machine_id
            disk_index = block.disk_on(machine.machine_id)
        else:
            # Remote read from the first replica.
            location, disk_index = block.replicas[0]
        return ResolvedInput(partition=payload, stored_bytes=block.nbytes,
                             fmt=spec.fmt, machine_id=location,
                             disk_index=disk_index)

    # -- output registration helpers (used by subclasses) -------------------------------

    def register_shuffle_output(self, work: TaskWork, machine: Machine,
                                disk_index: Optional[int]) -> None:
        """Publish a map task's shuffle buckets to the registry."""
        output = work.descriptor.output
        if not isinstance(output, ShuffleOutput):
            raise ExecutionError("task has no shuffle output")
        self.map_outputs.register_map_output(
            output.shuffle_id, work.descriptor.index, machine.machine_id,
            disk_index, work.shuffle_buckets or {})

    def register_dfs_output(self, work: TaskWork, machine: Machine,
                            disk_index: int) -> None:
        """Append a task's output block to its DFS file."""
        output = work.descriptor.output
        if not isinstance(output, DfsOutput):
            raise ExecutionError("task has no DFS output")
        self.cluster.dfs.append_output_block(
            output.file_name, work.output_stored_bytes, machine.machine_id,
            disk_index,
            payload=work.output_partition if output.keep_payload else None)

    # -- result assembly -----------------------------------------------------------------

    def _assemble_result(self, plan: JobPlan, start: float) -> JobResult:
        result = JobResult(plan.job_id, plan.name, start, self.env.now)
        final = plan.final_stage
        sample = final.tasks[0].output if final.tasks else None
        if isinstance(sample, CollectOutput):
            outputs = [
                self._task_outputs.pop(
                    (plan.job_id, final.stage_id, task.index))
                for task in final.tasks
            ]
            if sample.count_only:
                result.count = float(sum(outputs))
            else:
                result.collected = outputs
        return result
