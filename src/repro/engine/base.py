"""Engine-independent execution machinery.

Both engines share: the job driver (stages launch when their parents
finish), the locality-aware task pool, input resolution against the DFS /
shuffle registry / block manager, and result assembly.  Subclasses
implement two things only: how many multitasks to assign concurrently to
each machine (§3.4) and how one task actually uses the hardware -- which
is precisely the axis the paper varies.

Fault recovery is also shared: the :class:`TaskPool` tracks *attempts*
(retry with bounded exponential backoff, speculation, first finisher
wins), and :class:`BaseEngine` provides the crash/restart entry points
(:meth:`BaseEngine.crash_machine`) plus lineage-based re-execution of
lost map output.  Behavior is controlled by a
:class:`~repro.faults.policy.RecoveryPolicy`; with the default policy
and no injected faults, execution is identical to a recovery-free run.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import (Any, Callable, Deque, Dict, FrozenSet, Generator,
                    Iterator, List, Optional, Set, Tuple)

from repro.api.plan import (CachedInput, CollectOutput, DfsInput, DfsOutput,
                            JobPlan, LocalInput, ShuffleInput, ShuffleOutput,
                            Stage, TaskDescriptor)
from repro.cluster.blockmanager import BlockManager
from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.config import CostModel
from repro.datamodel.records import Partition
from repro.datamodel.serialization import DESERIALIZED
from repro.datamodel.shuffle import MapOutputRegistry
from repro.engine.semantics import ResolvedInput, TaskWork, compute_task_work
from repro.errors import (ExecutionError, FaultError, FetchFailed,
                          Interrupted, LinkPartitionError, ReproError,
                          SimulationError, TaskFailedError)
from repro.faults.policy import RecoveryPolicy
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import SpeculationRecord, TaskAttemptRecord
from repro.simulator import Environment, Event, Process
from repro.trace.spans import TraceContext
from repro.trace.telemetry import TelemetryRegistry

__all__ = ["JobResult", "TaskPool", "BaseEngine"]


class JobResult:
    """What an action returns: timing plus any collected data."""

    def __init__(self, job_id: int, name: str, start: float,
                 end: float) -> None:
        self.job_id = job_id
        self.name = name
        self.start = start
        self.end = end
        #: Records per final-stage task (CollectOutput only).
        self.collected: Optional[List[List[Any]]] = None
        #: Modeled record count (CollectOutput(count_only=True)).
        self.count: Optional[float] = None

    @property
    def duration(self) -> float:
        """Job wall-clock seconds."""
        return self.end - self.start

    def all_records(self) -> List[Any]:
        """All collected records, in task-index order."""
        if self.collected is None:
            raise ExecutionError("job did not collect records")
        records: List[Any] = []
        for task_records in self.collected:
            records.extend(task_records)
        return records


class _Attempt:
    """One try at running a task on one machine."""

    __slots__ = ("state", "number", "speculative", "avoid", "process",
                 "machine_id", "started_at", "trace", "cause")

    def __init__(self, state: "_TaskState", number: int,
                 speculative: bool = False,
                 avoid: FrozenSet[int] = frozenset(),
                 cause: str = "") -> None:
        self.state = state
        self.number = number
        self.speculative = speculative
        #: Machines this attempt should not be placed on (speculative
        #: copies avoid the straggler's machine).
        self.avoid = avoid
        self.process: Optional[Process] = None
        self.machine_id: Optional[int] = None
        self.started_at: float = 0.0
        #: Span context opened at dispatch; monotasks parent under it.
        self.trace: Optional[TraceContext] = None
        #: Why this attempt exists ("" for a task's first attempt;
        #: "straggler" / "health-redispatch" for speculative copies).
        self.cause = cause


class _TaskState:
    """A task's retry/speculation bookkeeping across attempts."""

    __slots__ = ("descriptor", "done", "failures", "fetch_failures",
                 "active", "finished", "committed", "speculated",
                 "completed_duration", "next_attempt")

    def __init__(self, descriptor: TaskDescriptor, done: Event) -> None:
        self.descriptor = descriptor
        self.done = done
        self.failures = 0
        self.fetch_failures = 0
        #: attempt number -> running _Attempt.
        self.active: Dict[int, _Attempt] = {}
        self.finished = False
        self.committed = False
        self.speculated = False
        self.completed_duration: Optional[float] = None
        self.next_attempt = 1


class TaskPool:
    """Assigns pending task attempts to per-machine execution slots.

    ``concurrency[machine_id]`` tasks run concurrently on each machine.
    A central dispatcher (standing in for the job scheduler's driver)
    assigns pending attempts in FIFO order, placing each on the free
    machine it prefers (data locality) when possible and otherwise on
    the free machine with the most idle slots.  Spark would wait out a
    locality delay before running a task remotely; immediate remote
    placement approximates the expired-delay case and keeps both
    engines' placement identical.

    Failure handling follows the ``recovery`` policy: attempts that
    raise retry with exponential backoff until ``max_attempts``;
    attempts killed by a crash or a lost speculation race requeue for
    free; fetch failures run the ``on_fetch_failed`` recovery hook
    (lineage re-execution) before retrying.  The first attempt to
    finish wins -- it claims the commit via :meth:`try_claim_commit`
    and any other live attempt of the task is interrupted.
    """

    def __init__(self, env: Environment, machines: List[Machine],
                 concurrency: Dict[int, int],
                 run_task: Callable[[TaskDescriptor, Machine], Generator],
                 policy: str = "fifo",
                 recovery: Optional[RecoveryPolicy] = None,
                 metrics: Optional[MetricsCollector] = None,
                 on_fetch_failed: Optional[
                     Callable[[FetchFailed], Generator]] = None) -> None:
        if policy not in ("fifo", "fair"):
            raise ExecutionError(f"unknown scheduling policy: {policy!r}")
        self.env = env
        self.machines = {m.machine_id: m for m in machines}
        self.run_task = run_task
        # Engines take a `trace` kwarg so monotasks can parent under the
        # attempt's span; plain 2-arg callables (tests, ad-hoc pools)
        # keep working without it.
        try:
            self._run_task_takes_trace = (
                "trace" in inspect.signature(run_task).parameters)
        except (TypeError, ValueError):
            self._run_task_takes_trace = False
        #: "fifo" serves pending tasks in submission order; "fair"
        #: round-robins across jobs (the §8 "share machines between
        #: different users" policy).
        self.policy = policy
        self.recovery = recovery or RecoveryPolicy()
        self.metrics = metrics
        #: Generator called with a FetchFailed before the retry; used by
        #: the engine to re-execute the lineage of lost map output.
        self.on_fetch_failed = on_fetch_failed
        self.pending: Deque[_Attempt] = deque()
        self.free_slots: Dict[int, int] = dict(concurrency)
        self._concurrency: Dict[int, int] = dict(concurrency)
        self._states: Dict[str, _TaskState] = {}
        self._dead: Set[int] = set()
        #: Health-excluded machines: alive but not schedulable.
        self._excluded: Set[int] = set()
        #: machine -> probe-slot cap while on probation.
        self._probation_caps: Dict[int, int] = {}
        self._last_job_served: Optional[int] = None

    def submit(self, descriptor: TaskDescriptor) -> Event:
        """Queue a task; the event fires when it completes."""
        done = self.env.event()
        state = _TaskState(descriptor, done)
        self._states[descriptor.task_id] = state
        self._requeue(state)
        self._dispatch()
        return done

    # -- fault-recovery API --------------------------------------------------------

    def try_claim_commit(self, task_id: str) -> bool:
        """First-finisher-wins: True exactly once per task.

        An attempt must claim the commit before publishing its outputs,
        so a speculation loser (or an attempt that survived past a
        crash) cannot register a second copy.
        """
        state = self._states.get(task_id)
        if state is None or state.committed or state.finished:
            return False
        state.committed = True
        return True

    def resubmit(self, descriptor: TaskDescriptor) -> Event:
        """Re-execute a completed task (lineage recovery).

        If the task is already pending or running again, returns the
        existing completion event instead of queueing a duplicate.
        """
        state = self._states.get(descriptor.task_id)
        if state is not None and not state.done.triggered:
            return state.done
        done = self.env.event()
        state = _TaskState(descriptor, done)
        self._states[descriptor.task_id] = state
        self._requeue(state)
        self._dispatch()
        return done

    def set_machine_dead(self, machine_id: int) -> None:
        """Stop placing work on a machine and kill its running attempts."""
        self._dead.add(machine_id)
        for state in self._states.values():
            for attempt in list(state.active.values()):
                if attempt.machine_id != machine_id:
                    continue
                process = attempt.process
                if process is not None and process.is_alive \
                        and process.target is not None:
                    process.interrupt(cause="machine-crash")

    def set_machine_alive(self, machine_id: int) -> None:
        """A machine restarted: resume placing work on it."""
        self._dead.discard(machine_id)
        self._dispatch()

    def set_machine_excluded(self, machine_id: int) -> None:
        """Health exclusion: stop placing new work on a machine.

        Unlike :meth:`set_machine_dead` nothing is killed -- the machine
        is slow, not gone, so in-flight attempts may still finish (and
        :meth:`redispatch_from` races duplicates against them).
        """
        self._excluded.add(machine_id)
        self._probation_caps.pop(machine_id, None)

    def set_machine_probation(self, machine_id: int, slots: int) -> None:
        """Allow at most ``slots`` concurrent probe attempts on a
        previously excluded machine."""
        self._excluded.discard(machine_id)
        self._probation_caps[machine_id] = max(1, slots)
        self._dispatch()

    def set_machine_schedulable(self, machine_id: int) -> None:
        """Fully reinstate a machine after probation."""
        self._excluded.discard(machine_id)
        self._probation_caps.pop(machine_id, None)
        self._dispatch()

    def redispatch_from(self, machine_id: int) -> int:
        """Speculatively duplicate in-flight work away from a machine.

        Used when health monitoring excludes a fail-slow machine: its
        running attempts are not killed (they might still win), but each
        gets a duplicate elsewhere via the normal speculation path.
        Returns the number of duplicates launched.
        """
        launched = 0
        for task_id, state in list(self._states.items()):
            if state.finished or state.speculated:
                continue
            if len(state.active) != 1:
                continue
            attempt = next(iter(state.active.values()))
            if attempt.machine_id != machine_id:
                continue
            if self.speculate(task_id, cause="health-redispatch"):
                launched += 1
        return launched

    def speculate(self, task_id: str, cause: str = "straggler") -> bool:
        """Launch a duplicate attempt of a straggling task.

        Refused (returns False) unless the task has exactly one running
        attempt, no pending attempt, and has not been speculated before.
        The duplicate avoids the straggler's machine; whichever attempt
        finishes first wins and the other is interrupted.
        """
        state = self._states.get(task_id)
        if state is None or state.finished or state.speculated:
            return False
        if len(state.active) != 1:
            return False
        if any(attempt.state is state for attempt in self.pending):
            return False
        original = next(iter(state.active.values()))
        if original.machine_id is None:
            return False
        state.speculated = True
        attempt = _Attempt(state, state.next_attempt, speculative=True,
                           avoid=frozenset({original.machine_id}),
                           cause=cause)
        state.next_attempt += 1
        self.pending.append(attempt)
        if self.metrics is not None:
            descriptor = state.descriptor
            self.metrics.record_speculation(SpeculationRecord(
                job_id=descriptor.job_id, stage_id=descriptor.stage_id,
                task_index=descriptor.index, at=self.env.now,
                original_machine_id=original.machine_id))
        self._dispatch()
        return True

    def stage_progress(self, job_id: int, stage_id: int
                       ) -> Tuple[List[float], List[Tuple[str, float]]]:
        """(completed durations, running (task_id, started_at)) of a stage."""
        completed: List[float] = []
        running: List[Tuple[str, float]] = []
        for state in self._states.values():
            descriptor = state.descriptor
            if descriptor.job_id != job_id or \
                    descriptor.stage_id != stage_id:
                continue
            if state.finished and state.completed_duration is not None:
                completed.append(state.completed_duration)
            else:
                for attempt in state.active.values():
                    running.append((descriptor.task_id, attempt.started_at))
        return completed, running

    # -- scheduling ----------------------------------------------------------------

    def _requeue(self, state: _TaskState, speculative: bool = False,
                 avoid: FrozenSet[int] = frozenset()) -> _Attempt:
        attempt = _Attempt(state, state.next_attempt, speculative, avoid)
        state.next_attempt += 1
        self.pending.append(attempt)
        return attempt

    def _next_pending(self) -> Optional[_Attempt]:
        """The attempt to place next, honoring the scheduling policy."""
        if not self.pending:
            return None
        if self.policy == "fifo":
            return self.pending[0]
        # Fair: prefer the next job after the one served last.
        job_ids = sorted({a.state.descriptor.job_id for a in self.pending})
        if self._last_job_served in job_ids:
            start = job_ids.index(self._last_job_served) + 1
        else:
            start = 0
        target = job_ids[start % len(job_ids)]
        for attempt in self.pending:
            if attempt.state.descriptor.job_id == target:
                return attempt
        return self.pending[0]

    def _usable(self, machine_id: int, attempt: _Attempt) -> bool:
        if (machine_id in self._dead or machine_id in self._excluded
                or machine_id in attempt.avoid
                or self.free_slots.get(machine_id, 0) <= 0):
            return False
        cap = self._probation_caps.get(machine_id)
        if cap is not None:
            in_flight = (self._concurrency[machine_id]
                         - self.free_slots[machine_id])
            if in_flight >= cap:
                return False
        return True

    def _choose_machine(self, attempt: _Attempt) -> Optional[int]:
        """Freest preferred machine, else the freest machine overall."""
        task = attempt.state.descriptor
        preferred = [m for m in task.preferred_machines
                     if self._usable(m, attempt)]
        if preferred:
            return max(preferred, key=lambda m: (self.free_slots[m], -m))
        candidates = [m for m in self.free_slots
                      if self._usable(m, attempt)]
        if not candidates:
            return None
        return max(candidates, key=lambda m: (self.free_slots[m], -m))

    def _dispatch(self) -> None:
        # Place attempts until the next candidate is unplaceable, so the
        # policy's ordering is respected (like a driver's task queue).
        while self.pending:
            attempt = self._next_pending()
            machine_id = self._choose_machine(attempt)
            if machine_id is None:
                return
            self.pending.remove(attempt)
            state = attempt.state
            self._last_job_served = state.descriptor.job_id
            self.free_slots[machine_id] -= 1
            attempt.machine_id = machine_id
            attempt.started_at = self.env.now
            if self.metrics is not None:
                descriptor = state.descriptor
                attempt.trace = self.metrics.attempt_started(
                    descriptor.job_id, descriptor.stage_id, descriptor.index,
                    attempt.number, machine_id, self.env.now,
                    speculative=attempt.speculative, cause=attempt.cause)
            state.active[attempt.number] = attempt
            attempt.process = self.env.process(
                self._run(attempt, self.machines[machine_id]))

    # -- attempt lifecycle ---------------------------------------------------------

    def _run(self, attempt: _Attempt, machine: Machine) -> Generator:
        state = attempt.state
        outcome = "success"
        error: Optional[BaseException] = None
        try:
            # The machine may have crashed between dispatch and startup.
            if machine.machine_id in self._dead:
                raise Interrupted("machine-crash")
            # Run the task body *inline* (not as a child process) so an
            # interrupt lands in the frame doing the work and unwinds
            # its finally blocks before any commit can happen.
            if self._run_task_takes_trace:
                yield from self.run_task(state.descriptor, machine,
                                         trace=attempt.trace)
            else:
                yield from self.run_task(state.descriptor, machine)
        except FetchFailed as exc:
            outcome, error = "fetch-failed", exc
        except Interrupted as exc:
            outcome, error = "killed", exc
        except ReproError as exc:
            outcome, error = "failed", exc
        finally:
            # Anything else propagates and fails the run loudly.
            self.free_slots[machine.machine_id] += 1
            state.active.pop(attempt.number, None)
        self._record_attempt(attempt, outcome, error)
        if outcome == "success":
            if not state.finished:
                state.finished = True
                state.completed_duration = self.env.now - attempt.started_at
                for loser in list(state.active.values()):
                    process = loser.process
                    if process is not None and process.is_alive \
                            and process.target is not None:
                        process.interrupt(cause="speculation-lost")
                state.done.succeed()
        else:
            self._handle_failure(state, attempt, outcome, error)
        self._dispatch()

    def _record_attempt(self, attempt: _Attempt, outcome: str,
                        error: Optional[BaseException]) -> None:
        if self.metrics is None:
            return
        if error is None:
            detail = ""
        elif isinstance(error, Interrupted):
            detail = str(error.cause) if error.cause is not None \
                else "interrupted"
        else:
            detail = type(error).__name__
        descriptor = attempt.state.descriptor
        self.metrics.record_task_attempt(TaskAttemptRecord(
            job_id=descriptor.job_id, stage_id=descriptor.stage_id,
            task_index=descriptor.index, attempt=attempt.number,
            machine_id=attempt.machine_id
            if attempt.machine_id is not None else -1,
            start=attempt.started_at, end=self.env.now, outcome=outcome,
            speculative=attempt.speculative, detail=detail))
        if attempt.trace is not None:
            self.metrics.attempt_finished(attempt.trace, self.env.now,
                                          outcome, detail)

    def _handle_failure(self, state: _TaskState, attempt: _Attempt,
                        outcome: str,
                        error: Optional[BaseException]) -> None:
        if state.finished or state.done.triggered:
            return
        if state.active:
            return  # Another attempt of the task is still running.
        task_id = state.descriptor.task_id
        if outcome == "killed":
            # Crash/speculation kills are nobody's fault: retry now,
            # without burning an attempt.
            self._requeue(state)
            return
        if outcome == "fetch-failed" and self.on_fetch_failed is not None:
            state.fetch_failures += 1
            if state.fetch_failures > self.recovery.max_fetch_retries:
                state.done.fail(TaskFailedError(
                    f"task {task_id}: shuffle input still missing after "
                    f"{self.recovery.max_fetch_retries} recoveries"))
                return
            self.env.process(self._recover_and_requeue(state, error))
            return
        state.failures += 1
        if state.failures >= self.recovery.max_attempts:
            state.done.fail(TaskFailedError(
                f"task {task_id} failed after {state.failures} "
                f"attempts: {error}"))
            return
        # A partitioned fetch would fail identically on the same
        # destination; retry the task on a different machine.
        avoid: FrozenSet[int] = frozenset()
        if isinstance(error, LinkPartitionError) \
                and attempt.machine_id is not None \
                and len(self.machines) > 1:
            avoid = frozenset({attempt.machine_id})
        self.env.process(self._backoff_and_requeue(state, avoid))

    def _backoff_and_requeue(self, state: _TaskState,
                             avoid: FrozenSet[int] = frozenset()
                             ) -> Generator:
        yield self.env.timeout(self.recovery.backoff_s(state.failures))
        if state.done.triggered:
            return
        self._requeue(state, avoid=avoid)
        self._dispatch()

    def _recover_and_requeue(self, state: _TaskState,
                             error: FetchFailed) -> Generator:
        yield from self.on_fetch_failed(error)
        if state.done.triggered:
            return
        self._requeue(state)
        self._dispatch()


class BaseEngine:
    """Shared driver: subclasses provide task execution and concurrency."""

    name = "base"

    def __init__(self, cluster: Cluster,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsCollector] = None,
                 scheduling_policy: str = "fifo",
                 recovery: Optional[RecoveryPolicy] = None,
                 datasvc=None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.cost = cost_model or CostModel()
        self.metrics = metrics or MetricsCollector()
        self.recovery = recovery or RecoveryPolicy()
        self.block_manager = BlockManager(cluster)
        self.block_manager.metrics = self.metrics
        self.map_outputs = MapOutputRegistry()
        #: (job_id, stage_id, task_index) -> collected records / count.
        self._task_outputs: Dict[Tuple[int, int, int], Any] = {}
        #: job_id -> [(machine_id, bytes)] of in-memory shuffle data,
        #: released when the job completes (shuffles are intra-job).
        self._in_memory_shuffle: Dict[int, List[Tuple[int, float]]] = {}
        #: job_id -> plan, kept for lineage re-execution.
        self._plans: Dict[int, JobPlan] = {}
        #: shuffle_id -> in-flight recovery barrier (dedupes recoveries).
        self._recovering: Dict[int, Event] = {}
        self._dead_machines: Set[int] = set()
        self._excluded_machines: Set[int] = set()
        #: Optional disaggregated data tier (:mod:`repro.datasvc`): when
        #: set, shuffle output and DFS output blocks live on dedicated
        #: storage nodes instead of worker-local disks.
        self.datasvc = datasvc
        if datasvc is not None:
            datasvc.attach_engine(self)
        #: Optional sharded control plane (:mod:`repro.controlplane`):
        #: set by :meth:`ControlPlane.attach_engine` so fault injection
        #: and telemetry can reach the driver replicas through the
        #: engine, mirroring ``datasvc``.
        self.controlplane = None
        # New DFS replicas avoid the machines the scheduler avoids.
        cluster.dfs.set_exclusion_provider(
            lambda: self._dead_machines | self._excluded_machines)
        self.pool = TaskPool(
            self.env, cluster.machines,
            {m.machine_id: self.concurrency_for(m) for m in cluster.machines},
            self._execute_task, policy=scheduling_policy,
            recovery=self.recovery, metrics=self.metrics,
            on_fetch_failed=self._recover_fetch)

    # -- subclass hooks ------------------------------------------------------------

    def concurrency_for(self, machine: Machine) -> int:
        """How many multitasks to assign concurrently to a machine (§3.4)."""
        raise NotImplementedError

    def run_task_on_machine(self, work: TaskWork,
                            machine: Machine) -> Generator:
        """Drive one task's resource use; must yield simulation events.

        Returns the disk index the task's output was written to (or
        None); the engine commits outputs after the attempt wins."""
        raise NotImplementedError

    def _fail_worker(self, machine_id: int) -> None:
        """Engine-specific crash hook (monospark kills its schedulers)."""

    def _revive_worker(self, machine_id: int) -> None:
        """Engine-specific restart hook."""

    def probation_slots_for(self, machine: Machine) -> int:
        """Concurrent probe attempts allowed on a machine in probation."""
        return 1

    def health_estimator(self):
        """The engine's per-machine rate estimator for health monitoring.

        MonoSpark attributes observed rates to cpu/disk/network from its
        per-resource monotask records; Spark can only estimate a blended
        task-level rate (§6.6's observability contrast, online)."""
        raise NotImplementedError

    def register_telemetry(self, telemetry: TelemetryRegistry) -> None:
        """Register the engine's live gauges into ``telemetry``.

        The base set reads scheduler and simulator state directly:
        pending task backlog, per-machine busy slots, health-excluded
        machine count, outstanding network flows, and per-machine
        buffer-cache dirty bytes.  Subclasses extend (MonoSpark adds
        per-resource queue depths -- per-resource queues only exist
        there).
        """
        telemetry.gauge(
            "repro_pending_tasks",
            "Task attempts waiting for a free execution slot",
            lambda: len(self.pool.pending), engine=self.name)
        telemetry.gauge(
            "repro_excluded_machines",
            "Machines excluded (or on probation) by health monitoring",
            lambda: len(self._excluded_machines), engine=self.name)
        telemetry.gauge(
            "repro_network_flows",
            "Outstanding network flows cluster-wide",
            lambda: self.cluster.network.active_flows, engine=self.name)
        for machine in self.cluster.machines:
            machine_id = machine.machine_id
            telemetry.gauge(
                "repro_busy_task_slots",
                "Execution slots currently running a task attempt",
                lambda m=machine_id: (self.pool._concurrency[m]
                                      - self.pool.free_slots[m]),
                engine=self.name, machine=machine_id)
            telemetry.gauge(
                "repro_buffer_cache_dirty_bytes",
                "Buffer-cache bytes not yet flushed to disk",
                lambda c=machine.cache: c.dirty_bytes,
                engine=self.name, machine=machine_id)
        telemetry.counter(
            "repro_cache_invalidated_partitions",
            "Cached RDD partitions lost to machine invalidation",
            lambda: float(self.block_manager.invalidated_partitions),
            engine=self.name)
        if self.datasvc is not None:
            self.datasvc.register_telemetry(telemetry)
        if self.controlplane is not None:
            self.controlplane.register_telemetry(telemetry)

    # -- public API ---------------------------------------------------------------

    @property
    def live_machine_count(self) -> int:
        """Machines currently accepting work (not crashed)."""
        return self.cluster.num_machines - len(self._dead_machines)

    @property
    def schedulable_machine_count(self) -> int:
        """Machines the scheduler will place new work on: alive and not
        health-excluded (probation machines count as excluded -- their
        probe slots are not real capacity)."""
        return self.cluster.num_machines - len(
            self._dead_machines | self._excluded_machines)

    @property
    def excluded_machines(self) -> FrozenSet[int]:
        """Machines currently excluded (or on probation) by health."""
        return frozenset(self._excluded_machines)

    def machine_is_dead(self, machine_id: int) -> bool:
        """Whether a machine is currently crashed."""
        return machine_id in self._dead_machines

    def run_job(self, plan: JobPlan) -> JobResult:
        """Run one job to completion."""
        return self.run_jobs([plan])[0]

    def run_jobs(self, plans: List[JobPlan]) -> List[JobResult]:
        """Run jobs concurrently; returns once all complete."""
        seen: Set[int] = set()
        for plan in plans:
            if plan.job_id in seen:
                raise SimulationError(
                    f"duplicate job id {plan.job_id} in batch (job ids key "
                    f"results and shuffle lineage; compile each job once)")
            seen.add(plan.job_id)
        drivers = [self.submit_job(plan) for plan in plans]
        self.env.run(until=self.env.all_of(drivers))
        return [driver.value for driver in drivers]

    def submit_job(self, plan: JobPlan) -> Process:
        """Inject a job into a (possibly already running) environment.

        Unlike :meth:`run_jobs`, this does not drive the event loop: it
        starts the job's driver process and returns it, so callers like
        :class:`repro.serve.JobServer` can stream jobs in while earlier
        jobs are still executing.  The returned :class:`Process` is an
        event whose value is the job's :class:`JobResult`.
        """
        if plan.job_id in self._plans:
            raise SimulationError(
                f"job id {plan.job_id} was already submitted to this engine")
        self._plans[plan.job_id] = plan
        return self.env.process(self._job_driver(plan))

    # -- fault entry points --------------------------------------------------------

    def crash_machine(self, machine_id: int) -> None:
        """Fail-stop one machine: lose its volatile state and in-flight
        work, kill its attempts, and invalidate data it was serving.

        Ordering matters: running attempts are interrupted *before* the
        hardware fails, so their interrupts (not cascading hardware
        errors) unwind them; registries are invalidated synchronously so
        any task resolving inputs afterwards sees the loss immediately.
        """
        if machine_id in self._dead_machines:
            return
        machine = self.cluster.machine(machine_id)
        self._dead_machines.add(machine_id)
        self.pool.set_machine_dead(machine_id)
        self._fail_worker(machine_id)
        for disk in machine.disks:
            disk.fail_all()
        machine.cache.crash()
        self.cluster.network.set_machine_up(machine_id, False)
        self.cluster.network.fail_machine(machine_id)
        self.map_outputs.invalidate_machine(machine_id)
        self.block_manager.invalidate_machine(machine_id)
        self._drop_in_memory_shuffle(machine_id)

    def restart_machine(self, machine_id: int) -> None:
        """Bring a crashed machine back, empty but healthy.

        Data on its disks (DFS blocks) is readable again; everything
        that lived in memory stays lost."""
        if machine_id not in self._dead_machines:
            return
        machine = self.cluster.machine(machine_id)
        self._dead_machines.discard(machine_id)
        for disk in machine.disks:
            disk.revive()
        self.cluster.network.set_machine_up(machine_id, True)
        self._revive_worker(machine_id)
        self.pool.set_machine_alive(machine_id)

    def fail_disk(self, machine_id: int, disk_index: int) -> None:
        """Fail one disk permanently; shuffle output on it is lost."""
        machine = self.cluster.machine(machine_id)
        machine.disks[disk_index].fail_all()
        self.map_outputs.invalidate_disk(machine_id, disk_index)

    # -- health exclusion entry points ---------------------------------------------

    def exclude_machine(self, machine_id: int) -> int:
        """Stop scheduling on a fail-slow machine and speculatively
        re-dispatch its in-flight work elsewhere.

        The machine stays up -- its data remains fetchable and running
        attempts may still win -- in contrast to :meth:`crash_machine`.
        Returns the number of duplicates launched.
        """
        self._excluded_machines.add(machine_id)
        self.pool.set_machine_excluded(machine_id)
        return self.pool.redispatch_from(machine_id)

    def probation_machine(self, machine_id: int) -> None:
        """Move an excluded machine to probation: a bounded number of
        probe attempts (see :meth:`probation_slots_for`) may land on it
        so the monitor can observe fresh rates, but it still does not
        count as schedulable capacity."""
        machine = self.cluster.machine(machine_id)
        self._excluded_machines.add(machine_id)
        self.pool.set_machine_probation(
            machine_id, self.probation_slots_for(machine))

    def reinstate_machine(self, machine_id: int) -> None:
        """Fully return a machine to service after probation."""
        self._excluded_machines.discard(machine_id)
        self.pool.set_machine_schedulable(machine_id)

    # -- lineage re-execution ------------------------------------------------------

    def _recover_fetch(self, error: FetchFailed) -> Generator:
        """Re-run the map tasks whose output a reducer found missing.

        Recoveries are deduplicated per shuffle: concurrent fetch
        failures of the same shuffle wait on one recovery barrier.
        """
        shuffle_id = error.shuffle_id
        existing = self._recovering.get(shuffle_id)
        if existing is not None and not existing.triggered:
            yield existing
            return
        barrier = self.env.event()
        self._recovering[shuffle_id] = barrier
        try:
            missing = set(self.map_outputs.missing_maps(shuffle_id))
            dones = [self.pool.resubmit(descriptor)
                     for descriptor in self._map_descriptors(shuffle_id)
                     if descriptor.index in missing]
            if dones:
                yield self.env.all_of(dones)
        finally:
            if not barrier.triggered:
                barrier.succeed()

    def _map_descriptors(self, shuffle_id: int) -> Iterator[TaskDescriptor]:
        """The map-side task descriptors of a shuffle, from saved plans."""
        for plan in self._plans.values():
            for stage in plan.stages:
                for task in stage.tasks:
                    output = task.output
                    if isinstance(output, ShuffleOutput) and \
                            output.shuffle_id == shuffle_id:
                        yield task

    # -- job driving ---------------------------------------------------------------

    def _job_driver(self, plan: JobPlan) -> Generator:
        self.metrics.job_started(plan.job_id, plan.name, self.env.now)
        start = self.env.now
        self._prepare_outputs(plan)
        stage_done: Dict[int, Event] = {
            stage.stage_id: self.env.event() for stage in plan.stages}
        for stage in plan.stages:
            self.env.process(self._stage_runner(plan, stage, stage_done))
        yield self.env.all_of(list(stage_done.values()))
        self._release_in_memory_shuffle(plan.job_id)
        self.metrics.job_finished(plan.job_id, self.env.now)
        return self._assemble_result(plan, start)

    def note_in_memory_shuffle(self, job_id: int, machine: Machine,
                               nbytes: float) -> None:
        """Account shuffle data held in worker memory until job end."""
        machine.memory.acquire(nbytes)
        self._in_memory_shuffle.setdefault(job_id, []).append(
            (machine.machine_id, nbytes))

    def _release_in_memory_shuffle(self, job_id: int) -> None:
        for machine_id, nbytes in self._in_memory_shuffle.pop(job_id, []):
            self.cluster.machine(machine_id).memory.release(nbytes)

    def _drop_in_memory_shuffle(self, machine_id: int) -> None:
        """A crash loses in-memory shuffle data held on the machine."""
        for job_id, entries in self._in_memory_shuffle.items():
            kept: List[Tuple[int, float]] = []
            for mid, nbytes in entries:
                if mid == machine_id:
                    self.cluster.machine(mid).memory.release(nbytes)
                else:
                    kept.append((mid, nbytes))
            self._in_memory_shuffle[job_id] = kept

    def _prepare_outputs(self, plan: JobPlan) -> None:
        for stage in plan.stages:
            for task in stage.tasks:
                output = task.output
                if isinstance(output, ShuffleOutput):
                    self.map_outputs.expect_maps(output.shuffle_id,
                                                 stage.num_tasks)
                    break  # Same output spec for every task in the stage.
                if isinstance(output, DfsOutput):
                    if not self.cluster.dfs.exists(output.file_name):
                        self.cluster.dfs.open_output_file(output.file_name)
                    break
                break

    def _stage_runner(self, plan: JobPlan, stage: Stage,
                      stage_done: Dict[int, Event]) -> Generator:
        if stage.parent_stage_ids:
            yield self.env.all_of(
                [stage_done[parent] for parent in stage.parent_stage_ids])
        self.metrics.stage_started(plan.job_id, stage.stage_id, stage.name,
                                   stage.num_tasks, self.env.now,
                                   parent_stage_ids=stage.parent_stage_ids)
        task_events = [self.pool.submit(task) for task in stage.tasks]
        if task_events:
            barrier = self.env.all_of(task_events)
            if self.recovery.speculation and len(stage.tasks) > 1:
                self.env.process(
                    self._speculation_monitor(plan.job_id, stage, barrier))
            yield barrier
        self.metrics.stage_finished(plan.job_id, stage.stage_id, self.env.now)
        stage_done[stage.stage_id].succeed()

    def _speculation_monitor(self, job_id: int, stage: Stage,
                             barrier: Event) -> Generator:
        """Launch duplicates of stragglers until the stage finishes.

        A running task is a straggler once enough siblings completed and
        it has run longer than ``multiplier`` x the ``percentile`` of
        their durations (the policy's knobs)."""
        policy = self.recovery
        while not barrier.triggered:
            yield self.env.timeout(policy.speculation_interval_s)
            if barrier.triggered:
                return
            completed, running = self.pool.stage_progress(
                job_id, stage.stage_id)
            if not running:
                continue
            needed = max(
                2.0, stage.num_tasks * policy.speculation_min_completed_fraction)
            if len(completed) < needed:
                continue
            durations = sorted(completed)
            index = min(len(durations) - 1,
                        int(len(durations) * policy.speculation_percentile))
            threshold = durations[index] * policy.speculation_multiplier
            for task_id, started_at in running:
                if self.env.now - started_at > threshold:
                    self.pool.speculate(task_id)

    # -- task execution wrapper -----------------------------------------------------

    def _execute_task(self, descriptor: TaskDescriptor, machine: Machine,
                      trace: Optional[TraceContext] = None) -> Generator:
        inputs = self._resolve_inputs(descriptor, machine)
        work = compute_task_work(descriptor, inputs, self.cost)
        work.trace = trace
        record = self.metrics.task_started(
            descriptor.job_id, descriptor.stage_id, descriptor.index,
            machine.machine_id, self.env.now)
        try:
            out_disk = yield from self.run_task_on_machine(work, machine)
        finally:
            record.end = self.env.now
        if self.pool.try_claim_commit(descriptor.task_id):
            self._commit_outputs(work, machine, out_disk)
            self._finalize_task(work, machine)

    def _commit_outputs(self, work: TaskWork, machine: Machine,
                        out_disk: Optional[int]) -> None:
        """Publish a winning attempt's outputs (exactly once per task)."""
        output = work.descriptor.output
        if isinstance(output, ShuffleOutput):
            if output.in_memory:
                # Shuffle data stays resident until the job ends.
                self.note_in_memory_shuffle(
                    work.descriptor.job_id, machine,
                    work.output_stored_bytes)
                self.register_shuffle_output(work, machine, None)
            else:
                self.register_shuffle_output(work, machine, out_disk)
        elif isinstance(output, DfsOutput):
            self.register_dfs_output(
                work, machine, out_disk if out_disk is not None else 0)

    def _finalize_task(self, work: TaskWork, machine: Machine) -> None:
        descriptor = work.descriptor
        output = descriptor.output
        if isinstance(output, CollectOutput):
            key = (descriptor.job_id, descriptor.stage_id, descriptor.index)
            if output.count_only:
                self._task_outputs[key] = work.output_partition.record_count
            else:
                self._task_outputs[key] = list(work.output_partition.records)
        if descriptor.cache is not None and work.cache_partition is not None:
            self.block_manager.put(
                descriptor.cache.rdd_id, descriptor.index,
                machine.machine_id, work.cache_partition,
                descriptor.cache.fmt)

    # -- input resolution -------------------------------------------------------------

    def _resolve_inputs(self, descriptor: TaskDescriptor,
                        machine: Machine) -> List[ResolvedInput]:
        spec = descriptor.input
        if isinstance(spec, DfsInput):
            return [self._resolve_dfs_input(spec, machine)]
        if isinstance(spec, LocalInput):
            return [ResolvedInput(partition=spec.partition, stored_bytes=0.0,
                                  fmt=DESERIALIZED, machine_id=None,
                                  in_memory=True)]
        if isinstance(spec, CachedInput):
            location, partition, fmt = self.block_manager.get(
                spec.rdd_id, spec.partition_index)
            return [ResolvedInput(partition=partition,
                                  stored_bytes=partition.data_bytes,
                                  fmt=fmt, machine_id=location,
                                  in_memory=True)]
        if isinstance(spec, ShuffleInput):
            resolved = []
            for dep in spec.deps:
                missing = self.map_outputs.missing_maps(dep.shuffle_id)
                if missing:
                    # Lost map output (crash/disk failure): the pool will
                    # run lineage recovery and retry this task.
                    raise FetchFailed(dep.shuffle_id, missing)
                for bucket in self.map_outputs.buckets_for_reduce(
                        dep.shuffle_id, spec.reduce_index):
                    resolved.append(ResolvedInput(
                        partition=bucket.partition,
                        stored_bytes=dep.fmt.stored_bytes(bucket.nbytes),
                        fmt=dep.fmt,
                        machine_id=bucket.machine_id,
                        disk_index=bucket.disk_index,
                        in_memory=bucket.in_memory,
                        map_index=bucket.map_index,
                        tag_side=dep.side if spec.tagged else None,
                        block_id=bucket.block_id))
            return resolved
        raise ExecutionError(f"unknown input spec: {spec!r}")

    def _resolve_dfs_input(self, spec: DfsInput,
                           machine: Machine) -> ResolvedInput:
        block = spec.block
        payload = block.payload
        if not isinstance(payload, Partition):
            raise ExecutionError(
                f"DFS block {block.block_id} has no partition payload")
        svc = self.datasvc
        if svc is not None and any(svc.owns_machine(m)
                                   for m, _d in block.replicas):
            # The block lives in the data tier; the service picks and
            # verifies a replica at read time (with failover), so the
            # resolved location is just a routing hint.
            primary = svc.primary_machine_id(block.block_id)
            if primary is None:
                raise FaultError(
                    f"no live replica of DFS block {block.block_id}")
            return ResolvedInput(
                partition=payload, stored_bytes=block.nbytes, fmt=spec.fmt,
                machine_id=primary, disk_index=None)
        live = [(m, d) for (m, d) in block.replicas
                if m not in self._dead_machines
                and not self.cluster.machine(m).disks[d].dead]
        if not live:
            raise FaultError(
                f"no live replica of DFS block {block.block_id}")
        for replica_machine, replica_disk in live:
            if replica_machine == machine.machine_id:
                location, disk_index = replica_machine, replica_disk
                break
        else:
            # Remote read: prefer a replica not on a health-excluded
            # machine (its NIC is the suspected problem), else any live.
            preferred = [(m, d) for (m, d) in live
                         if m not in self._excluded_machines]
            location, disk_index = (preferred or live)[0]
        return ResolvedInput(partition=payload, stored_bytes=block.nbytes,
                             fmt=spec.fmt, machine_id=location,
                             disk_index=disk_index)

    # -- output registration helpers (used by subclasses) -------------------------------

    def register_shuffle_output(self, work: TaskWork, machine: Machine,
                                disk_index: Optional[int]) -> None:
        """Publish a map task's shuffle buckets to the registry."""
        output = work.descriptor.output
        if not isinstance(output, ShuffleOutput):
            raise ExecutionError("task has no shuffle output")
        machine_id = machine.machine_id
        if self.datasvc is not None and not output.in_memory:
            # The data service owns the buckets: register them under the
            # primary storage node, so a *compute* crash invalidates no
            # map output (disaggregation's fault-isolation win).
            primary = self.datasvc.primary_machine_id(
                f"shuffle{output.shuffle_id}-m{work.descriptor.index}")
            if primary is not None:
                machine_id, disk_index = primary, None
        self.map_outputs.register_map_output(
            output.shuffle_id, work.descriptor.index, machine_id,
            disk_index, work.shuffle_buckets or {})

    def register_dfs_output(self, work: TaskWork, machine: Machine,
                            disk_index: int) -> None:
        """Append a task's output block to its DFS file."""
        output = work.descriptor.output
        if not isinstance(output, DfsOutput):
            raise ExecutionError("task has no DFS output")
        payload = work.output_partition if output.keep_payload else None
        svc = self.datasvc
        if svc is not None:
            # The block was streamed to the service under a provisional
            # id during execution; commit renames it to its final block
            # id and records the primary storage node as the replica.
            provisional = f"dfsout:{work.descriptor.task_id}"
            primary = svc.primary_machine_id(provisional)
            if primary is not None:
                block = self.cluster.dfs.append_output_block(
                    output.file_name, work.output_stored_bytes, primary, 0,
                    payload=payload)
                svc.alias_block(provisional, block.block_id)
                return
        self.cluster.dfs.append_output_block(
            output.file_name, work.output_stored_bytes, machine.machine_id,
            disk_index, payload=payload)

    # -- result assembly -----------------------------------------------------------------

    def _assemble_result(self, plan: JobPlan, start: float) -> JobResult:
        result = JobResult(plan.job_id, plan.name, start, self.env.now)
        final = plan.final_stage
        sample = final.tasks[0].output if final.tasks else None
        if isinstance(sample, CollectOutput):
            outputs = [
                self._task_outputs.pop(
                    (plan.job_id, final.stage_id, task.index))
                for task in final.tasks
            ]
            if sample.count_only:
                result.count = float(sum(outputs))
            else:
                result.collected = outputs
        return result
