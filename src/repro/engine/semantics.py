"""Pure task semantics, shared by both engines.

MonoSpark "inherits most of the Spark code base, and the application code
running on Spark and MonoSpark is identical ... MonoSpark only changes
the code that handles pipelining resources used by a task" (§4).  This
module is that shared code base: given a task descriptor and its
resolved inputs, it computes -- with no simulated time passing -- what
the task produces and how much CPU work each part costs.  The engines
then differ only in *when* and *how* the I/O and compute are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.ops import run_chain
from repro.api.plan import (CachedInput, CollectOutput, DfsInput, DfsOutput,
                            LocalInput, ShuffleInput, ShuffleOutput,
                            TaskDescriptor)
from repro.config import CostModel
from repro.datamodel.records import Partition
from repro.datamodel.serialization import (DataFormat, PLAIN,
                                           deserialize_seconds,
                                           serialize_seconds)
from repro.errors import ExecutionError

__all__ = ["ResolvedInput", "TaskWork", "compute_task_work"]


@dataclass(slots=True)
class ResolvedInput:
    """One source of input data for a task, located and sized."""

    partition: Partition
    #: Bytes that must move from storage/network (after compression).
    stored_bytes: float
    fmt: DataFormat
    #: Where the data lives now: machine id, or None for "ships with task".
    machine_id: Optional[int] = None
    disk_index: Optional[int] = None
    in_memory: bool = False
    #: For shuffle inputs: which map task produced it.
    map_index: Optional[int] = None
    #: Cogroup side tag to apply to records, or None.
    tag_side: Optional[int] = None
    #: Storage block id (shuffle bucket id), for buffer-cache hits.
    block_id: Optional[str] = None


@dataclass(slots=True)
class TaskWork:
    """Everything a task will do, computed up front.

    The engines replay this work against simulated hardware: the input
    bytes come from ``inputs``, the CPU seconds from the ``*_s`` fields,
    and the output bytes from ``output_stored_bytes`` /
    ``shuffle_buckets``.
    """

    descriptor: TaskDescriptor
    inputs: List[ResolvedInput]
    input_partition: Partition
    deserialize_s: float
    op_s: float
    serialize_s: float
    output_partition: Partition
    #: Bytes written to disk or sent to the driver (post-compression).
    output_stored_bytes: float
    #: reduce_index -> bucket partition, for shuffle outputs.
    shuffle_buckets: Optional[Dict[int, Partition]] = None
    #: Partition snapshot to cache, if the descriptor asks for one.
    cache_partition: Optional[Partition] = None
    #: Attempt span context ("repro.trace.spans.TraceContext"); set by
    #: the engine so monotasks can parent their leaf spans under it.
    trace: Optional[Any] = None

    @property
    def total_cpu_s(self) -> float:
        """Deserialize + operators + serialize seconds."""
        return self.deserialize_s + self.op_s + self.serialize_s

    @property
    def input_stored_bytes(self) -> float:
        """Bytes that must move from storage or the network."""
        return sum(source.stored_bytes for source in self.inputs)


def _merge_inputs(descriptor: TaskDescriptor,
                  inputs: List[ResolvedInput]) -> Partition:
    """Concatenate resolved inputs.

    Cogroup side tags are applied by the *map side* (the DAG scheduler
    appends a tag operator to each parent's map chain), so shuffle
    buckets arrive already tagged and are merged verbatim here.
    """
    return Partition.merge([source.partition for source in inputs])


def compute_task_work(descriptor: TaskDescriptor,
                      inputs: List[ResolvedInput],
                      cost: CostModel) -> TaskWork:
    """Run the task's logic eagerly and price its CPU phases."""
    input_partition = _merge_inputs(descriptor, inputs)

    deserialize_s = sum(
        deserialize_seconds(source.partition, source.fmt, cost)
        for source in inputs)

    cache_partition: Optional[Partition] = None
    if descriptor.cache is not None:
        split = descriptor.cache.after_ops
        prefix, prefix_s = run_chain(input_partition,
                                     descriptor.chain[:split])
        cache_partition = prefix
        output_partition, suffix_s = run_chain(prefix,
                                               descriptor.chain[split:])
        op_s = prefix_s + suffix_s
    else:
        output_partition, op_s = run_chain(input_partition, descriptor.chain)

    output = descriptor.output
    shuffle_buckets: Optional[Dict[int, Partition]] = None
    if isinstance(output, ShuffleOutput):
        serialize_s = serialize_seconds(output_partition, output.fmt, cost)
        buckets = output.partitioner.split(output_partition.records)
        parts = output_partition.split_proportionally(buckets,
                                                      own_records=True)
        shuffle_buckets = {
            index: part for index, part in enumerate(parts)
            if part.record_count > 0 or part.records
        }
        output_stored_bytes = output.fmt.stored_bytes(
            output_partition.data_bytes)
    elif isinstance(output, DfsOutput):
        serialize_s = serialize_seconds(output_partition, output.fmt, cost)
        output_stored_bytes = output.fmt.stored_bytes(
            output_partition.data_bytes)
    elif isinstance(output, CollectOutput):
        if output.count_only:
            serialize_s = 0.0
            output_stored_bytes = 0.0
        else:
            serialize_s = serialize_seconds(output_partition, PLAIN, cost)
            output_stored_bytes = output_partition.data_bytes
    else:
        raise ExecutionError(f"unknown output spec: {output!r}")

    return TaskWork(
        descriptor=descriptor,
        inputs=inputs,
        input_partition=input_partition,
        deserialize_s=deserialize_s,
        op_s=op_s,
        serialize_s=serialize_s,
        output_partition=output_partition,
        output_stored_bytes=output_stored_bytes,
        shuffle_buckets=shuffle_buckets,
        cache_partition=cache_partition,
    )
