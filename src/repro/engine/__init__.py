"""Shared engine machinery: driver loop, task pool, task semantics."""

from repro.engine.base import BaseEngine, JobResult, TaskPool
from repro.engine.semantics import ResolvedInput, TaskWork, compute_task_work

__all__ = [
    "BaseEngine",
    "JobResult",
    "TaskPool",
    "ResolvedInput",
    "TaskWork",
    "compute_task_work",
]
