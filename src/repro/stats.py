"""Small dependency-free numeric helpers shared across layers.

This module must import nothing from the simulation, metrics, or
clarity packages: it sits below all of them so that, e.g., the
clarity time-series store can share code with the metrics layer
without acquiring a simulation dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``.

    Raises ``ValueError`` on an empty sequence or a ``q`` outside
    [0, 100] (including NaN).  Callers that need a domain-specific
    error type should wrap this.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100]: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
