"""Client-side monotasks that talk to the :class:`DataService`.

When the data service is enabled, ``decompose`` swaps the local
shuffle-write disk monotask for a :class:`DataSvcPutMonotask` and the
shuffle-fetch group for a :class:`DataSvcFetchMonotask`.  Both occupy
the *network* resource on the compute worker (the data never touches
local disk); the service runs the storage-side disk monotasks on its own
nodes' schedulers, so the data tier's contention stays attributable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.metrics.events import NETWORK
from repro.monospark.monotask import Monotask

if TYPE_CHECKING:
    from repro.datasvc.service import DataService
    from repro.monospark.worker import MonoWorker

__all__ = ["DataSvcMonotask", "DataSvcPutMonotask", "DataSvcFetchMonotask"]


class DataSvcMonotask(Monotask):
    """Base for client calls into the data service (network resource)."""

    resource = NETWORK

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int],
                 service: "DataService") -> None:
        super().__init__(worker, phase, task_id_fields)
        self.service = service
        #: Kept for Decomposition.output_disk: service writes never
        #: land on a *local* disk.
        self.disk_index: Optional[int] = None


class DataSvcPutMonotask(DataSvcMonotask):
    """Stream a map task's shuffle buckets (or a DFS block) out."""

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int],
                 service: "DataService", shuffle_id: Optional[int] = None,
                 map_index: Optional[int] = None,
                 buckets: Optional[Dict[int, float]] = None,
                 block_id: Optional[str] = None, nbytes: float = 0.0,
                 payload: object = None) -> None:
        super().__init__(worker, phase, task_id_fields, service)
        self.shuffle_id = shuffle_id
        self.map_index = map_index
        self.buckets = buckets or {}
        self.block_id = block_id
        self.nbytes = (float(nbytes) if block_id is not None
                       else float(sum(self.buckets.values())))
        self.payload = payload
        #: Fabric machine id of the primary replica, set on completion;
        #: the engine registers map output under this id.
        self.primary_machine_id: Optional[int] = None

    def execute(self):
        ids = (self.job_id, self.stage_id, self.task_index)
        src = self.worker.machine.machine_id
        if self.block_id is not None:
            self.primary_machine_id = yield from self.service.write_block(
                src, self.block_id, self.nbytes, ids, payload=self.payload)
        else:
            self.primary_machine_id = yield from self.service.put_map_output(
                src, self.shuffle_id, self.map_index, self.buckets, ids,
                payload=self.payload)

    def record(self) -> None:
        """Report the bytes streamed to the data tier."""
        self.worker.engine.metrics.record_monotask(
            self.base_record(NETWORK, nbytes=self.nbytes),
            trace=self.trace, span_id=self.span_id)


class DataSvcFetchMonotask(DataSvcMonotask):
    """Fetch shuffle buckets (or a DFS block) from the service."""

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int],
                 service: "DataService",
                 requests: List[Tuple[str, float]],
                 dfs_block: bool = False) -> None:
        super().__init__(worker, phase, task_id_fields, service)
        self.requests = requests
        self.dfs_block = dfs_block
        self.total_bytes = sum(nbytes for _, nbytes in requests)

    def execute(self):
        ids = (self.job_id, self.stage_id, self.task_index)
        dst = self.worker.machine.machine_id
        if self.dfs_block:
            for block_id, nbytes in self.requests:
                yield from self.service.read_block(
                    dst, block_id, nbytes, ids,
                    trace=self.trace, span_id=self.span_id)
        else:
            yield from self.service.fetch_shuffle(
                dst, self.requests, ids,
                trace=self.trace, span_id=self.span_id)

    def record(self) -> None:
        """Report the bytes received from the data tier."""
        self.worker.engine.metrics.record_monotask(
            self.base_record(NETWORK, nbytes=self.total_bytes),
            trace=self.trace, span_id=self.span_id)
