"""A disaggregated shuffle/storage data service (Whiz/F²-style).

The :class:`DataService` owns shuffle output and DFS output blocks on a
dedicated set of *storage nodes* -- simulated machines that live on the
same network fabric as the compute cluster but are never scheduled by
the task pool.  Each node runs its own per-disk monotask schedulers on
the existing simulator kernel, so data-tier contention is as visible as
compute-tier contention.

Clients talk to the service through a narrow API:

* :meth:`DataService.put_map_output` -- stream a map task's shuffle
  buckets to the service (write-behind: acked on memory write, drained
  to disk asynchronously).
* :meth:`DataService.fetch_shuffle` -- fetch shuffle bucket bytes for a
  reduce task, verified against per-block CRC checksums.
* :meth:`DataService.write_block` / :meth:`DataService.read_block` --
  the same paths for DFS output blocks.

Every stored block is replicated on ``replication`` nodes with
deterministic ring placement that skips crashed and health-excluded
nodes.  Reads verify a CRC over the block's content digest: a mismatch
raises an integrity fault event, increments the serving node's
suspicion counter in the health monitor, fails over to another replica,
and queues re-replication -- so a compute machine can crash without
losing any map output (no lineage re-execution), and a flaky disk or
NIC becomes a *verifiable* fault instead of silent corruption.
"""

from __future__ import annotations

import zlib
from typing import Dict, Generator, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.config import MachineSpec
from repro.datamodel.records import Partition
from repro.errors import (ConfigError, FaultError, FetchFailed,
                          Interrupted, MachineFailure, SimulationError)
from repro.metrics.events import (PHASE_DATASVC_DRAIN, PHASE_DATASVC_READ,
                                  FaultEventRecord, HealthEventRecord,
                                  TransferRecord)
from repro.monospark.monotask import DiskMonotask
from repro.monospark.schedulers import ResourceScheduler
from repro.simulator.network import FLOW_LATENCY_S
from repro.trace.spans import (LINK_DATASVC_READ, SpanLink, TraceContext)

__all__ = ["DataService", "StorageNode", "StoredBlock", "Replica",
           "block_checksum"]


def block_checksum(block_id: str, record_count: float,
                   data_bytes: float) -> int:
    """CRC32 over a deterministic digest of the block's identity/shape.

    Real systems checksum the payload bytes; the simulation checksums a
    stable digest of what the payload *is* (id, record count, modeled
    bytes), which detects the same corruption events deterministically
    without hashing python object graphs (whose reprs are not stable).
    """
    digest = f"{block_id}:{record_count!r}:{data_bytes!r}"
    return zlib.crc32(digest.encode("utf-8"))


class Replica:
    """One node's copy of a stored block."""

    __slots__ = ("node_index", "disk_index", "stored_crc", "valid")

    def __init__(self, node_index: int, stored_crc: int) -> None:
        self.node_index = node_index
        #: None while the copy is memory-resident (write-behind window).
        self.disk_index: Optional[int] = None
        #: The checksum of the bytes this replica actually holds; flipped
        #: by an injected corruption fault.
        self.stored_crc = stored_crc
        #: Cleared when the copy is discarded (corrupt, or lost with a
        #: crashed node's memory).
        self.valid = True


class StoredBlock:
    """One replicated, checksummed block owned by the service."""

    __slots__ = ("block_id", "nbytes", "crc", "kind", "replicas", "payload",
                 "shuffle_id", "map_index", "buckets")

    def __init__(self, block_id: str, nbytes: float, crc: int, kind: str,
                 payload: object = None) -> None:
        self.block_id = block_id
        self.nbytes = nbytes
        #: The checksum stamped at put time -- ground truth for reads.
        self.crc = crc
        self.kind = kind  # "shuffle" | "dfs"
        self.replicas: List[Replica] = []
        self.payload = payload
        self.shuffle_id: Optional[int] = None
        self.map_index: Optional[int] = None
        #: reduce_index -> stored bucket bytes (shuffle blocks only).
        self.buckets: Dict[int, float] = {}

    def live_replicas(self, node_is_live) -> List[Replica]:
        """Valid replicas on live nodes, memory-resident first, then by
        node index -- a deterministic preference order."""
        candidates = [r for r in self.replicas
                      if r.valid and node_is_live(r.node_index)]
        candidates.sort(key=lambda r: (r.disk_index is not None,
                                       r.node_index))
        return candidates


class StorageNode:
    """One storage machine: hardware models plus per-disk schedulers.

    Duck-types as a monotask "worker" (``env`` / ``machine`` /
    ``engine``) so plain :class:`DiskMonotask` instances run on its
    schedulers and self-report through the normal metrics path.
    """

    def __init__(self, service: "DataService", index: int,
                 machine: Machine) -> None:
        self.engine = service  # .engine.metrics is the reporting path
        self.service = service
        self.index = index
        self.machine = machine
        self.env = machine.env
        prefix = f"s{machine.machine_id}"
        self.disk_schedulers: List[ResourceScheduler] = [
            ResourceScheduler(self.env, service.disk_concurrency,
                              f"{prefix}.disk{i}")
            for i in range(machine.num_disks)
        ]
        self.down = False
        #: Bytes held in the write-behind window (acked, not yet drained).
        self.memory_resident_bytes = 0.0

    @property
    def machine_id(self) -> int:
        """Fabric-wide machine id (above every compute id)."""
        return self.machine.machine_id

    def submit_disk(self, monotask: DiskMonotask) -> None:
        """Queue a disk monotask on the node's own scheduler."""
        self.disk_schedulers[monotask.disk_index].submit(monotask)

    def crash(self) -> None:
        """Lose the node: schedulers reject work, NIC goes dark, and the
        write-behind window (memory) is lost; disk copies survive."""
        self.down = True
        for scheduler in self.disk_schedulers:
            scheduler.fail_all()
        for disk in self.machine.disks:
            disk.fail_all()
        network = self.machine.network
        network.set_machine_up(self.machine_id, False)
        network.fail_machine(self.machine_id)
        self.memory_resident_bytes = 0.0

    def restart(self) -> None:
        """Bring the node back with its disk contents intact."""
        self.down = False
        for disk in self.machine.disks:
            disk.revive()
        for scheduler in self.disk_schedulers:
            scheduler.revive()
        self.machine.network.set_machine_up(self.machine_id, True)

    def queue_lengths(self) -> Dict[str, int]:
        """Per-disk queue depth (the data tier's contention signal)."""
        return {f"disk{i}": s.queue_length
                for i, s in enumerate(self.disk_schedulers)}


class DataService:
    """The disaggregated data tier: replicated, checksummed block store.

    Construct it over a cluster, then pass it to either engine::

        cluster = hdd_cluster(num_machines=4)
        svc = DataService(cluster, num_nodes=3, replication=2)
        ctx = AnalyticsContext(cluster, engine="monospark", datasvc=svc)

    Storage nodes get machine ids ``cluster.num_machines ..`` on the
    shared network fabric; :meth:`owns_machine` tells the engines which
    ids belong to the data tier.

    ``network`` overrides the fabric the tier's transfers ride on.  The
    default (the cluster's shared network) is right for shuffle and DFS
    data; a service carrying out-of-band metadata -- the control plane's
    tenant checkpoints -- passes its own :class:`Network` so metadata
    flows never perturb the max-min fair shares (and therefore the
    float-exact timing) of compute transfers.
    """

    def __init__(self, cluster: Cluster, num_nodes: int = 3,
                 replication: int = 2, spec: Optional[MachineSpec] = None,
                 disk_concurrency: int = 4,
                 suspicion_exclude_threshold: int = 2,
                 network=None) -> None:
        if num_nodes < 1:
            raise ConfigError("data service needs at least one node")
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        self.cluster = cluster
        self.env = cluster.env
        self.network = network if network is not None else cluster.network
        self.num_nodes = num_nodes
        self.replication = min(replication, num_nodes)
        self.disk_concurrency = disk_concurrency
        self.suspicion_exclude_threshold = suspicion_exclude_threshold
        self._base_id = cluster.num_machines
        node_spec = spec or cluster.spec
        self.nodes: List[StorageNode] = [
            StorageNode(self, i, Machine(cluster.env, self._base_id + i,
                                         node_spec, self.network))
            for i in range(num_nodes)
        ]
        self._engine = None
        self._health = None
        self._metrics = None
        self._blocks: Dict[str, StoredBlock] = {}
        #: bucket block id ("shuffle0-m1-r2") -> owning map block id.
        self._bucket_owner: Dict[str, str] = {}
        self._placement_cursor = 0
        self._excluded_nodes: set = set()
        self._suspicions: Dict[int, int] = {}
        # Cumulative counters (the ServeReport / telemetry face).
        self.puts = 0
        self.fetches = 0
        self.bytes_in = 0.0
        self.bytes_out = 0.0
        self.drains = 0
        self.replications = 0
        self.integrity_faults = 0
        self.failovers = 0
        self.re_replications = 0
        self.lineage_losses = 0

    # -- wiring --------------------------------------------------------------

    def attach_engine(self, engine) -> None:
        """Called by :class:`BaseEngine` when the service is enabled."""
        self._engine = engine
        self._metrics = engine.metrics

    def attach_health(self, health) -> None:
        """Route integrity faults into a :class:`HealthMonitor`."""
        self._health = health

    @property
    def metrics(self):
        """The attached engine's collector (monotask self-reports land
        here); None only before :meth:`attach_engine`."""
        return self._metrics

    # -- identity ------------------------------------------------------------

    def owns_machine(self, machine_id: int) -> bool:
        """True if ``machine_id`` names a storage node, not compute."""
        return self._base_id <= machine_id < self._base_id + self.num_nodes

    def node_for_machine(self, machine_id: int) -> StorageNode:
        """The storage node behind a fabric machine id."""
        if not self.owns_machine(machine_id):
            raise SimulationError(
                f"machine {machine_id} is not a storage node")
        return self.nodes[machine_id - self._base_id]

    def node_machine_id(self, node_index: int) -> int:
        """Fabric machine id of storage node ``node_index``."""
        return self._base_id + node_index

    def block_info(self, block_id: str) -> Optional[Tuple[float, object]]:
        """``(nbytes, payload)`` of a held block, or ``None``.

        Readers that pay the simulated I/O cost via :meth:`read_block`
        use this to get the actual content back -- the control plane's
        checkpoint restore path decodes the payload it wrote.
        """
        block = self._blocks.get(block_id)
        if block is None:
            return None
        return (block.nbytes, block.payload)

    @property
    def live_node_count(self) -> int:
        """Storage nodes currently up."""
        return sum(1 for node in self.nodes if not node.down)

    def _node_is_live(self, node_index: int) -> bool:
        return not self.nodes[node_index].down

    def _placeable(self, node_index: int) -> bool:
        return (not self.nodes[node_index].down
                and node_index not in self._excluded_nodes)

    # -- placement -----------------------------------------------------------

    def _place(self, count: int) -> List[int]:
        """Deterministic ring placement skipping down/excluded nodes.

        Falls back to down/excluded nodes only when fewer than ``count``
        healthy nodes exist (degraded placement beats no placement).
        """
        healthy = [i for i in range(self.num_nodes) if self._placeable(i)]
        ring = healthy if healthy else list(range(self.num_nodes))
        chosen: List[int] = []
        start = self._placement_cursor
        for offset in range(len(ring)):
            if len(chosen) >= count:
                break
            chosen.append(ring[(start + offset) % len(ring)])
        self._placement_cursor += 1
        return chosen

    # -- write path ----------------------------------------------------------

    def put_map_output(self, src_machine_id: int, shuffle_id: int,
                       map_index: int, buckets: Dict[int, float],
                       ids: Tuple[int, int, int],
                       payload: object = None) -> Generator:
        """Stream one map task's shuffle output to the service.

        ``buckets`` maps reduce index -> stored bucket bytes.  Acked as
        soon as the primary holds the data in memory (write-behind);
        replication and disk drain continue asynchronously.  Returns
        (via StopIteration value) the primary node's machine id.
        """
        block_id = f"shuffle{shuffle_id}-m{map_index}"
        total = float(sum(buckets.values()))
        block = self._new_block(block_id, total, kind="shuffle",
                                payload=payload)
        block.shuffle_id = shuffle_id
        block.map_index = map_index
        block.buckets = dict(buckets)
        for reduce_index in buckets:
            self._bucket_owner[
                f"{block_id}-r{reduce_index}"] = block_id
        primary = yield from self._ingest(src_machine_id, block, ids)
        return primary

    def write_block(self, src_machine_id: int, block_id: str, nbytes: float,
                    ids: Tuple[int, int, int],
                    payload: object = None) -> Generator:
        """Store one DFS output block (same write-behind path)."""
        block = self._new_block(block_id, float(nbytes), kind="dfs",
                                payload=payload)
        primary = yield from self._ingest(src_machine_id, block, ids)
        return primary

    def _new_block(self, block_id: str, nbytes: float, kind: str,
                   payload: object) -> StoredBlock:
        crc = block_checksum(
            block_id,
            getattr(payload, "record_count", 0.0) or 0.0, nbytes)
        block = StoredBlock(block_id, nbytes, crc, kind, payload=payload)
        # Re-put (speculative/retried attempt) replaces the old copy.
        self._blocks[block_id] = block
        return block

    def _ingest(self, src_machine_id: int, block: StoredBlock,
                ids: Tuple[int, int, int]) -> Generator:
        """Client -> primary transfer, memory ack, async drain."""
        placement = self._place(self.replication)
        if not placement:
            raise FaultError(f"no storage node for block {block.block_id}")
        primary = self.nodes[placement[0]]
        if primary.down:
            raise MachineFailure(
                f"storage node {primary.index} is down")
        yield self.env.timeout(FLOW_LATENCY_S)  # the put request
        if block.nbytes > 0:
            yield self.network.transfer(
                src_machine_id, primary.machine_id, block.nbytes,
                label=f"datasvc-put:{block.block_id}")
        replica = Replica(primary.index, block.crc)
        block.replicas.append(replica)
        primary.memory_resident_bytes += block.nbytes
        self.puts += 1
        self.bytes_in += block.nbytes
        # Write-behind: the client is acked now; followers and the disk
        # drain proceed off the client's critical path.
        self.env.process(self._drain_replica(primary, block, replica, ids))
        for node_index in placement[1:]:
            self.env.process(self._replicate(
                primary, self.nodes[node_index], block, ids))
        return primary.machine_id

    def _replicate(self, source: StorageNode, target: StorageNode,
                   block: StoredBlock, ids: Tuple[int, int, int]) -> Generator:
        """Copy a block to one follower node, then drain it to disk."""
        try:
            if block.nbytes > 0:
                yield self.network.transfer(
                    source.machine_id, target.machine_id, block.nbytes,
                    label=f"datasvc-repl:{block.block_id}")
        except (FaultError, Interrupted):
            return  # an endpoint died mid-copy; re-replication can retry
        if target.down or self._blocks.get(block.block_id) is not block:
            return
        replica = Replica(target.index, block.crc)
        block.replicas.append(replica)
        target.memory_resident_bytes += block.nbytes
        self.replications += 1
        yield from self._drain_replica(target, block, replica, ids)

    def _drain_replica(self, node: StorageNode, block: StoredBlock,
                       replica: Replica,
                       ids: Tuple[int, int, int]) -> Generator:
        """Write-behind drain: move one memory copy onto a disk."""
        if block.nbytes <= 0:
            replica.disk_index = node.machine.pick_write_disk()
            return
        write = DiskMonotask(node, PHASE_DATASVC_DRAIN, ids,
                             disk_index=node.machine.pick_write_disk(),
                             nbytes=block.nbytes, kind="write")
        node.submit_disk(write)
        try:
            yield write.done
        except (FaultError, Interrupted):
            return  # the node crashed: the memory copy is already lost
        if node.down or not replica.valid:
            return
        replica.disk_index = write.disk_index
        node.memory_resident_bytes = max(
            0.0, node.memory_resident_bytes - block.nbytes)
        self.drains += 1

    # -- read path -----------------------------------------------------------

    def fetch_shuffle(self, dst_machine_id: int,
                      requests: List[Tuple[str, float]],
                      ids: Tuple[int, int, int],
                      trace: Optional[TraceContext] = None,
                      span_id: Optional[int] = None) -> Generator:
        """Fetch shuffle bucket bytes for a reduce task.

        ``requests`` is a list of (bucket block id, stored bytes); the
        service resolves each bucket to its owning map-output block,
        coalesces per block, and serves each from a checksum-verified
        replica.
        """
        per_block: Dict[str, float] = {}
        for bucket_id, nbytes in requests:
            if nbytes <= 0:
                continue
            owner = self._bucket_owner.get(bucket_id, bucket_id)
            per_block[owner] = per_block.get(owner, 0.0) + nbytes
        serves = [
            self.env.process(self._serve(dst_machine_id, block_id, nbytes,
                                         ids, trace, span_id))
            for block_id, nbytes in sorted(per_block.items())
        ]
        if serves:
            yield self.env.all_of(serves)
        self.fetches += 1

    def read_block(self, dst_machine_id: int, block_id: str, nbytes: float,
                   ids: Tuple[int, int, int],
                   trace: Optional[TraceContext] = None,
                   span_id: Optional[int] = None) -> Generator:
        """Read (part of) one DFS block from a verified replica."""
        yield from self._serve(dst_machine_id, block_id, float(nbytes),
                               ids, trace, span_id)

    def _serve(self, dst_machine_id: int, block_id: str, nbytes: float,
               ids: Tuple[int, int, int],
               trace: Optional[TraceContext],
               span_id: Optional[int]) -> Generator:
        """Serve one block read: verify, failover, transfer."""
        block = self._blocks.get(block_id)
        if block is None:
            raise FaultError(f"data service holds no block {block_id}")
        attempt = 0
        while True:
            candidates = block.live_replicas(self._node_is_live)
            if not candidates:
                # Lost beyond replication.  Invalidate the registry entry
                # (so the retried attempt fetch-fails at resolve time and
                # lineage re-executes the map) and fail this attempt with
                # a FaultError -- the only failure type the monotask
                # scheduler contract admits.
                self._lose_block(block)
                raise MachineFailure(
                    f"no live replica of block {block_id}")
            replica = candidates[0]
            node = self.nodes[replica.node_index]
            if attempt > 0:
                self.failovers += 1
            attempt += 1
            if replica.stored_crc != block.crc:
                self._integrity_fault(node, block, replica)
                continue
            try:
                yield from self._stream(node, dst_machine_id, block, replica,
                                        nbytes, ids, trace, span_id)
            except (FaultError, Interrupted):
                continue  # the node died mid-serve: fail over
            self.bytes_out += nbytes
            return

    def _stream(self, node: StorageNode, dst_machine_id: int,
                block: StoredBlock, replica: Replica, nbytes: float,
                ids: Tuple[int, int, int],
                trace: Optional[TraceContext],
                span_id: Optional[int]) -> Generator:
        """Disk read (if drained) + network transfer for one serve."""
        yield self.env.timeout(FLOW_LATENCY_S)  # the read request
        if replica.disk_index is not None and nbytes > 0:
            read = DiskMonotask(node, PHASE_DATASVC_READ, ids,
                                disk_index=replica.disk_index,
                                nbytes=nbytes, kind="read")
            if trace is not None and span_id is not None \
                    and self._metrics is not None:
                read.trace = trace
                read.span_id = self._metrics.new_span_id()
                self._metrics.record_link(SpanLink(
                    from_span_id=read.span_id, to_span_id=span_id,
                    kind=LINK_DATASVC_READ, trace_id=trace.trace_id,
                    at=self.env.now,
                    detail=(f"datasvc read on node {node.index} -> "
                            f"fetch on machine {dst_machine_id}")))
            node.submit_disk(read)
            yield read.done
        if nbytes > 0:
            start = self.env.now
            yield self.network.transfer(
                node.machine_id, dst_machine_id, nbytes,
                label=f"datasvc-read:{block.block_id}")
            if self._metrics is not None:
                self._metrics.record_transfer(TransferRecord(
                    src_machine_id=node.machine_id,
                    dst_machine_id=dst_machine_id, nbytes=nbytes,
                    start=start, end=self.env.now, job_id=ids[0]))

    # -- integrity / fault handling ------------------------------------------

    def _integrity_fault(self, node: StorageNode, block: StoredBlock,
                         replica: Replica) -> None:
        """A checksum mismatch: record, suspect the node, drop the copy."""
        self.integrity_faults += 1
        replica.valid = False
        count = self._suspicions.get(node.index, 0) + 1
        self._suspicions[node.index] = count
        detail = (f"checksum mismatch on block {block.block_id} "
                  f"(replica on storage node {node.index})")
        if self._health is not None:
            self._health.report_integrity_fault(node.machine_id,
                                                detail=detail)
        elif self._metrics is not None:
            self._metrics.record_health(HealthEventRecord(
                kind="integrity-fault", machine_id=node.machine_id,
                at=self.env.now, resource="disk", detail=detail))
        if count >= self.suspicion_exclude_threshold:
            self._excluded_nodes.add(node.index)
        self.env.process(self._restore_replication(block))

    def suspicion_counts(self) -> Dict[int, int]:
        """Integrity suspicions per storage node index."""
        return dict(self._suspicions)

    @property
    def excluded_nodes(self) -> frozenset:
        """Nodes excluded from new placements (too many suspicions)."""
        return frozenset(self._excluded_nodes)

    def _restore_replication(self, block: StoredBlock) -> Generator:
        """Re-replicate a block that lost a copy, from a good replica."""
        if self._blocks.get(block.block_id) is not block:
            return
        good = block.live_replicas(self._node_is_live)
        if not good:
            return
        holders = {r.node_index for r in block.replicas if r.valid}
        targets = [i for i in self._place(self.replication)
                   if i not in holders]
        source = self.nodes[good[0].node_index]
        for node_index in targets[:max(0, self.replication - len(good))]:
            self.re_replications += 1
            yield from self._replicate(source, self.nodes[node_index],
                                       block, (-1, -1, -1))

    def _lose_block(self, block: StoredBlock) -> None:
        """Every replica is gone: surface the loss to the lineage layer."""
        self.lineage_losses += 1
        if block.kind == "shuffle" and self._engine is not None \
                and block.shuffle_id is not None:
            registry = self._engine.map_outputs
            if hasattr(registry, "invalidate_map"):
                registry.invalidate_map(block.shuffle_id, block.map_index)

    def shuffle_block_lost(self, block: StoredBlock) -> FetchFailed:
        """The error a client should raise for a lost shuffle block."""
        return FetchFailed(block.shuffle_id or 0, [block.map_index or 0])

    # -- fault-injection entry points ----------------------------------------

    def crash_node(self, node_index: int) -> None:
        """Storage-node crash: memory copies are lost, disks survive."""
        node = self.nodes[node_index]
        if node.down:
            return
        for block in self._blocks.values():
            for replica in block.replicas:
                if replica.node_index == node_index \
                        and replica.disk_index is None:
                    replica.valid = False
        node.crash()

    def restart_node(self, node_index: int) -> None:
        """Bring a crashed node back; its disk replicas become readable."""
        node = self.nodes[node_index]
        if not node.down:
            return
        node.restart()

    def corrupt_block(self, node_index: int, block_seq: int = 0) -> str:
        """Flip the stored checksum of one replica on ``node_index``.

        ``block_seq`` selects the ``block_seq``-th block (sorted by id)
        holding a valid replica on the node; returns the corrupted block
        id, or "" when the node holds nothing to corrupt.
        """
        held = sorted(
            block_id for block_id, block in self._blocks.items()
            if any(r.node_index == node_index and r.valid
                   for r in block.replicas))
        if not held:
            return ""
        block = self._blocks[held[block_seq % len(held)]]
        for replica in block.replicas:
            if replica.node_index == node_index and replica.valid:
                replica.stored_crc ^= 0xFFFFFFFF
                return block.block_id
        return ""

    def alias_block(self, block_id: str, new_block_id: str) -> None:
        """Rename a stored block to its final id.

        DFS output blocks are streamed under a provisional id while the
        task runs (the block's file offset is unknown until the attempt
        wins); the engine renames them at commit time.  Checksums are
        re-stamped for the new id; a replica already corrupted keeps
        mismatching.
        """
        block = self._blocks.pop(block_id, None)
        if block is None:
            return
        new_crc = block_checksum(
            new_block_id,
            getattr(block.payload, "record_count", 0.0) or 0.0, block.nbytes)
        for replica in block.replicas:
            if replica.stored_crc == block.crc:
                replica.stored_crc = new_crc
        block.block_id = new_block_id
        block.crc = new_crc
        self._blocks[new_block_id] = block

    # -- introspection -------------------------------------------------------

    def block(self, block_id: str) -> Optional[StoredBlock]:
        """Look up a stored block (None if unknown)."""
        return self._blocks.get(block_id)

    def primary_machine_id(self, block_id: str) -> Optional[int]:
        """Fabric machine id of a block's first valid replica."""
        block = self._blocks.get(block_id)
        if block is None:
            return None
        for replica in block.replicas:
            if replica.valid:
                return self.node_machine_id(replica.node_index)
        return None

    def stats(self) -> Dict[str, float]:
        """Deterministic cumulative counters for reports and benches."""
        return {
            "nodes": self.num_nodes,
            "live_nodes": self.live_node_count,
            "replication": self.replication,
            "blocks": len(self._blocks),
            "puts": self.puts,
            "fetches": self.fetches,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "drains": self.drains,
            "replications": self.replications,
            "integrity_faults": self.integrity_faults,
            "failovers": self.failovers,
            "re_replications": self.re_replications,
            "lineage_losses": self.lineage_losses,
            "excluded_nodes": len(self._excluded_nodes),
        }

    def register_telemetry(self, telemetry) -> None:
        """Expose the data tier's gauges/counters in a registry."""
        telemetry.counter(
            "repro_datasvc_integrity_faults",
            "Checksum mismatches detected on read",
            lambda: self.integrity_faults)
        telemetry.counter(
            "repro_datasvc_failovers",
            "Reads served from a non-preferred replica",
            lambda: self.failovers)
        telemetry.gauge(
            "repro_datasvc_live_nodes",
            "Storage nodes currently up",
            lambda: self.live_node_count)
        for node in self.nodes:
            telemetry.gauge(
                "repro_datasvc_write_behind_bytes",
                "Acked bytes not yet drained to disk",
                (lambda n=node: n.memory_resident_bytes),
                node=node.index)
            for index, scheduler in enumerate(node.disk_schedulers):
                telemetry.gauge(
                    "repro_datasvc_disk_queue_depth",
                    "Queued monotasks on a storage-node disk",
                    (lambda s=scheduler: s.queue_length),
                    node=node.index, disk=index)

    def record_fault(self, record: FaultEventRecord) -> None:
        """Forward a fault event (used by the injector via the engine)."""
        if self._metrics is not None:
            self._metrics.record_fault(record)
