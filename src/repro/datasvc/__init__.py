"""The disaggregated data tier: replicated, checksummed block service.

See :mod:`repro.datasvc.service` for the service itself and
``docs/datasvc.md`` for the architecture story.
"""

from repro.datasvc.monotasks import (DataSvcFetchMonotask, DataSvcMonotask,
                                     DataSvcPutMonotask)
from repro.datasvc.service import (DataService, Replica, StorageNode,
                                   StoredBlock, block_checksum)

__all__ = ["DataService", "StorageNode", "StoredBlock", "Replica",
           "block_checksum", "DataSvcMonotask", "DataSvcPutMonotask",
           "DataSvcFetchMonotask"]
