"""Data-service benchmark: disaggregated vs co-located shuffle, faulted.

The disaggregation argument (PAPERS.md: Whiz, F², Pocket) is that
shuffle output kept on compute machines dies with them -- a mid-job
crash forces lineage re-execution of every map task the machine ran.
With the data tier split out, map output lives on storage nodes and a
compute crash loses nothing.  This benchmark pins that contrast as
seeded, deterministic invariants:

* **Compute crash mid-shuffle** -- the same word count, same seed, same
  crash time, run co-located and disaggregated on both engines.  The
  co-located run shows ``fetch-failed`` attempts and re-executed maps;
  the disaggregated run must show **zero** of either.
* **Block corruption** -- one storage replica's checksum is flipped
  mid-run.  The read must detect the mismatch, fail over to the good
  replica, re-replicate, and bump the node's integrity suspicion
  counter -- with byte-identical job results.

Every number in the summary is a deterministic function of the seed, so
CI diffs the committed ``BENCH_datasvc.json`` *exactly*; the benchmark
itself runs twice and raises on any cross-run drift, which makes every
invocation double as a determinism check.

``scripts/bench_trajectory.py --bench datasvc`` runs exactly this code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["DataSvcWorkload", "run_datasvc_benchmark", "trajectory_summary"]


@dataclass(frozen=True)
class DataSvcWorkload:
    """The seeded fault scenarios the data-service benchmark drives."""

    machines: int = 4
    disks: int = 2
    seed: int = 2
    records: int = 4000
    num_partitions: int = 8
    num_nodes: int = 3
    replication: int = 2
    #: Compute machine crashed just after its maps finish.
    crash_machine: int = 1
    #: Crash at ``map_end * crash_scale`` (past the map stage, before
    #: the reduces have fetched everything).
    crash_scale: float = 1.02
    restart_after: float = 1.0
    #: Storage node whose first replica gets its checksum flipped.
    corrupt_node: int = 0
    corrupt_at: float = 0.004

    def params(self) -> Dict:
        """The workload knobs, for embedding in the JSON summary."""
        return {
            "machines": self.machines, "disks": self.disks,
            "seed": self.seed, "records": self.records,
            "num_partitions": self.num_partitions,
            "num_nodes": self.num_nodes, "replication": self.replication,
            "crash_machine": self.crash_machine,
            "crash_scale": self.crash_scale,
            "restart_after": self.restart_after,
            "corrupt_node": self.corrupt_node,
            "corrupt_at": self.corrupt_at,
        }


def _word_count(ctx, workload: DataSvcWorkload) -> List[Tuple[str, int]]:
    records = [f"w{i % 17} w{i % 11}" for i in range(workload.records)]
    rdd = ctx.parallelize(records,
                          num_partitions=workload.num_partitions)
    return sorted(rdd.flat_map(lambda line: line.split())
                     .map(lambda word: (word, 1))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())


def _run(workload: DataSvcWorkload, engine: str, disaggregated: bool,
         plan=None):
    """One job under one configuration; returns (ctx, service, results)."""
    from repro.api.context import AnalyticsContext
    from repro.cluster import hdd_cluster
    from repro.datasvc.service import DataService
    from repro.faults import FaultInjector

    cluster = hdd_cluster(num_machines=workload.machines,
                          num_disks=workload.disks, seed=workload.seed)
    service = None
    options: Dict = {}
    if disaggregated:
        service = DataService(cluster, num_nodes=workload.num_nodes,
                              replication=workload.replication)
        options["datasvc"] = service
    ctx = AnalyticsContext(cluster, engine=engine, **options)
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    results = _word_count(ctx, workload)
    return ctx, service, results


def _map_end(ctx) -> float:
    """When the first (map) stage of the last job finished."""
    stages = ctx.metrics.stage_records(ctx.last_result.job_id)
    return min(stage.end for stage in stages)


def _outcomes(ctx) -> Dict[str, int]:
    counts = ctx.metrics.attempt_outcome_counts(ctx.last_result.job_id)
    return {kind: count for kind, count in sorted(counts.items()) if count}


def _engine_invariants(workload: DataSvcWorkload, engine: str) -> Dict:
    """All deterministic numbers for one engine, gates enforced."""
    from repro.faults import (BlockCorruption, FaultPlan, MachineCrash,
                              StorageNodeCrash)

    clean_ctx, _, expected = _run(workload, engine, disaggregated=False)
    crash_at = _map_end(clean_ctx) * workload.crash_scale
    crash = FaultPlan([MachineCrash(at=crash_at,
                                    machine_id=workload.crash_machine,
                                    restart_after=workload.restart_after)])

    colocated_ctx, _, colocated_results = _run(
        workload, engine, disaggregated=False, plan=crash)
    datasvc_ctx, crash_svc, datasvc_results = _run(
        workload, engine, disaggregated=True, plan=crash)
    if colocated_results != expected or datasvc_results != expected:
        raise AssertionError(f"{engine}: crash run results diverged")
    datasvc_outcomes = _outcomes(datasvc_ctx)
    if datasvc_outcomes.get("fetch-failed"):
        raise AssertionError(
            f"{engine}: disaggregated run lost map output to a compute "
            f"crash: {datasvc_outcomes}")

    corruption = FaultPlan([BlockCorruption(at=workload.corrupt_at,
                                            node_index=workload.corrupt_node)])
    corrupt_ctx, corrupt_svc, corrupt_results = _run(
        workload, engine, disaggregated=True, plan=corruption)
    if corrupt_results != expected:
        raise AssertionError(f"{engine}: corruption run results diverged")
    stats = corrupt_svc.stats()
    if not (stats["integrity_faults"] and stats["failovers"]):
        raise AssertionError(
            f"{engine}: corruption was not detected and failed over: "
            f"{stats}")

    node_crash = FaultPlan([StorageNodeCrash(at=workload.corrupt_at,
                                             node_index=workload.corrupt_node)])
    node_ctx, node_svc, node_results = _run(
        workload, engine, disaggregated=True, plan=node_crash)
    if node_results != expected:
        raise AssertionError(f"{engine}: storage-crash results diverged")

    def svc_counts(service) -> Dict[str, float]:
        return {key: value for key, value in sorted(service.stats().items())
                if value}

    return {
        "distinct_words": len(expected),
        "crash_at": round(crash_at, 6),
        "colocated_crash_outcomes": _outcomes(colocated_ctx),
        "datasvc_crash_outcomes": datasvc_outcomes,
        "datasvc_crash_stats": svc_counts(crash_svc),
        "corruption_stats": svc_counts(corrupt_svc),
        "corruption_suspicions": {
            f"s{node}": count for node, count in
            sorted(corrupt_svc.suspicion_counts().items())},
        "storage_crash_stats": svc_counts(node_svc),
        "storage_crash_outcomes": _outcomes(node_ctx),
    }


def run_datasvc_benchmark(workload: Optional[DataSvcWorkload] = None,
                          repeats: int = 2) -> Dict:
    """Both engines' invariants, verified byte-stable across repeats."""
    if workload is None:
        workload = DataSvcWorkload()
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        invariants = {engine: _engine_invariants(workload, engine)
                      for engine in ("monospark", "spark")}
        if best is None:
            best = invariants
        elif invariants != best:
            raise AssertionError(
                f"non-deterministic benchmark run: {invariants} != {best}")
    return best


def trajectory_summary(invariants: Dict,
                       workload: Optional[DataSvcWorkload] = None,
                       repeats: int = 2) -> Dict:
    """The byte-stable JSON dict ``BENCH_datasvc.json`` holds."""
    if workload is None:
        workload = DataSvcWorkload()
    return {
        "benchmark": "datasvc_faults",
        "workload": workload.params(),
        "repeats": repeats,
        "invariants": invariants,
    }
