"""Spark-style baseline: fine-grained pipelined multitasks, slot scheduling."""

from repro.spark.engine import SparkEngine
from repro.spark.task import SparkTaskRun

__all__ = ["SparkEngine", "SparkTaskRun"]
