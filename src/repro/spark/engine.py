"""The Spark-style baseline engine.

Multitasks pipeline CPU, disk, and network at fine granularity inside a
single task thread (see :mod:`repro.spark.task`); the only scheduling
knob is the number of task *slots* per machine, which defaults to the
core count exactly as Spark does (§6.6: "Spark sets the number of slots
to be equal to the number of CPU cores").

``flush_writes`` reproduces the paper's second Spark configuration
(Figure 5), "where Spark writes through to disk rather than leaving disk
writes in the buffer cache".
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.config import CostModel, MB
from repro.engine.base import BaseEngine
from repro.engine.semantics import TaskWork
from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.spark.task import SparkTaskRun

__all__ = ["SparkEngine"]


class SparkEngine(BaseEngine):
    """Fine-grained-pipelining engine (the paper's comparison baseline)."""

    name = "spark"

    def __init__(self, cluster: Cluster,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsCollector] = None,
                 slots_per_machine: Optional[int] = None,
                 flush_writes: bool = False,
                 chunk_bytes: float = 8 * MB,
                 readahead_depth: int = 2,
                 fetch_inflight: int = 5,
                 scheduling_policy: str = "fifo",
                 recovery=None,
                 datasvc=None) -> None:
        if slots_per_machine is not None and slots_per_machine < 1:
            raise ConfigError(f"slots must be >= 1: {slots_per_machine}")
        if chunk_bytes <= 0:
            raise ConfigError(f"chunk bytes must be positive: {chunk_bytes}")
        if readahead_depth < 1 or fetch_inflight < 1:
            raise ConfigError("pipeline depths must be >= 1")
        self.slots_per_machine = slots_per_machine
        self.flush_writes = flush_writes
        self.chunk_bytes = chunk_bytes
        self.readahead_depth = readahead_depth
        self.fetch_inflight = fetch_inflight
        super().__init__(cluster, cost_model=cost_model, metrics=metrics,
                         scheduling_policy=scheduling_policy,
                         recovery=recovery, datasvc=datasvc)

    def concurrency_for(self, machine: Machine) -> int:
        if self.slots_per_machine is not None:
            return self.slots_per_machine
        return machine.spec.cores

    def run_task_on_machine(self, work: TaskWork,
                            machine: Machine) -> Generator:
        return (yield from SparkTaskRun(self, work, machine).run())

    def health_estimator(self):
        """Task-level EWMA: the best a framework whose tasks blend
        resources can do (§6.6) -- it sees slowness but cannot say
        which machine's which resource caused it."""
        from repro.health.estimators import TaskEwmaEstimator
        return TaskEwmaEstimator(self.metrics)
