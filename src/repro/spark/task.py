"""Chunk-pipelined execution of one Spark-style multitask.

This reproduces the execution model of §2.1: a single task thread
processes its data in fine-grained pieces, with the OS doing I/O in the
background -- disk reads arrive through readahead into the buffer cache,
disk writes land in the buffer cache and are flushed asynchronously, and
shuffle data is fetched with a bounded number of in-flight requests.
The thread computes on piece *i* while the OS/fetchers work on *i+1*,
which is exactly the fine-grained pipelining the paper contrasts with
monotasks, along with its consequences: non-uniform resource use within
a task, OS-level disk contention between tasks, and buffer-cache writes
the framework never sees (§2.2).
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional

from repro.api.plan import (CachedInput, DfsInput, DfsOutput, LocalInput,
                            ShuffleInput, ShuffleOutput)
from repro.cluster.machine import Machine
from repro.engine.semantics import ResolvedInput, TaskWork
from repro.errors import ExecutionError, ReproError
from repro.metrics.events import ResourceUsageRecord
from repro.simulator import Environment, Store
from repro.simulator.network import FLOW_LATENCY_S

__all__ = ["SparkTaskRun"]


class _Unit:
    """One pipelined piece of a task's input.

    Shuffle units are per-source-machine groups of bucket segments
    (Spark's fetcher requests all needed blocks from one machine over
    one connection, and the OS merges the segment reads); ``blocks``
    lists the (block_id, nbytes) segments of such a group.
    """

    __slots__ = ("index", "stored_bytes", "source", "blocks")

    def __init__(self, index: int, stored_bytes: float,
                 source: ResolvedInput,
                 blocks: Optional[List] = None) -> None:
        self.index = index
        self.stored_bytes = stored_bytes
        self.source = source
        self.blocks = blocks


class _FetchFailure:
    """Sentinel a feeder pushes through the pipeline when a fetch fails
    (disk/machine fault), so the error surfaces in the task's own frame
    instead of crashing the feeder process."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class SparkTaskRun:
    """Drives one multitask's resource use on its assigned machine."""

    def __init__(self, engine: "repro.spark.engine.SparkEngine",
                 work: TaskWork, machine: Machine) -> None:
        self.engine = engine
        self.work = work
        self.machine = machine
        self.env: Environment = engine.env
        self.usage = ResourceUsageRecord(
            job_id=work.descriptor.job_id,
            stage_id=work.descriptor.stage_id,
            task_index=work.descriptor.index,
            machine_id=machine.machine_id)

    # -- top level ------------------------------------------------------------------

    def run(self) -> Generator:
        """Drive the whole multitask: fetch, compute, write.

        Returns the disk index output was written to; the engine
        registers outputs once the attempt wins its task."""
        engine = self.engine
        work = self.work
        cost = engine.cost

        yield from self._compute(cost.task_setup_s)

        units = self._build_units()
        # Note: may be 0.0 (e.g. LocalInput ships with the task); the
        # compute loop then spreads CPU evenly across units instead of
        # proportionally to bytes.
        total_stored = sum(unit.stored_bytes for unit in units)
        ready: Store = Store(self.env, capacity=self._pipeline_depth())
        self.env.process(self._feed_units(units, ready))

        out_disk = self.machine.pick_write_disk()
        write_per_unit = self._writes_per_unit()
        for _ in range(len(units)):
            unit = yield ready.get()
            if isinstance(unit, _FetchFailure):
                raise unit.error
            fraction = (unit.stored_bytes / total_stored if total_stored
                        else 1.0 / len(units))
            yield from self._compute(work.total_cpu_s * fraction)
            if write_per_unit:
                yield from self._write_output_piece(
                    work.output_stored_bytes * fraction, out_disk,
                    f"{work.descriptor.task_id}:out:{unit.index}")

        yield from self._write_shuffle_buckets(out_disk)
        yield from self._write_dfs_block()
        yield from self._compute(cost.task_cleanup_s)
        engine.metrics.record_resource_usage(self.usage)
        # The engine commits (registers) outputs only if this attempt
        # wins the task -- see BaseEngine._execute_task.
        return out_disk

    # -- input units -------------------------------------------------------------------

    def _build_units(self) -> List[_Unit]:
        spec = self.work.descriptor.input
        units: List[_Unit] = []
        if isinstance(spec, DfsInput):
            source = self.work.inputs[0]
            chunk = self.engine.chunk_bytes
            count = max(1, math.ceil(source.stored_bytes / chunk))
            remaining = source.stored_bytes
            for index in range(count):
                size = min(chunk, remaining)
                remaining -= size
                units.append(_Unit(index, size, source))
        elif isinstance(spec, (LocalInput, CachedInput)):
            units.append(_Unit(0, self.work.inputs[0].stored_bytes,
                               self.work.inputs[0]))
        elif isinstance(spec, ShuffleInput):
            units = self._shuffle_units()
            if not units:
                # Degenerate empty shuffle: one empty unit keeps the
                # pipeline uniform.
                from repro.datamodel.serialization import DESERIALIZED
                units = [_Unit(0, 0.0, ResolvedInput(
                    partition=self.work.input_partition, stored_bytes=0.0,
                    fmt=DESERIALIZED, in_memory=True))]
        else:
            raise ExecutionError(f"unknown input spec: {spec!r}")
        return units

    def _shuffle_units(self) -> List[_Unit]:
        """Group bucket fetches by (machine, disk, residency)."""
        groups: dict = {}
        for source in self.work.inputs:
            if source.stored_bytes <= 0:
                continue
            key = (source.machine_id, source.disk_index, source.in_memory)
            groups.setdefault(key, []).append(source)
        units: List[_Unit] = []
        for index, (key, sources) in enumerate(sorted(
                groups.items(),
                key=lambda item: (str(item[0][0]), str(item[0][1])))):
            total = sum(s.stored_bytes for s in sources)
            blocks = [(s.block_id or f"anon:{i}", s.stored_bytes)
                      for i, s in enumerate(sources)]
            units.append(_Unit(index, total, sources[0], blocks=blocks))
        return units

    def _pipeline_depth(self) -> int:
        if isinstance(self.work.descriptor.input, ShuffleInput):
            return self.engine.fetch_inflight
        return self.engine.readahead_depth

    def _feed_units(self, units: List[_Unit], ready: Store) -> Generator:
        """Fetch units in order, ahead of the compute loop.

        Sequential sources (DFS blocks) are prefetched strictly in order
        -- real readahead does not seek back and forth within one file.
        Shuffle fetches keep ``fetch_inflight`` requests outstanding.
        """
        if isinstance(self.work.descriptor.input, ShuffleInput):
            yield from self._feed_shuffle(units, ready)
            return
        for unit in units:
            try:
                yield self.env.process(self._fetch_unit(unit))
            except ReproError as exc:
                yield ready.put(_FetchFailure(exc))
                return
            yield ready.put(unit)

    def _feed_shuffle(self, units: List[_Unit], ready: Store) -> Generator:
        inflight = self.engine.fetch_inflight
        active: List = []
        for unit in units:

            def fetch(u: _Unit) -> Generator:
                try:
                    yield self.env.process(self._fetch_unit(u))
                except ReproError as exc:
                    yield ready.put(_FetchFailure(exc))
                    return
                yield ready.put(u)

            active.append(self.env.process(fetch(unit)))
            if len(active) >= inflight:
                # Wait for the oldest outstanding fetch before issuing more.
                finished = active.pop(0)
                yield finished
        for proc in active:
            yield proc

    def _fetch_unit(self, unit: _Unit) -> Generator:
        """Bring one unit's bytes into this machine's memory."""
        source = unit.source
        machine = self.machine
        if unit.stored_bytes <= 0:
            return
        local = (source.machine_id is None
                 or source.machine_id == machine.machine_id)
        if local:
            if source.in_memory:
                yield self.env.timeout(
                    unit.stored_bytes / machine.spec.memcpy_bps)
            else:
                yield self._cache_read(machine, unit)
                self.usage.disk_bytes_read += unit.stored_bytes
        else:
            svc = self.engine.datasvc
            if svc is not None and svc.owns_machine(source.machine_id):
                # The data tier serves the unit: checksum-verified read
                # with replica failover, then a network transfer.
                yield from self._fetch_from_datasvc(svc, unit)
                self.usage.network_bytes += unit.stored_bytes
                return
            remote = self.engine.cluster.machine(source.machine_id)
            yield self.env.timeout(FLOW_LATENCY_S)  # request round trip
            if not source.in_memory:
                yield self._cache_read(remote, unit)
                self.usage.disk_bytes_read += unit.stored_bytes
            yield machine.network.transfer(
                source.machine_id, machine.machine_id, unit.stored_bytes,
                label=self._unit_block_id(unit))
            self.usage.network_bytes += unit.stored_bytes

    def _fetch_from_datasvc(self, svc, unit: _Unit) -> Generator:
        descriptor = self.work.descriptor
        ids = (descriptor.job_id, descriptor.stage_id, descriptor.index)
        dst = self.machine.machine_id
        if unit.blocks is not None:
            yield from svc.fetch_shuffle(dst, list(unit.blocks), ids)
            return
        spec = descriptor.input
        if isinstance(spec, DfsInput):
            yield from svc.read_block(dst, spec.block.block_id,
                                      unit.stored_bytes, ids)
            return
        yield from svc.read_block(dst, self._unit_block_id(unit),
                                  unit.stored_bytes, ids)

    def _cache_read(self, machine: Machine, unit: _Unit):
        if unit.blocks is not None:
            return machine.cache.read_many(unit.source.disk_index,
                                           unit.blocks)
        return machine.cache.read(unit.source.disk_index, unit.stored_bytes,
                                  self._unit_block_id(unit))

    def _unit_block_id(self, unit: _Unit) -> str:
        source = unit.source
        if source.block_id is not None:
            # Shuffle bucket: same id the map side wrote, so recently
            # written shuffle data is served from the OS buffer cache.
            return source.block_id
        block = self.work.descriptor.input
        if isinstance(block, DfsInput):
            return f"{block.block.block_id}:c{unit.index}"
        return f"{self.work.descriptor.task_id}:in:{unit.index}"

    # -- compute & output ---------------------------------------------------------------

    def _compute(self, seconds: float) -> Generator:
        if seconds <= 0:
            return
        yield self.machine.cpu.run(seconds)
        self.usage.cpu_s += seconds

    def _writes_per_unit(self) -> bool:
        # Data-service runs stream the whole output block at the end
        # instead of spilling pieces to the local disk.
        return (isinstance(self.work.descriptor.output, (DfsOutput,))
                and self.engine.datasvc is None)

    def _write_output_piece(self, nbytes: float, disk_index: int,
                            block_id: str) -> Generator:
        if nbytes <= 0:
            return
        yield self.machine.cache.write(disk_index, nbytes, block_id,
                                       write_through=self.engine.flush_writes)
        self.usage.disk_bytes_written += nbytes

    def _write_dfs_block(self) -> Generator:
        """Stream a DFS output block to the data service (if enabled)."""
        output = self.work.descriptor.output
        svc = self.engine.datasvc
        if svc is None or not isinstance(output, DfsOutput):
            return
        descriptor = self.work.descriptor
        yield from svc.write_block(
            self.machine.machine_id, f"dfsout:{descriptor.task_id}",
            self.work.output_stored_bytes,
            (descriptor.job_id, descriptor.stage_id, descriptor.index),
            payload=(self.work.output_partition
                     if output.keep_payload else None))
        self.usage.network_bytes += self.work.output_stored_bytes

    def _write_shuffle_buckets(self, disk_index: int) -> Generator:
        output = self.work.descriptor.output
        if not isinstance(output, ShuffleOutput):
            return
        if output.in_memory:
            # No disk I/O; the engine accounts the resident bytes when
            # the winning attempt commits.
            return
        svc = self.engine.datasvc
        if svc is not None:
            # Disaggregated shuffle: stream the buckets to the service
            # instead of the local disk.
            descriptor = self.work.descriptor
            buckets = {
                reduce_index: output.fmt.stored_bytes(bucket.data_bytes)
                for reduce_index, bucket
                in sorted((self.work.shuffle_buckets or {}).items())
            }
            yield from svc.put_map_output(
                self.machine.machine_id, output.shuffle_id,
                descriptor.index, buckets,
                (descriptor.job_id, descriptor.stage_id, descriptor.index))
            self.usage.network_bytes += sum(buckets.values())
            return
        if self.engine.flush_writes and self.work.output_stored_bytes > 0:
            # The forced-flush configuration syncs whole shuffle files,
            # not one tiny write per bucket.
            yield self.machine.cache.write(
                disk_index, self.work.output_stored_bytes,
                f"{self.work.descriptor.task_id}:shuffle",
                write_through=True)
            self.usage.disk_bytes_written += self.work.output_stored_bytes
            return
        for reduce_index, bucket in sorted(
                (self.work.shuffle_buckets or {}).items()):
            nbytes = output.fmt.stored_bytes(bucket.data_bytes)
            if nbytes <= 0:
                continue
            # Must match ShuffleBucket.block_id so reducers reading the
            # bucket soon after can hit the OS buffer cache.
            block_id = (f"shuffle{output.shuffle_id}"
                        f"-m{self.work.descriptor.index}-r{reduce_index}")
            yield self.machine.cache.write(
                disk_index, nbytes, block_id,
                write_through=self.engine.flush_writes)
            self.usage.disk_bytes_written += nbytes
