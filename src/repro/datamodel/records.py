"""The partition data model: real records with modeled sizes.

Experiments in the paper move hundreds of gigabytes; a Python process
cannot hold that many live objects, and does not need to.  Every
:class:`Partition` therefore carries:

* ``records`` -- the *real* payload.  Transformations genuinely execute
  (word count counts, sort sorts, join joins), so the engines are testable
  for correctness, not just for timing.
* ``record_count`` -- the *modeled* number of records this partition
  stands for.  When a workload scales down (e.g. representing a 600 GB
  sort with a few hundred real records per partition), ``record_count``
  preserves the true cardinality for CPU cost accounting.
* ``data_bytes`` -- the *modeled* serialized size, which drives disk and
  network time.

When an operator transforms real records, the modeled quantities scale by
the observed real ratios (or by ratios the operator declares explicitly;
see :mod:`repro.api.ops`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import SimulationError

__all__ = ["Partition", "estimate_record_bytes"]


def estimate_record_bytes(record: Any) -> float:
    """A deterministic, portable estimate of a record's serialized size.

    Used as the default sizer when a workload does not declare one:
    numbers are 8 bytes, strings their length, containers the sum of
    their elements plus small framing overhead.
    """
    if record is None:
        return 1.0
    if isinstance(record, bool):
        return 1.0
    if isinstance(record, (int, float)):
        return 8.0
    if isinstance(record, str):
        return float(len(record)) + 4.0
    if isinstance(record, bytes):
        return float(len(record)) + 4.0
    if isinstance(record, dict):
        return 8.0 + sum(estimate_record_bytes(k) + estimate_record_bytes(v)
                         for k, v in record.items())
    if isinstance(record, (list, tuple, set, frozenset)):
        return 8.0 + sum(estimate_record_bytes(item) for item in record)
    # Fallback for workload-specific objects that define their own weight.
    weight = getattr(record, "modeled_bytes", None)
    if weight is not None:
        return float(weight)
    return 64.0


@dataclass(slots=True)
class Partition:
    """One partition of a dataset."""

    records: List[Any] = field(default_factory=list)
    record_count: float = 0.0
    data_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.record_count < 0 or self.data_bytes < 0:
            raise SimulationError("modeled sizes must be non-negative")

    @classmethod
    def from_records(cls, records: Iterable[Any],
                     sizer: Callable[[Any], float] = estimate_record_bytes,
                     record_count: Optional[float] = None,
                     data_bytes: Optional[float] = None) -> "Partition":
        """Build a partition, measuring modeled sizes from the records
        unless explicit modeled values are supplied."""
        records = list(records)
        if record_count is None:
            record_count = float(len(records))
        if data_bytes is None:
            data_bytes = float(sum(sizer(r) for r in records))
        return cls(records=records, record_count=record_count,
                   data_bytes=data_bytes)

    @classmethod
    def empty(cls) -> "Partition":
        return cls(records=[], record_count=0.0, data_bytes=0.0)

    @property
    def scale(self) -> float:
        """Modeled records per real record (1.0 for unscaled data)."""
        if not self.records:
            return 1.0
        return self.record_count / len(self.records)

    @property
    def mean_record_bytes(self) -> float:
        """Modeled bytes per modeled record."""
        if self.record_count <= 0:
            return 0.0
        return self.data_bytes / self.record_count

    def with_records(self, records: Sequence[Any], record_count: float,
                     data_bytes: float) -> "Partition":
        """A copy with new records and modeled sizes."""
        return Partition(records=list(records),
                         record_count=max(0.0, record_count),
                         data_bytes=max(0.0, data_bytes))

    def split_proportionally(self, buckets: Sequence[List[Any]],
                             own_records: bool = False) -> List["Partition"]:
        """Split the modeled sizes across real-record buckets.

        Used by the shuffle writer: real records are hashed into buckets,
        and each bucket inherits a share of the modeled count/bytes
        proportional to its real record share.  Pass ``own_records=True``
        when the bucket lists are freshly built and may be adopted
        without copying (the shuffle writer's case: a partitioner's
        output is not reused).
        """
        total_real = sum(len(bucket) for bucket in buckets)
        parts = []
        for bucket in buckets:
            if total_real == 0:
                share = 1.0 / len(buckets) if buckets else 0.0
            else:
                share = len(bucket) / total_real
            parts.append(Partition(
                records=bucket if own_records else list(bucket),
                record_count=self.record_count * share,
                data_bytes=self.data_bytes * share))
        return parts

    @staticmethod
    def merge(parts: Iterable["Partition"]) -> "Partition":
        """Concatenate partitions, summing their modeled sizes."""
        records: List[Any] = []
        record_count = 0.0
        data_bytes = 0.0
        for part in parts:
            records.extend(part.records)
            record_count += part.record_count
            data_bytes += part.data_bytes
        return Partition(records=records, record_count=record_count,
                         data_bytes=data_bytes)

    def __len__(self) -> int:
        return len(self.records)
