"""Serialization, deserialization, and compression cost model.

The paper separates deserialization time from "the remaining computation"
inside each compute monotask (§6.3), because predicting the benefit of
storing data deserialized in memory requires knowing exactly how much CPU
time (de)serialization costs.  This module is the single place those
costs are computed, for both engines and the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModel
from repro.datamodel.records import Partition

__all__ = ["DataFormat", "deserialize_seconds", "serialize_seconds",
           "PLAIN", "COMPRESSED", "DESERIALIZED"]


@dataclass(frozen=True)
class DataFormat:
    """How a dataset is physically encoded.

    * ``serialized``: bytes that must be decoded before compute (the
      normal on-disk / on-wire format).
    * ``compressed``: additionally run through a compression codec (the
      Big Data Benchmark uses compressed sequence files).
    * ``compression_ratio``: on-disk bytes / logical bytes when
      compressed.
    """

    serialized: bool = True
    compressed: bool = False
    compression_ratio: float = 0.5

    def stored_bytes(self, logical_bytes: float) -> float:
        """Bytes on disk / on the wire for ``logical_bytes`` of data."""
        if self.compressed:
            return logical_bytes * self.compression_ratio
        return logical_bytes


PLAIN = DataFormat(serialized=True, compressed=False)
COMPRESSED = DataFormat(serialized=True, compressed=True)
#: In-memory, already-deserialized data (cached RDDs): no decode cost.
DESERIALIZED = DataFormat(serialized=False, compressed=False)


def deserialize_seconds(partition: Partition, fmt: DataFormat,
                        cost: CostModel) -> float:
    """CPU seconds to turn stored bytes back into records."""
    if not fmt.serialized:
        return 0.0
    seconds = (cost.deserialize_s_per_byte * partition.data_bytes
               + cost.deserialize_s_per_record * partition.record_count)
    if fmt.compressed:
        seconds += cost.decompress_s_per_byte * fmt.stored_bytes(
            partition.data_bytes)
    return seconds


def serialize_seconds(partition: Partition, fmt: DataFormat,
                      cost: CostModel) -> float:
    """CPU seconds to encode records into stored bytes."""
    if not fmt.serialized:
        return 0.0
    seconds = (cost.serialize_s_per_byte * partition.data_bytes
               + cost.serialize_s_per_record * partition.record_count)
    if fmt.compressed:
        seconds += cost.compress_s_per_byte * fmt.stored_bytes(
            partition.data_bytes)
    return seconds
