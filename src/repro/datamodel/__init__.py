"""Data model: partitions with modeled sizes, formats, shuffle registry."""

from repro.datamodel.records import Partition, estimate_record_bytes
from repro.datamodel.serialization import (COMPRESSED, DESERIALIZED, PLAIN,
                                           DataFormat, deserialize_seconds,
                                           serialize_seconds)
from repro.datamodel.shuffle import MapOutputRegistry, ShuffleBucket

__all__ = [
    "Partition",
    "estimate_record_bytes",
    "DataFormat",
    "PLAIN",
    "COMPRESSED",
    "DESERIALIZED",
    "deserialize_seconds",
    "serialize_seconds",
    "MapOutputRegistry",
    "ShuffleBucket",
]
