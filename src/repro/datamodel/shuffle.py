"""Shuffle bookkeeping shared by both engines.

The map side of a shuffle writes one bucket per reduce partition; the
reduce side must discover where every bucket lives.  A
:class:`MapOutputRegistry` plays the role of Spark's MapOutputTracker:
map tasks register their buckets (with location and storage medium), and
reduce tasks query the registry to plan fetches.

Buckets carry real records (for correctness) plus modeled bytes (for
simulated I/O time), like everything else in the data model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datamodel.records import Partition
from repro.errors import ShuffleError

__all__ = ["ShuffleBucket", "MapOutputRegistry"]


@dataclass(slots=True)
class ShuffleBucket:
    """One (map task, reduce partition) bucket of shuffle data."""

    shuffle_id: int
    map_index: int
    reduce_index: int
    machine_id: int
    #: Disk the bucket was written to, or None if it lives in memory
    #: (the paper's ML workload stores shuffle data in-memory).
    disk_index: Optional[int]
    partition: Partition

    @property
    def nbytes(self) -> float:
        """Modeled bytes in the bucket."""
        return self.partition.data_bytes

    @property
    def block_id(self) -> str:
        """Storage id: shuffle, map task, and reduce partition."""
        return (f"shuffle{self.shuffle_id}"
                f"-m{self.map_index}-r{self.reduce_index}")

    @property
    def in_memory(self) -> bool:
        """True when the bucket was never written to disk."""
        return self.disk_index is None


class MapOutputRegistry:
    """Cluster-wide registry of where shuffle buckets live."""

    def __init__(self) -> None:
        #: shuffle_id -> reduce_index -> list of buckets (one per map task).
        self._buckets: Dict[int, Dict[int, List[ShuffleBucket]]] = {}
        #: shuffle_id -> map_index -> (machine_id, disk_index).  This is
        #: the lineage index: a machine crash invalidates entries here,
        #: and the engine re-executes exactly the missing map tasks.
        self._locations: Dict[int, Dict[int, Tuple[int, Optional[int]]]] = {}
        self._num_maps: Dict[int, int] = {}
        #: shuffle_id -> True once its reduce lists are map-index-sorted.
        self._sorted: Dict[int, bool] = {}

    def expect_maps(self, shuffle_id: int, num_maps: int) -> None:
        """Declare how many map tasks the shuffle has (for completeness
        checks when reduce tasks start fetching)."""
        self._num_maps[shuffle_id] = num_maps
        self._locations.setdefault(shuffle_id, {})
        self._buckets.setdefault(shuffle_id, {})

    def register_map_output(self, shuffle_id: int, map_index: int,
                            machine_id: int, disk_index: Optional[int],
                            buckets: Dict[int, Partition]) -> None:
        """Record every bucket a map task produced.

        Re-registering a map index (a re-executed or speculative map
        task) replaces the previous entry rather than duplicating it.
        """
        locations = self._locations.setdefault(shuffle_id, {})
        if map_index in locations:
            self._drop_map(shuffle_id, map_index)
        per_reduce = self._buckets.setdefault(shuffle_id, {})
        for reduce_index, partition in buckets.items():
            per_reduce.setdefault(reduce_index, []).append(ShuffleBucket(
                shuffle_id=shuffle_id, map_index=map_index,
                reduce_index=reduce_index, machine_id=machine_id,
                disk_index=disk_index, partition=partition))
        locations[map_index] = (machine_id, disk_index)
        self._sorted[shuffle_id] = False

    def buckets_for_reduce(self, shuffle_id: int,
                           reduce_index: int) -> List[ShuffleBucket]:
        """All buckets a reduce task must fetch, sorted by map index.

        Sorting is cached per reduce list: every reduce task of a stage
        queries the same lists, so re-sorting per query is paid once per
        registration instead.
        """
        if shuffle_id not in self._buckets:
            raise ShuffleError(f"unknown shuffle {shuffle_id}")
        expected = self._num_maps.get(shuffle_id)
        registered = len(self._locations.get(shuffle_id, {}))
        if expected is not None and registered < expected:
            raise ShuffleError(
                f"shuffle {shuffle_id}: only {registered}/{expected} map "
                f"outputs registered")
        buckets = self._buckets[shuffle_id].get(reduce_index)
        if buckets is None:
            return []
        if not self._sorted.get(shuffle_id, False):
            for per_reduce in self._buckets[shuffle_id].values():
                per_reduce.sort(key=lambda b: b.map_index)
            self._sorted[shuffle_id] = True
        return list(buckets)

    # -- lineage invalidation (fault recovery) ------------------------------

    def missing_maps(self, shuffle_id: int) -> List[int]:
        """Map indices whose output is currently unregistered."""
        expected = self._num_maps.get(shuffle_id)
        if expected is None:
            return []
        present = self._locations.get(shuffle_id, {})
        if len(present) >= expected:
            return []  # Complete: skip the per-index scan (hot path).
        return [index for index in range(expected) if index not in present]

    def invalidate_machine(self, machine_id: int) -> List[Tuple[int, int]]:
        """Drop every map output stored on a crashed machine.

        Returns the (shuffle_id, map_index) pairs lost, which become the
        lineage the engine must re-execute.
        """
        lost: List[Tuple[int, int]] = []
        for shuffle_id, locations in self._locations.items():
            for map_index, (machine, _disk) in list(locations.items()):
                if machine == machine_id:
                    self._drop_map(shuffle_id, map_index)
                    lost.append((shuffle_id, map_index))
        return lost

    def invalidate_disk(self, machine_id: int,
                        disk_index: int) -> List[Tuple[int, int]]:
        """Drop map outputs written to one failed disk (in-memory
        buckets on the machine survive)."""
        lost: List[Tuple[int, int]] = []
        for shuffle_id, locations in self._locations.items():
            for map_index, (machine, disk) in list(locations.items()):
                if machine == machine_id and disk == disk_index:
                    self._drop_map(shuffle_id, map_index)
                    lost.append((shuffle_id, map_index))
        return lost

    def invalidate_map(self, shuffle_id: int, map_index: int) -> bool:
        """Drop one map task's registered output (all replicas of its
        block were lost, e.g. in the data service).  Returns True when
        an entry existed; the engine's fetch-failed path then
        re-executes exactly this map from lineage."""
        locations = self._locations.get(shuffle_id)
        if locations is None or map_index not in locations:
            return False
        self._drop_map(shuffle_id, map_index)
        return True

    def _drop_map(self, shuffle_id: int, map_index: int) -> None:
        self._locations[shuffle_id].pop(map_index, None)
        per_reduce = self._buckets.get(shuffle_id, {})
        for buckets in per_reduce.values():
            buckets[:] = [b for b in buckets if b.map_index != map_index]

    def total_shuffle_bytes(self, shuffle_id: int) -> float:
        """All registered bytes of one shuffle."""
        per_reduce = self._buckets.get(shuffle_id, {})
        return sum(bucket.nbytes
                   for buckets in per_reduce.values()
                   for bucket in buckets)

    def shuffle_ids(self) -> Iterator[int]:
        """Registered shuffle ids, ascending."""
        return iter(sorted(self._buckets))
