"""Continuous multi-tenant job serving (``repro.serve``).

The batch engines answer "how long does this job take"; this package
answers "how does the system behave as a *service*": open-loop workload
generators submit jobs over time, an admission controller sheds load,
a job scheduler divides capacity between tenants, and per-tenant SLO
accounting reports latency distributions with queueing-delay
attribution.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, CostEstimator
from repro.serve.scheduler import (DeadlineScheduler, FifoScheduler,
                                   JobScheduler, WeightedFairScheduler,
                                   make_scheduler)
from repro.serve.server import JobRequest, JobServer, Tenant
from repro.serve.slo import ServeReport, TenantStats
from repro.serve.workload import (BurstyArrivals, JobTemplate,
                                  PoissonArrivals, TraceArrivals,
                                  bdb_template, instantiate_plan,
                                  ml_template, sort_template,
                                  wordcount_template)

__all__ = [
    "AdmissionController", "CostEstimator",
    "JobScheduler", "FifoScheduler", "WeightedFairScheduler",
    "DeadlineScheduler", "make_scheduler",
    "JobServer", "JobRequest", "Tenant",
    "ServeReport", "TenantStats",
    "PoissonArrivals", "BurstyArrivals", "TraceArrivals",
    "JobTemplate", "instantiate_plan",
    "sort_template", "wordcount_template", "bdb_template", "ml_template",
]
