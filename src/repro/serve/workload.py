"""Open-loop workload generation for the serving layer.

Arrival processes describe *when* requests arrive; job templates
describe *what* each request runs.  All randomness is drawn from named
:class:`~repro.simulator.rng.RngStreams` streams, so the same seed
yields the same arrival trace regardless of what else the simulation
does -- a serving run is a pure function of (cluster seed, workload
seed, fault plan).

Templates follow the Execution Templates idea (Mashayekhi et al.,
PAPERS.md): a repeatedly-submitted job is compiled through the DAG
scheduler *once*, and each submission re-instantiates the cached plan
with fresh job/shuffle ids instead of re-running the control plane.
:func:`instantiate_plan` is that re-instantiation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api.context import AnalyticsContext
from repro.api.dagscheduler import DagScheduler
from repro.api.ops import OpCost
from repro.api.plan import (CachedInput, DfsOutput, JobPlan, ShuffleInput,
                            ShuffleOutput, Stage)
from repro.config import GB, MB
from repro.errors import ConfigError, PlanError
from repro.workloads.bigdata import (BdbScale, Q1_SELECTIVITY,
                                     RANKINGS_FILTER_COST,
                                     generate_bdb_tables)
from repro.workloads.sortgen import (PARTITION_S_PER_RECORD,
                                     SORT_S_PER_RECORD, SortWorkload,
                                     generate_sort_input, sort_boundaries)
from repro.workloads.wordcount import generate_text_input

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "JobTemplate",
    "instantiate_plan",
    "sort_template",
    "wordcount_template",
    "bdb_template",
    "ml_template",
]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson arrivals at ``rate_per_s`` until ``horizon_s``."""

    rate_per_s: float
    horizon_s: float

    def __post_init__(self) -> None:
        if not (self.rate_per_s > 0):
            raise ConfigError(f"arrival rate must be > 0: {self.rate_per_s}")
        if not (self.horizon_s > 0) or self.horizon_s == float("inf"):
            raise ConfigError(f"horizon must be finite and > 0: "
                              f"{self.horizon_s}")

    def times(self, stream: Random) -> Iterator[float]:
        """Absolute arrival times drawn from ``stream``."""
        t = 0.0
        while True:
            t += stream.expovariate(self.rate_per_s)
            if t >= self.horizon_s:
                return
            yield t


@dataclass(frozen=True)
class BurstyArrivals:
    """Diurnal arrivals: the rate oscillates between base and peak.

    A nonhomogeneous Poisson process sampled by thinning: candidates are
    drawn at ``peak_rate_per_s`` and kept with probability
    ``rate(t) / peak_rate_per_s``, where the rate follows a raised
    cosine with period ``period_s`` (trough at t=0, crest at half a
    period) -- a scaled-down day/night load cycle.
    """

    base_rate_per_s: float
    peak_rate_per_s: float
    period_s: float
    horizon_s: float

    def __post_init__(self) -> None:
        if not (0 < self.base_rate_per_s <= self.peak_rate_per_s):
            raise ConfigError(
                f"need 0 < base <= peak rate: {self.base_rate_per_s}, "
                f"{self.peak_rate_per_s}")
        if not (self.period_s > 0):
            raise ConfigError(f"period must be > 0: {self.period_s}")
        if not (self.horizon_s > 0) or self.horizon_s == float("inf"):
            raise ConfigError(f"horizon must be finite and > 0: "
                              f"{self.horizon_s}")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        swing = (self.peak_rate_per_s - self.base_rate_per_s) / 2.0
        return (self.base_rate_per_s + swing
                - swing * math.cos(2.0 * math.pi * t / self.period_s))

    def times(self, stream: Random) -> Iterator[float]:
        """Absolute arrival times drawn from ``stream`` (thinning)."""
        t = 0.0
        while True:
            t += stream.expovariate(self.peak_rate_per_s)
            if t >= self.horizon_s:
                return
            if stream.random() < self.rate_at(t) / self.peak_rate_per_s:
                yield t


@dataclass(frozen=True)
class TraceArrivals:
    """Replay a recorded arrival trace exactly (no randomness used)."""

    times_s: Tuple[float, ...]

    def __init__(self, times_s: Sequence[float]) -> None:
        ordered = tuple(sorted(float(t) for t in times_s))
        if ordered and (not (ordered[0] >= 0)
                        or ordered[-1] == float("inf")):
            raise ConfigError(
                f"trace times must be finite and >= 0: {times_s}")
        object.__setattr__(self, "times_s", ordered)

    @property
    def horizon_s(self) -> float:
        """End of the trace (the last arrival)."""
        return self.times_s[-1] if self.times_s else 0.0

    def times(self, stream: Random) -> Iterator[float]:
        """The recorded times, in order."""
        return iter(self.times_s)


# ---------------------------------------------------------------------------
# Plan re-instantiation (Execution-Templates-style)
# ---------------------------------------------------------------------------

def instantiate_plan(plan: JobPlan, scheduler: DagScheduler) -> JobPlan:
    """A fresh copy of ``plan`` with new job and shuffle ids.

    The expensive control-plane work (lineage walk, stage cutting,
    locality resolution) is reused from the compiled template; only the
    identifiers that must be globally unique -- the job id, every
    shuffle id, and DFS output file names -- are rewritten.  Plans that
    cache partitions cannot be re-instantiated: cache ids are bound to
    one job's block-manager state.
    """
    job_id = scheduler.allocate_job_id()
    shuffle_ids: Dict[int, int] = {}

    def remap(old: int) -> int:
        if old not in shuffle_ids:
            shuffle_ids[old] = scheduler.allocate_shuffle_id()
        return shuffle_ids[old]

    stages: List[Stage] = []
    for stage in plan.stages:
        tasks = []
        for task in stage.tasks:
            if task.cache is not None or isinstance(task.input, CachedInput):
                raise PlanError(
                    f"plan {plan.name!r} caches partitions and cannot be "
                    f"used as a serving template")
            task_input = task.input
            if isinstance(task_input, ShuffleInput):
                task_input = replace(task_input, deps=[
                    replace(dep, shuffle_id=remap(dep.shuffle_id))
                    for dep in task_input.deps])
            output = task.output
            if isinstance(output, ShuffleOutput):
                output = replace(output, shuffle_id=remap(output.shuffle_id))
            elif isinstance(output, DfsOutput):
                # Each instance writes its own file; appending every
                # submission to one shared file would grow it forever.
                output = replace(output,
                                 file_name=f"{output.file_name}.j{job_id}")
            tasks.append(replace(task, job_id=job_id, input=task_input,
                                 output=output))
        stages.append(Stage(job_id=job_id, stage_id=stage.stage_id,
                            tasks=tasks,
                            parent_stage_ids=list(stage.parent_stage_ids),
                            name=stage.name))
    return JobPlan(job_id=job_id, stages=stages, name=plan.name)


class JobTemplate:
    """A named job type submitted repeatedly by the serving layer.

    ``build(ctx)`` compiles the template's :class:`JobPlan`; it runs at
    most once per context (the compiled plan is cached), and every
    :meth:`instantiate` call clones the cached plan with fresh ids.
    """

    def __init__(self, name: str,
                 build: Callable[[AnalyticsContext], JobPlan]) -> None:
        self.name = name
        self._build = build
        self._compiled: Optional[JobPlan] = None
        self._compiled_for: Optional[int] = None
        #: How many times the control plane actually compiled (tests).
        self.compile_count = 0

    def base_plan(self, ctx: AnalyticsContext) -> JobPlan:
        """The cached compiled plan for ``ctx`` (compiling on first use)."""
        if self._compiled is None or self._compiled_for != id(ctx):
            self._compiled = self._build(ctx)
            self._compiled_for = id(ctx)
            self.compile_count += 1
        return self._compiled

    def instantiate(self, ctx: AnalyticsContext) -> JobPlan:
        """A submittable copy of the plan with fresh job/shuffle ids."""
        return instantiate_plan(self.base_plan(ctx), ctx.dag_scheduler)


# ---------------------------------------------------------------------------
# Scaled-down standard templates
# ---------------------------------------------------------------------------

def sort_template(ctx: AnalyticsContext, total_gb: float = 1.0,
                  num_tasks: int = 8, values_per_key: int = 25,
                  name: str = "sort", seed: int = 0) -> JobTemplate:
    """The paper's sort, scaled to serving-request size.

    Generates the input file once (named after the template) and returns
    a template whose instances read it, range-partition, sort, and write
    their own output files.
    """
    workload = SortWorkload(total_bytes=total_gb * GB,
                            values_per_key=values_per_key,
                            num_map_tasks=num_tasks)
    input_name = f"serve-{name}-in"
    generate_sort_input(ctx.cluster, workload, name=input_name, seed=seed)

    def build(context: AnalyticsContext) -> JobPlan:
        sorted_rdd = (context.text_file(input_name)
                      .map(lambda record: record,
                           cost=OpCost(per_record_s=PARTITION_S_PER_RECORD),
                           size_ratio=1.0, name="partition")
                      .sort_by_key(num_partitions=workload.reduce_tasks,
                                   boundaries=sort_boundaries(workload),
                                   cost=OpCost(per_record_s=SORT_S_PER_RECORD)))
        return context.compile(sorted_rdd,
                               DfsOutput(file_name=f"serve-{name}-out"),
                               name=name)

    return JobTemplate(name, build)


def wordcount_template(ctx: AnalyticsContext, num_blocks: int = 8,
                       block_mb: float = 32.0, name: str = "wordcount",
                       seed: int = 0) -> JobTemplate:
    """Figure 1's word count as an interactive-sized serving request."""
    input_name = f"serve-{name}-in"
    generate_text_input(ctx.cluster, num_blocks=num_blocks,
                        block_bytes=block_mb * MB, name=input_name,
                        seed=seed)

    def build(context: AnalyticsContext) -> JobPlan:
        counts = (context.text_file(input_name)
                  .flat_map(lambda line: line.split(" "),
                            cost=OpCost(per_record_s=0.5e-6))
                  .map(lambda word: (word, 1),
                       cost=OpCost(per_record_s=0.2e-6), size_ratio=1.0)
                  .reduce_by_key(lambda a, b: a + b,
                                 combine_cost=OpCost(per_record_s=0.3e-6)))
        return context.compile(counts,
                               DfsOutput(file_name=f"serve-{name}-out"),
                               name=name)

    return JobTemplate(name, build)


def bdb_template(ctx: AnalyticsContext, query: str = "1a",
                 fraction: float = 0.002, name: Optional[str] = None,
                 seed: int = 0) -> JobTemplate:
    """A Big Data Benchmark query-1 scan as a serving request.

    Only the scan-filter queries (1a/1b/1c) are offered as templates:
    they are the benchmark's interactive tier, and their single-stage
    shape keeps serving requests short.
    """
    if query not in Q1_SELECTIVITY:
        raise ConfigError(
            f"serving templates support queries {sorted(Q1_SELECTIVITY)}; "
            f"got {query!r}")
    name = name or f"bdb{query}"
    scale = BdbScale(fraction=fraction)
    if not ctx.cluster.dfs.exists("rankings"):
        generate_bdb_tables(ctx.cluster, scale, seed=seed)
    selectivity = Q1_SELECTIVITY[query]
    cutoff = int(10000 * (1 - selectivity))

    def build(context: AnalyticsContext) -> JobPlan:
        filtered = (context.text_file("rankings", fmt=scale.fmt)
                    .filter(lambda row: row[1][0] > cutoff,
                            cost=RANKINGS_FILTER_COST,
                            count_ratio=selectivity))
        return context.compile(filtered,
                               DfsOutput(file_name=f"serve-{name}-out"),
                               name=name)

    return JobTemplate(name, build)


def ml_template(ctx: AnalyticsContext, num_partitions: int = 8,
                rows_per_partition: float = 2e5,
                compute_s_per_row: float = 12e-6,
                name: str = "ml", seed: int = 0) -> JobTemplate:
    """A CPU-bound least-squares-style iteration as a serving request.

    Models one block-coordinate-descent step: a heavy per-row matrix
    multiply followed by a small all-to-all aggregation, like the
    paper's §5.2 ML workload but sized for a request stream.  The input
    ships with the task (``parallelize``), so instances touch CPU and
    shuffle only.
    """
    from repro.datamodel.records import Partition

    rng = Random(seed)
    partitions = [
        Partition(records=[(rng.random(), rng.random()) for _ in range(16)],
                  record_count=rows_per_partition,
                  data_bytes=rows_per_partition * 64.0)
        for _ in range(num_partitions)
    ]

    def build(context: AnalyticsContext) -> JobPlan:
        gradients = (context.parallelize_partitions(partitions)
                     .map(lambda row: (0, row[0] * row[1]),
                          cost=OpCost(per_record_s=compute_s_per_row),
                          size_ratio=0.25)
                     .reduce_by_key(lambda a, b: a + b,
                                    num_partitions=max(
                                        1, num_partitions // 4),
                                    combine_cost=OpCost(
                                        per_record_s=0.5e-6)))
        return context.compile(gradients,
                               DfsOutput(file_name=f"serve-{name}-out"),
                               name=name)

    return JobTemplate(name, build)
