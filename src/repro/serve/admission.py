"""Admission control: performance clarity applied online.

Before a request is queued, its cost is *estimated* and the controller
decides whether the system can absorb it.  The estimate is where the
paper's §6 model earns its keep outside of offline what-if analysis:

* On MonoSpark, the estimator keeps the last completed instance's
  monotask profiles and asks :func:`repro.model.predict` what the job
  would cost *on the machines currently schedulable* -- so after a
  crash, or after the health monitor excludes a fail-slow machine, the
  admission controller immediately prices jobs on the shrunken cluster.
* On Spark there are no monotask records (§6.6), so the estimator can
  only smooth previously measured runtimes, and it cannot correct for
  lost machines.  The contrast is the paper's clarity argument, online.

Shedding is deterministic: a request is rejected iff a configured bound
(queue length, or estimated backlog seconds) would be exceeded, and the
decision depends only on simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.base import BaseEngine, JobResult
from repro.errors import ConfigError, ModelError
from repro.metrics.collector import MetricsCollector
from repro.model import (HardwareProfile, StageProfile, WhatIf,
                         hardware_profile, predict, profile_job)

__all__ = ["CostEstimator", "AdmissionController"]


class CostEstimator:
    """Per-template service-time estimates learned from completed jobs."""

    def __init__(self, engine: BaseEngine,
                 smoothing: float = 0.5) -> None:
        if not 0 < smoothing <= 1.0:
            raise ConfigError(f"smoothing must be in (0, 1]: {smoothing}")
        self.engine = engine
        self.hardware: HardwareProfile = hardware_profile(engine.cluster)
        #: EWMA weight of the newest measurement.
        self.smoothing = smoothing
        #: template -> smoothed measured duration (all engines).
        self._measured: Dict[str, float] = {}
        #: template -> monotask profiles of the latest completed instance
        #: (MonoSpark only; Spark jobs produce no monotask records).
        self._profiles: Dict[str, List[StageProfile]] = {}

    def observe(self, template: str, metrics: MetricsCollector,
                result: JobResult) -> None:
        """Fold one completed instance into the template's estimate."""
        previous = self._measured.get(template)
        if previous is None:
            self._measured[template] = result.duration
        else:
            self._measured[template] = (
                self.smoothing * result.duration
                + (1.0 - self.smoothing) * previous)
        try:
            self._profiles[template] = profile_job(metrics, result.job_id)
        except ModelError:
            pass  # Spark engine: no monotask records to profile.

    def estimate(self, template: str) -> Optional[float]:
        """Estimated service seconds for one instance, or None if the
        template has never completed (first instances are admitted on
        faith)."""
        measured = self._measured.get(template)
        if measured is None:
            return None
        estimate = measured
        profiles = self._profiles.get(template)
        usable = self.engine.schedulable_machine_count
        if profiles is not None and usable != 0 \
                and usable != self.hardware.num_machines:
            # The model re-prices the job on the machines it can actually
            # be placed on -- alive and not excluded by the health monitor
            # -- only possible because monotask profiles separate the
            # job's resource demand from the hardware it ran on.
            degraded = WhatIf(hardware=self.hardware.scaled(machines=usable))
            estimate = predict(profiles, measured, self.hardware,
                               degraded).predicted_s
        # With a disaggregated data tier, lost storage nodes concentrate
        # reads/writes on the survivors; scale the estimate by the lost
        # service fraction (coarse but directionally honest pricing).
        svc = getattr(self.engine, "datasvc", None)
        if svc is not None and 0 < svc.live_node_count < svc.num_nodes:
            estimate *= svc.num_nodes / svc.live_node_count
        return estimate


@dataclass(frozen=True)
class AdmissionController:
    """Bounded-queue admission with estimate-based load shedding.

    ``max_queued_jobs`` bounds how many admitted requests may wait for
    dispatch; ``max_backlog_s`` bounds the *estimated* seconds of queued
    service time (requests without an estimate count as zero -- a
    template's first instance is never shed by the backlog bound).
    """

    max_queued_jobs: Optional[int] = None
    max_backlog_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queued_jobs is not None and self.max_queued_jobs < 0:
            raise ConfigError(
                f"max_queued_jobs must be >= 0: {self.max_queued_jobs}")
        if self.max_backlog_s is not None and not (self.max_backlog_s > 0):
            raise ConfigError(
                f"max_backlog_s must be > 0: {self.max_backlog_s}")

    def decide(self, estimate_s: Optional[float],
               queued_estimates: Sequence[Optional[float]]
               ) -> Tuple[bool, str]:
        """(admit, reason); shed reasons are deterministic strings."""
        if self.max_queued_jobs is not None and \
                len(queued_estimates) >= self.max_queued_jobs:
            return False, f"queue full ({self.max_queued_jobs} jobs)"
        if self.max_backlog_s is not None:
            backlog = sum(e for e in queued_estimates if e is not None)
            added = estimate_s if estimate_s is not None else 0.0
            if backlog + added > self.max_backlog_s:
                return False, (f"backlog {backlog + added:.1f}s over "
                               f"{self.max_backlog_s:.1f}s")
        return True, ""
