"""SLO accounting: per-tenant latency distributions and attainment.

A :class:`ServeReport` summarizes a serving run from the
:class:`~repro.metrics.events.ServeRecord` stream: per-tenant
p50/p95/p99 request latency, the split of that latency into queueing
delay and service time, shed and goodput counts, and SLO attainment.

On MonoSpark the report additionally attributes each tenant's queueing
to specific resources (CPU vs disk vs network queue seconds from the
per-monotask records) -- the paper's performance-clarity signal carried
into a serving context.  Spark exposes no such decomposition, which the
report states explicitly rather than printing zeros.

Everything in the report is a deterministic function of the simulation,
and ``format()`` renders with fixed precision, so a repeated run with
the same seed produces a byte-identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import MetricsCollector
from repro.metrics.events import HealthEventRecord, ServeRecord
from repro.metrics.report import format_table
from repro.metrics.utilization import percentile

__all__ = ["TenantStats", "ServeReport"]


@dataclass
class TenantStats:
    """Aggregates for one tenant over a serving run."""

    tenant: str
    completed: int = 0
    failed: int = 0
    shed: int = 0
    #: Requests lost outright (owning driver died with no checkpoint to
    #: fail over from); zero outside control-plane runs.
    lost: int = 0
    #: Completed-request latency percentiles (arrival -> completion).
    p50_s: Optional[float] = None
    p95_s: Optional[float] = None
    p99_s: Optional[float] = None
    mean_queue_delay_s: Optional[float] = None
    mean_service_s: Optional[float] = None
    slo_s: Optional[float] = None
    #: Completed within the SLO (goodput); None when the tenant has no SLO.
    goodput: Optional[int] = None

    @property
    def submitted(self) -> int:
        """All requests the tenant submitted, whatever their fate."""
        return self.completed + self.failed + self.shed + self.lost

    @property
    def attainment(self) -> Optional[float]:
        """Fraction of *submitted* requests that met the SLO.

        Shed and failed requests count against attainment: from the
        tenant's point of view a rejected request is a missed SLO.
        """
        if self.goodput is None or self.submitted == 0:
            return None
        return self.goodput / self.submitted


def _tenant_stats(tenant: str, records: Sequence[ServeRecord]
                  ) -> TenantStats:
    stats = TenantStats(tenant=tenant)
    latencies: List[float] = []
    queue_delays: List[float] = []
    services: List[float] = []
    goodput = 0
    has_slo = False
    for record in records:
        if record.slo_s is not None:
            has_slo = True
            stats.slo_s = record.slo_s
        if record.outcome == "shed":
            stats.shed += 1
            continue
        if record.outcome == "failed":
            stats.failed += 1
            continue
        if record.outcome == "lost":
            stats.lost += 1
            continue
        stats.completed += 1
        latencies.append(record.latency_s)
        queue_delays.append(record.queue_delay_s)
        services.append(record.service_s)
        if record.slo_met:
            goodput += 1
    if latencies:
        stats.p50_s = percentile(latencies, 50)
        stats.p95_s = percentile(latencies, 95)
        stats.p99_s = percentile(latencies, 99)
        stats.mean_queue_delay_s = sum(queue_delays) / len(queue_delays)
        stats.mean_service_s = sum(services) / len(services)
    if has_slo:
        stats.goodput = goodput
    return stats


def _cell(value: Optional[float], precision: int = 2) -> str:
    return "-" if value is None else f"{value:.{precision}f}"


@dataclass
class ServeReport:
    """The outcome of one serving run, renderable as stable text."""

    engine_name: str
    duration_s: float
    stats: List[TenantStats] = field(default_factory=list)
    #: tenant -> resource -> monotask queue seconds (MonoSpark only).
    queue_attribution: Dict[str, Dict[str, float]] = field(
        default_factory=dict)
    records: List[ServeRecord] = field(default_factory=list)
    #: Health-monitor decisions made during the run, in time order.
    health_events: List[HealthEventRecord] = field(default_factory=list)
    #: metric name -> peak sampled value (summed across a metric's
    #: series at each sample instant); filled by telemetry-enabled runs.
    telemetry_peaks: Dict[str, float] = field(default_factory=dict)
    #: Sample instants the telemetry sampler recorded.
    telemetry_ticks: int = 0
    #: Rolling-window bottleneck attribution
    #: (:class:`~repro.clarity.aggregator.BottleneckWindow`); filled by
    #: clarity-enabled runs.
    clarity: Optional[object] = None
    #: Optional ranked capacity advice
    #: (:class:`~repro.clarity.advisor.AdvisorReport`).
    advice: Optional[object] = None
    #: Data-tier counters (:meth:`~repro.datasvc.DataService.stats`);
    #: filled by runs with a data service attached.
    datasvc_stats: Dict[str, float] = field(default_factory=dict)
    #: Storage-node index -> integrity suspicion count.
    datasvc_suspicions: Dict[int, int] = field(default_factory=dict)
    #: Alert transitions (:class:`~repro.metrics.events.AlertEventRecord`)
    #: in time order; filled by observability-enabled runs.
    obs_timeline: List[object] = field(default_factory=list)
    #: Alerts still firing when the run drained
    #: (:class:`~repro.obs.alerts.Alert`).
    obs_firing: List[object] = field(default_factory=list)
    #: Drift verdicts that left the model envelope or could not be
    #: attributed (:class:`~repro.obs.drift.DriftVerdict`).
    obs_drift: List[object] = field(default_factory=list)
    #: Jobs the drift detector scored, whatever the verdict.
    obs_drift_scored: int = 0
    #: Journal row counts by severity, plus ``dropped``.
    obs_journal: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_metrics(cls, metrics: MetricsCollector, engine_name: str,
                     tenants: Sequence[str],
                     duration_s: float) -> "ServeReport":
        """Build the report for ``tenants`` from recorded serve events."""
        report = cls(engine_name=engine_name, duration_s=duration_s,
                     records=list(metrics.serves),
                     health_events=list(metrics.health_events))
        attributable = False
        for tenant in tenants:
            records = metrics.serve_records(tenant=tenant)
            report.stats.append(_tenant_stats(tenant, records))
            job_ids = [r.job_id for r in records if r.job_id >= 0]
            by_resource = metrics.queue_seconds_by_resource(job_ids)
            report.queue_attribution[tenant] = by_resource
            if any(v > 0 for v in by_resource.values()):
                attributable = True
        if not attributable:
            report.queue_attribution = {}
        return report

    def attach_telemetry(self, registry) -> None:
        """Fold a sampled :class:`~repro.trace.TelemetryRegistry` in.

        Stores, per metric, the peak of the instant-wise total across
        that metric's series -- "the deepest any resource queue ever
        got", not a per-machine breakdown (the full ring-buffered time
        series stays on ``registry.store``).
        """
        totals: Dict[tuple, float] = {}
        ticks = set()
        for name, labels in registry.store.series():
            for t, value in registry.store.points(name, labels=labels):
                ticks.add(t)
                key = (name, t)
                totals[key] = totals.get(key, 0.0) + value
        peaks: Dict[str, float] = {}
        for (name, _), value in totals.items():
            if value > peaks.get(name, float("-inf")):
                peaks[name] = value
        self.telemetry_peaks = dict(sorted(peaks.items()))
        self.telemetry_ticks = len(ticks)

    def attach_clarity(self, aggregator, advisor=None) -> None:
        """Fold a :class:`~repro.clarity.ClarityAggregator`'s window in.

        Stores the aggregator's rolling-window bottleneck answer; with
        an optional :class:`~repro.clarity.CapacityAdvisor`, also its
        ranked recommendations over the window's observations.
        """
        self.clarity = aggregator.bottleneck()
        if advisor is not None:
            self.advice = advisor.advise(aggregator.observations())

    def attach_datasvc(self, service) -> None:
        """Fold a :class:`~repro.datasvc.DataService`'s counters in."""
        self.datasvc_stats = service.stats()
        self.datasvc_suspicions = service.suspicion_counts()

    def attach_obs(self, obs) -> None:
        """Fold an :class:`~repro.obs.ObservabilityPlane`'s outcome in.

        Stores the alert timeline, still-firing alerts, out-of-envelope
        (or unattributable) drift verdicts, and journal severity counts
        -- every one a deterministic function of the run; the plane's
        wall-clock self-overhead deliberately stays off the report (ask
        ``obs.overhead()`` for it).
        """
        self.obs_timeline = obs.alert_timeline()
        self.obs_firing = obs.firing()
        verdicts = obs.drift_verdicts()
        self.obs_drift_scored = len(verdicts)
        self.obs_drift = [v for v in verdicts
                          if v.drifting or not v.attributable]
        counts: Dict[str, int] = {}
        for event in obs.journal.events():
            counts[event.severity] = counts.get(event.severity, 0) + 1
        counts["dropped"] = obs.journal.dropped
        self.obs_journal = counts

    @property
    def total_shed(self) -> int:
        """Requests rejected by admission control, across tenants."""
        return sum(s.shed for s in self.stats)

    @property
    def total_lost(self) -> int:
        """Requests lost to unrecovered driver failures, across tenants."""
        return sum(s.lost for s in self.stats)

    @property
    def total_completed(self) -> int:
        """Requests served to completion, across tenants."""
        return sum(s.completed for s in self.stats)

    def tenant(self, name: str) -> TenantStats:
        """The named tenant's stats (KeyError if absent)."""
        for stats in self.stats:
            if stats.tenant == name:
                return stats
        raise KeyError(name)

    def format(self) -> str:
        """Render the report; byte-identical across identical runs."""
        title = (f"SLO report ({self.engine_name}, "
                 f"{self.duration_s:.1f}s simulated)")
        # The "lost" column appears only when a control-plane run
        # actually lost requests, so plain serving reports stay
        # byte-identical to earlier releases.
        with_lost = self.total_lost > 0
        rows = []
        for s in self.stats:
            attainment = s.attainment
            row = [s.tenant, s.submitted, s.completed, s.failed, s.shed]
            if with_lost:
                row.append(s.lost)
            row.extend([
                _cell(s.p50_s), _cell(s.p95_s), _cell(s.p99_s),
                _cell(s.mean_queue_delay_s), _cell(s.mean_service_s),
                _cell(s.slo_s, 1),
                "-" if attainment is None else f"{100 * attainment:.1f}%",
            ])
            rows.append(row)
        header = ["tenant", "jobs", "done", "failed", "shed"]
        if with_lost:
            header.append("lost")
        header.extend(["p50 (s)", "p95 (s)", "p99 (s)", "queue (s)",
                       "service (s)", "SLO (s)", "attained"])
        lines = [format_table(header, rows, title=title)]
        if self.queue_attribution:
            attrib_rows = [
                [tenant,
                 f"{by_resource.get('cpu', 0.0):.2f}",
                 f"{by_resource.get('disk', 0.0):.2f}",
                 f"{by_resource.get('network', 0.0):.2f}"]
                for tenant, by_resource in
                sorted(self.queue_attribution.items())]
            lines.append(format_table(
                ["tenant", "cpu (s)", "disk (s)", "network (s)"],
                attrib_rows,
                title="Queueing attribution (monotask queue seconds)"))
        else:
            lines.append("Queueing attribution: unavailable (no monotask "
                         "records; Spark cannot say which resource "
                         "queued)")
        if self.health_events:
            timeline_rows = [
                [f"{h.at:.1f}", f"m{h.machine_id}", h.kind,
                 h.resource or "-", _cell(None if h.relative_rate
                                          != h.relative_rate
                                          else h.relative_rate),
                 h.detail or "-"]
                for h in self.health_events]
            lines.append(format_table(
                ["t (s)", "machine", "event", "resource", "rel rate",
                 "detail"],
                timeline_rows, title="Exclusion timeline (health monitor)"))
            lines.append(self._attribution_section())
        if self.telemetry_peaks:
            peak_rows = [[name, f"{value:g}"]
                         for name, value in self.telemetry_peaks.items()]
            lines.append(format_table(
                ["metric", "peak"], peak_rows,
                title=(f"Live telemetry peaks "
                       f"({self.telemetry_ticks} sample instants)")))
        if self.clarity is not None:
            lines.append(self.clarity.format())
        if self.advice is not None:
            lines.append(self.advice.format())
        if self.datasvc_stats:
            svc_rows = [[name, f"{value:g}"]
                        for name, value in sorted(
                            self.datasvc_stats.items())]
            lines.append(format_table(
                ["counter", "value"], svc_rows,
                title="Data service (disaggregated shuffle/storage)"))
            if self.datasvc_suspicions:
                suspicion_rows = [
                    [f"s{node}", str(count)]
                    for node, count in sorted(
                        self.datasvc_suspicions.items())]
                lines.append(format_table(
                    ["storage node", "integrity suspicions"],
                    suspicion_rows,
                    title="Data-tier integrity suspicions"))
        if self.obs_timeline or self.obs_journal:
            lines.append(self._obs_section())
        return "\n\n".join(lines)

    def _obs_section(self) -> str:
        """Streaming-alerting outcome: timeline, drift, journal counts."""
        parts = []
        if self.obs_timeline:
            rows = [[f"{a.at:.1f}", a.rule, a.kind, a.labels or "-",
                     "-" if a.value != a.value else f"{a.value:.2f}",
                     f"{a.trace_id}/{a.span_id}" if a.span_id >= 0
                     else "-"]
                    for a in self.obs_timeline]
            parts.append(format_table(
                ["t (s)", "rule", "transition", "labels", "value",
                 "exemplar"],
                rows, title="Alert timeline (observability plane)"))
        else:
            parts.append("Alert timeline: no alerts fired")
        if self.obs_firing:
            names = ", ".join(
                f"{a.rule}{{{','.join(f'{k}={v}' for k, v in a.labels)}}}"
                for a in self.obs_firing)
            parts.append(f"Still firing at drain: {names}")
        if self.obs_drift:
            drift_rows = [
                ["-" if v.job_id < 0 else str(v.job_id), v.tenant or "-",
                 f"{v.at:.1f}",
                 "-" if v.normalized != v.normalized
                 else f"{v.normalized:.2f}",
                 v.reason or "-"]
                for v in self.obs_drift]
            parts.append(format_table(
                ["job", "tenant", "t (s)", "vs baseline", "verdict"],
                drift_rows,
                title=(f"Model drift ({self.obs_drift_scored} jobs "
                       f"scored)")))
        elif self.obs_drift_scored:
            parts.append(
                f"Model drift: {self.obs_drift_scored} jobs scored, all "
                f"inside the envelope")
        if self.obs_journal:
            order = {"critical": 0, "warning": 1, "info": 2,
                     "dropped": 3}
            counts = ", ".join(
                f"{key}={self.obs_journal[key]}"
                for key in sorted(self.obs_journal,
                                  key=lambda k: order.get(k, 9)))
            parts.append(f"Event journal: {counts}")
        return "\n\n".join(parts)

    def _attribution_section(self) -> str:
        """What the monitor blamed each suspect machine's slowness on.

        MonoSpark blames a resource (cpu/disk/network) because its
        estimator sees per-resource monotask rates; the Spark baseline's
        task-level EWMA can only say ``task`` -- it knows *that* a
        machine is slow, never *why* (§6.6, online).
        """
        worst: Dict[int, HealthEventRecord] = {}
        for event in self.health_events:
            if event.kind not in ("suspect", "exclude") or not event.resource:
                continue
            seen = worst.get(event.machine_id)
            if seen is None or event.relative_rate < seen.relative_rate:
                worst[event.machine_id] = event
        if not worst:
            return ("Fail-slow attribution: no suspects (no machine fell "
                    "below the cluster-typical rate)")
        rows = [[f"m{machine_id}", worst[machine_id].resource,
                 _cell(worst[machine_id].relative_rate)]
                for machine_id in sorted(worst)]
        section = format_table(
            ["machine", "blamed resource", "worst rel rate"],
            rows, title="Fail-slow attribution")
        if all(event.resource == "task" for event in worst.values()):
            section += ("\nresource \"task\" = blended task rate only: "
                        "this engine has no per-resource telemetry, so "
                        "slowness cannot be attributed to cpu, disk, or "
                        "network")
        return section
