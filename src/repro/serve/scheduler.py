"""Job-level scheduling across tenants.

The engine's :class:`~repro.engine.base.TaskPool` already shares
machines between *running* jobs (fifo/fair task policies, §3.4/§8);
this module decides which *queued* job to release next when the server
bounds its multiprogramming level.  Two orderings:

* ``WeightedFairScheduler`` -- start-time fair queueing over tenants:
  each tenant accrues virtual time (service seconds / weight) as its
  jobs finish, and the queued request of the lowest-virtual-time tenant
  runs next.  A tenant with weight 2 receives twice the long-run job
  throughput of a weight-1 tenant under contention.
* ``DeadlineScheduler`` -- earliest deadline first, where a request's
  deadline is ``arrival + slo_s``; best-effort requests (no SLO) run
  after every deadline-bearing request, in arrival order.

All tie-breaks are (arrival sequence, tenant name), so a schedule is a
deterministic function of the request stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.serve.server import JobRequest

__all__ = ["JobScheduler", "FifoScheduler", "WeightedFairScheduler",
           "DeadlineScheduler", "make_scheduler"]


class JobScheduler:
    """Strategy interface: order the server's admitted-but-waiting jobs."""

    def register_tenant(self, name: str, weight: float) -> None:
        """Called once per tenant before any request arrives."""

    def pick_next(self, queued: Sequence["JobRequest"]) -> "JobRequest":
        """Choose the request to dispatch next (``queued`` is non-empty)."""
        raise NotImplementedError

    def credit(self, tenant: str, service_s: float) -> None:
        """Account completed service time against a tenant."""

    def restore_virtual_time(self, tenant: str, virtual_time: float) -> None:
        """Adopt a tenant's accrued accounting from a checkpoint.

        Stateless schedulers ignore it; the fair scheduler restores the
        tenant's virtual time so a failed-over tenant keeps its place in
        the long-run share rather than restarting at zero.
        """


class FifoScheduler(JobScheduler):
    """Arrival order, tenant-blind (the degenerate baseline)."""

    def pick_next(self, queued: Sequence["JobRequest"]) -> "JobRequest":
        return min(queued, key=lambda r: r.seq)


class WeightedFairScheduler(JobScheduler):
    """Start-time fair queueing over per-tenant virtual time."""

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}
        self._virtual: Dict[str, float] = {}

    def register_tenant(self, name: str, weight: float) -> None:
        if not (weight > 0):
            raise ConfigError(f"tenant weight must be > 0: {weight}")
        self._weights[name] = weight
        self._virtual.setdefault(name, 0.0)

    def virtual_time(self, tenant: str) -> float:
        """The tenant's accrued service seconds divided by its weight."""
        return self._virtual.get(tenant, 0.0)

    def pick_next(self, queued: Sequence["JobRequest"]) -> "JobRequest":
        # Lowest-virtual-time tenant first; within a tenant, FIFO.
        return min(queued, key=lambda r: (self._virtual.get(r.tenant, 0.0),
                                          r.tenant, r.seq))

    def credit(self, tenant: str, service_s: float) -> None:
        weight = self._weights.get(tenant, 1.0)
        self._virtual[tenant] = (self._virtual.get(tenant, 0.0)
                                 + service_s / weight)

    def restore_virtual_time(self, tenant: str, virtual_time: float) -> None:
        self._virtual[tenant] = max(self._virtual.get(tenant, 0.0),
                                    virtual_time)


class DeadlineScheduler(JobScheduler):
    """Earliest deadline first; best-effort requests trail in FIFO order."""

    def pick_next(self, queued: Sequence["JobRequest"]) -> "JobRequest":
        def key(request: "JobRequest"):
            if request.slo_s is None:
                return (1, 0.0, request.seq)
            return (0, request.arrival + request.slo_s, request.seq)
        return min(queued, key=key)


_SCHEDULERS = {
    "fifo": FifoScheduler,
    "weighted_fair": WeightedFairScheduler,
    "deadline": DeadlineScheduler,
}


def make_scheduler(policy: str) -> JobScheduler:
    """Instantiate a job scheduler by policy name."""
    cls = _SCHEDULERS.get(policy)
    if cls is None:
        raise ConfigError(f"unknown serving policy {policy!r}; choose from "
                          f"{sorted(_SCHEDULERS)}")
    return cls()
