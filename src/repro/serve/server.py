"""The job server: continuous multi-tenant serving on either engine.

A :class:`JobServer` wraps an :class:`~repro.api.context.AnalyticsContext`
and turns the batch engines into a long-running service: open-loop
workload sources submit job requests over time, an admission controller
sheds load it cannot absorb, a job scheduler orders the queue across
tenants, and every dispatched job is injected into the *running*
environment via :meth:`BaseEngine.submit_job`.  Completion, queueing
delay, and SLO attainment are recorded as
:class:`~repro.metrics.events.ServeRecord` entries and summarized by
:mod:`repro.serve.slo`.

With no admission controller, a weight-1 tenant, and a single submitted
plan, the server reduces exactly to ``engine.run_job`` -- serving is a
layer over the batch engines, not a fork of them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.api.context import AnalyticsContext
from repro.api.plan import JobPlan
from repro.engine.base import JobResult
from repro.errors import ConfigError, ReproError, SimulationError
from repro.metrics.events import ServeRecord
from repro.serve.admission import AdmissionController, CostEstimator
from repro.serve.scheduler import JobScheduler, make_scheduler
from repro.serve.slo import ServeReport
from repro.serve.workload import JobTemplate
from repro.simulator import Event
from repro.simulator.rng import RngStreams

__all__ = ["Tenant", "JobRequest", "JobServer"]


class Tenant:
    """One user of the service: a share weight and an optional SLO."""

    def __init__(self, name: str, weight: float = 1.0,
                 slo_s: Optional[float] = None) -> None:
        if not (weight > 0):
            raise ConfigError(f"tenant weight must be > 0: {weight}")
        if slo_s is not None and not (slo_s > 0):
            raise ConfigError(f"tenant SLO must be > 0 seconds: {slo_s}")
        self.name = name
        self.weight = weight
        self.slo_s = slo_s


class JobRequest:
    """One submission's life-cycle state inside the server."""

    def __init__(self, seq: int, tenant: str, template_name: str,
                 arrival: float, done: Event,
                 template: Optional[JobTemplate] = None,
                 plan: Optional[JobPlan] = None,
                 slo_s: Optional[float] = None,
                 estimate_s: Optional[float] = None) -> None:
        self.seq = seq
        self.tenant = tenant
        self.template_name = template_name
        self.arrival = arrival
        #: Fires with the JobResult on completion; fails never (shed
        #: requests succeed with None).
        self.done = done
        self.template = template
        self.plan = plan
        self.slo_s = slo_s
        self.estimate_s = estimate_s
        self.dispatched: float = float("nan")
        self.shed = False
        self.result: Optional[JobResult] = None


class JobServer:
    """Continuous job serving over a batch engine.

    Usage::

        ctx = AnalyticsContext(cluster, engine="monospark",
                               scheduling_policy="fair")
        server = JobServer(ctx, admission=AdmissionController(
                               max_queued_jobs=8))
        server.add_tenant("interactive", weight=2.0, slo_s=30.0)
        server.add_workload("interactive", template,
                            PoissonArrivals(0.2, horizon_s=600))
        report = server.run()
        print(report.format())

    ``max_concurrent_jobs`` bounds the multiprogramming level: queued
    requests beyond it wait for a running job to finish, ordered by the
    job scheduler.  ``None`` releases every admitted request immediately
    (the engine's task pool then shares machines between them).
    """

    def __init__(self, ctx: AnalyticsContext,
                 admission: Optional[AdmissionController] = None,
                 policy: Union[str, JobScheduler] = "weighted_fair",
                 max_concurrent_jobs: Optional[int] = None,
                 seed: int = 0, health=None, telemetry=None,
                 clarity=None, obs=None) -> None:
        if max_concurrent_jobs is not None and max_concurrent_jobs < 1:
            raise ConfigError(
                f"max_concurrent_jobs must be >= 1: {max_concurrent_jobs}")
        self.ctx = ctx
        self.engine = ctx.engine
        self.env = ctx.engine.env
        self.metrics = ctx.metrics
        self.admission = admission
        self.scheduler = (make_scheduler(policy) if isinstance(policy, str)
                          else policy)
        self.max_concurrent_jobs = max_concurrent_jobs
        self.rng = RngStreams(seed)
        self.tenants: Dict[str, Tenant] = {}
        self.estimator = CostEstimator(ctx.engine)
        #: Optional :class:`repro.health.HealthMonitor`: started when the
        #: server starts, stopped when the last job drains, so gray
        #: failures arising mid-stream are detected and excluded online.
        self.health = health
        #: Optional :class:`repro.trace.TelemetrySampler`: the server
        #: registers the engine's gauges plus its own (queued requests,
        #: running jobs) into the sampler's registry, runs it for the
        #: duration of the serve, and folds peak values into the report.
        self.telemetry = telemetry
        #: Optional :class:`repro.clarity.ClarityAggregator`: every
        #: completed job's critical-path attribution and stage profiles
        #: are folded into its rolling window as the job finishes, and
        #: the window's bottleneck answer lands in the report.
        self.clarity = clarity
        #: Optional :class:`repro.obs.ObservabilityPlane`: attached to
        #: the engine when the server starts, ticked for the duration
        #: of the serve, and folded into the report (firing alerts,
        #: drift verdicts, journal summary).
        self.obs = obs
        self._queue: List[JobRequest] = []
        self._running: Dict[int, JobRequest] = {}
        self._workloads: List[tuple] = []
        self._open_sources = 0
        self._seq = 0
        self._wakeup: Optional[Event] = None
        self._all_done: Optional[Event] = None
        self._ran = False

    # -- configuration -------------------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0,
                   slo_s: Optional[float] = None) -> Tenant:
        """Register a tenant; duplicate names are an error.

        Silently replacing an existing registration would rewrite the
        tenant's weight and SLO mid-stream (and desynchronize the fair
        scheduler's accumulated virtual time), so a duplicate raises
        -- mirroring the engine's duplicate-job-id check.
        """
        if name in self.tenants:
            raise SimulationError(f"tenant {name!r} is already registered")
        tenant = Tenant(name, weight=weight, slo_s=slo_s)
        self.tenants[name] = tenant
        self.scheduler.register_tenant(name, weight)
        return tenant

    def add_workload(self, tenant: str, template: JobTemplate,
                     arrivals) -> None:
        """Attach an open-loop source: ``arrivals`` times of ``template``.

        ``arrivals`` is any object with a ``times(stream)`` iterator
        (:class:`~repro.serve.workload.PoissonArrivals` et al.).  Each
        source draws from its own named rng stream, so adding a source
        never perturbs another source's trace.
        """
        if tenant not in self.tenants:
            self.add_tenant(tenant)
        index = len(self._workloads)
        self._workloads.append((tenant, template, arrivals, index))

    # -- streaming submission --------------------------------------------------------

    def submit(self, job: Union[JobTemplate, JobPlan],
               tenant: str = "default") -> JobRequest:
        """Submit one request now (callable before or during :meth:`run`).

        Admission is decided immediately; admitted requests wait in the
        queue for the dispatcher.  Returns the request; its ``done``
        event fires with the :class:`JobResult` on completion (or with
        ``None`` if the request was shed).
        """
        if tenant not in self.tenants:
            self.add_tenant(tenant)
        template, plan = (job, None) if isinstance(job, JobTemplate) \
            else (None, job)
        if plan is not None and not isinstance(plan, JobPlan):
            raise ConfigError(f"submit() takes a JobTemplate or JobPlan: "
                              f"{job!r}")
        name = template.name if template is not None else plan.name
        request = JobRequest(
            seq=self._seq, tenant=tenant, template_name=name,
            arrival=self.env.now, done=self.env.event(), template=template,
            plan=plan, slo_s=self.tenants[tenant].slo_s,
            estimate_s=self.estimator.estimate(name))
        self._seq += 1
        if self.admission is not None:
            admit, reason = self.admission.decide(
                request.estimate_s,
                [r.estimate_s for r in self._queue])
            if not admit:
                request.shed = True
                self.metrics.record_serve(ServeRecord(
                    tenant=tenant, template=name, arrival=request.arrival,
                    outcome="shed", estimate_s=request.estimate_s,
                    slo_s=request.slo_s, detail=reason))
                request.done.succeed(None)
                return request
        self._queue.append(request)
        self._kick()
        return request

    # -- driving -------------------------------------------------------------------

    def run(self) -> ServeReport:
        """Serve until every source is exhausted and every job finished.

        Starts the workload sources and the dispatcher, drives the
        simulation to completion, and returns the SLO report.
        """
        if self._ran:
            raise SimulationError("a JobServer can only run once")
        self._ran = True
        self._all_done = self.env.event()
        start = self.env.now
        if self.obs is not None:
            # Attach before anything runs so the very first fault,
            # health, or driver event already lands in the journal.
            self.obs.attach(self.engine, tenants=self.tenants)
            self.obs.start()
        self._open_sources = len(self._workloads)
        for tenant, template, arrivals, index in self._workloads:
            self.env.process(self._source(tenant, template, arrivals, index))
        self.env.process(self._dispatcher())
        if self.health is not None:
            self.health.start()
        if self.telemetry is not None:
            registry = self.telemetry.registry
            self.engine.register_telemetry(registry)
            retention = getattr(registry, "retention_s", None)
            if retention is not None:
                # Tie hardware busy-tracker memory to the telemetry
                # horizon: a forever-run must bound both the same way.
                self.ctx.cluster.set_tracker_retention(retention)
            registry.gauge(
                "repro_serve_queued_requests",
                "Admitted requests waiting for the job scheduler",
                lambda: len(self._queue), engine=self.engine.name)
            registry.gauge(
                "repro_serve_running_jobs",
                "Jobs currently executing on the engine",
                lambda: len(self._running), engine=self.engine.name)
            self.telemetry.start()
        self.env.run(until=self._all_done)
        if self.health is not None:
            self.health.stop()
        if self.telemetry is not None:
            self.telemetry.stop()
        if self.obs is not None:
            self.obs.stop()
        report = ServeReport.from_metrics(
            self.metrics, engine_name=self.engine.name,
            tenants=sorted(self.tenants),
            duration_s=self.env.now - start)
        if self.telemetry is not None:
            report.attach_telemetry(self.telemetry.registry)
        if self.clarity is not None:
            report.attach_clarity(self.clarity)
        datasvc = getattr(self.engine, "datasvc", None)
        if datasvc is not None:
            report.attach_datasvc(datasvc)
        if self.obs is not None:
            report.attach_obs(self.obs)
        return report

    def _source(self, tenant: str, template: JobTemplate, arrivals,
                index: int):
        stream = self.rng.stream(f"serve/{index}/{tenant}/{template.name}")
        for at in arrivals.times(stream):
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            self.submit(template, tenant=tenant)
        self._open_sources -= 1
        self._kick()

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _can_dispatch(self) -> bool:
        return (self.max_concurrent_jobs is None
                or len(self._running) < self.max_concurrent_jobs)

    def _dispatcher(self):
        while True:
            while self._queue and self._can_dispatch():
                request = self.scheduler.pick_next(self._queue)
                self._queue.remove(request)
                self._dispatch(request)
            if self._open_sources == 0 and not self._queue \
                    and not self._running:
                if self._all_done is not None \
                        and not self._all_done.triggered:
                    self._all_done.succeed()
                return
            self._wakeup = self.env.event()
            yield self._wakeup
            self._wakeup = None

    def _dispatch(self, request: JobRequest) -> None:
        if request.plan is None:
            request.plan = request.template.instantiate(self.ctx)
        request.dispatched = self.env.now
        driver = self.engine.submit_job(request.plan)
        self._running[request.plan.job_id] = request
        self.env.process(self._watch(request, driver))

    def _watch(self, request: JobRequest, driver):
        outcome, detail = "completed", ""
        result: Optional[JobResult] = None
        try:
            result = yield driver
        except ReproError as error:
            # A job may die for good (e.g. retries exhausted after an
            # unrecovered crash); the service keeps running.
            outcome, detail = "failed", type(error).__name__
        del self._running[request.plan.job_id]
        request.result = result
        if result is not None:
            self.scheduler.credit(request.tenant, result.duration)
            self.estimator.observe(request.template_name, self.metrics,
                                   result)
            if self.clarity is not None:
                self.clarity.observe_job(self.metrics, request.plan.job_id,
                                         engine=self.engine.name,
                                         tenant=request.tenant)
        self.metrics.record_serve(ServeRecord(
            tenant=request.tenant, template=request.template_name,
            arrival=request.arrival, job_id=request.plan.job_id,
            dispatched=request.dispatched, completed=self.env.now,
            outcome=outcome, estimate_s=request.estimate_s,
            slo_s=request.slo_s, detail=detail))
        request.done.succeed(result)
        self._kick()
