"""A queryable time-series store backed by per-series ring buffers.

Long serving runs sample telemetry forever; an unbounded flat list of
samples grows without limit and every per-series query scans all of it.
The :class:`TimeSeriesStore` keeps one bounded ring buffer per labeled
series instead: appends are O(1), a series lookup touches only that
series' points, and retention is enforced both by point capacity and by
simulated-time age, so an always-on clarity pipeline holds a sliding
window of history no matter how long the service runs.

The store is deliberately dependency-free (no simulation imports): it
stores ``(t, value)`` pairs under ``(name, labels)`` keys and answers
windowed aggregate queries -- mean/min/max/sum/last/rate and
linear-interpolated percentiles -- over them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.errors import ClarityError
from repro.stats import percentile as _shared_percentile

__all__ = ["TimeSeriesStore", "Labels", "AGGREGATIONS"]

#: Sorted (key, value) pairs -- hashable, deterministic label identity.
Labels = Tuple[Tuple[str, str], ...]

#: Supported fixed-name aggregations (percentiles are ``pNN`` strings).
AGGREGATIONS = ("mean", "min", "max", "sum", "count", "last", "rate")


def _percentile(values: List[float], q: float) -> float:
    # Shared definition from repro.stats (dependency-free, so the store
    # keeps its no-simulation-imports guarantee), re-raised under the
    # clarity error type.
    try:
        return _shared_percentile(values, q)
    except ValueError as exc:
        raise ClarityError(str(exc)) from None


class _Series:
    """One labeled series: a capacity- and age-bounded window of points.

    Points live in a plain time-sorted list behind a logical start
    offset (a deque would make the bisect probes O(n) per lookup);
    eviction advances the offset and the dead prefix is sliced away once
    it outgrows the live window, which amortizes to O(1) per append.
    """

    __slots__ = ("_points", "_start")

    def __init__(self) -> None:
        self._points: List[Tuple[float, float]] = []
        self._start = 0

    def __len__(self) -> int:
        return len(self._points) - self._start

    def append(self, t: float, value: float, capacity: int,
               retention_s: Optional[float]) -> None:
        points = self._points
        start = self._start
        if len(points) > start and t < points[-1][0]:
            raise ClarityError(
                f"out-of-order append at t={t!r}; series is at "
                f"t={points[-1][0]!r}")
        points.append((t, value))
        live = len(points) - start
        if live > capacity:
            start += live - capacity
        if retention_s is not None:
            # Drop points with t < horizon; the new point itself always
            # survives (horizon < t for positive retention).
            start = bisect_left(points, (t - retention_s, float("-inf")),
                                start)
        self._start = start
        if start > 64 and start * 2 >= len(points):
            del points[:start]
            self._start = 0

    def snapshot(self) -> List[Tuple[float, float]]:
        return self._points[self._start:]

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if len(self._points) > self._start else None

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        points = self._points
        lo = bisect_left(points, (start, float("-inf")), self._start)
        hi = bisect_right(points, (end, float("inf")), lo)
        return points[lo:hi]


class TimeSeriesStore:
    """Bounded per-series history with windowed aggregation.

    ``capacity_per_series`` caps how many points one series retains
    (oldest evicted first); ``retention_s`` additionally drops points
    older than that many seconds behind the series' newest point.
    """

    def __init__(self, capacity_per_series: int = 4096,
                 retention_s: Optional[float] = None) -> None:
        if capacity_per_series < 1:
            raise ClarityError(
                f"capacity_per_series must be >= 1: {capacity_per_series}")
        if retention_s is not None and not retention_s > 0:
            raise ClarityError(
                f"retention_s must be positive: {retention_s!r}")
        self.capacity_per_series = capacity_per_series
        self.retention_s = retention_s
        self._series: Dict[Tuple[str, Labels], _Series] = {}

    # -- writing -------------------------------------------------------------------

    def append(self, name: str, t: float, value: float,
               labels: Labels = ()) -> None:
        """Append one point to the ``(name, labels)`` series."""
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series()
        series.append(t, float(value), self.capacity_per_series,
                      self.retention_s)

    # -- reading -------------------------------------------------------------------

    def series(self) -> List[Tuple[str, Labels]]:
        """Every known (name, labels) pair, sorted."""
        return sorted(self._series)

    def points(self, name: str, labels: Labels = ()
               ) -> List[Tuple[float, float]]:
        """All retained (t, value) points of one series, oldest first.

        Unknown series yield an empty list (a series exists only once
        something has been appended to it).
        """
        series = self._series.get((name, labels))
        return series.snapshot() if series is not None else []

    def window(self, name: str, start: float, end: float,
               labels: Labels = ()) -> List[Tuple[float, float]]:
        """The series' points with ``start <= t <= end``."""
        series = self._series.get((name, labels))
        return series.window(start, end) if series is not None else []

    def latest(self, name: str, labels: Labels = ()
               ) -> Optional[Tuple[float, float]]:
        """The newest retained point, or None for an unknown series."""
        series = self._series.get((name, labels))
        return series.last() if series is not None else None

    def __len__(self) -> int:
        """Total retained points across every series."""
        return sum(len(s) for s in self._series.values())

    # -- aggregation ---------------------------------------------------------------

    def aggregate(self, name: str, agg: str, window_s: float,
                  now: Optional[float] = None,
                  labels: Labels = ()) -> Optional[float]:
        """One windowed aggregate of one series.

        ``agg`` is one of :data:`AGGREGATIONS` or a percentile spelled
        ``"p50"``/``"p95"``/``"p99.9"``.  The window is
        ``[now - window_s, now]``; ``now`` defaults to the series'
        newest point.  Returns None when the window holds no points.
        ``rate`` is the per-second change between the window's first and
        last points (the counter idiom); a single-point window rates 0.
        """
        if not window_s > 0:
            raise ClarityError(f"window_s must be positive: {window_s!r}")
        if now is None:
            newest = self.latest(name, labels)
            if newest is None:
                return None
            now = newest[0]
        points = self.window(name, now - window_s, now, labels=labels)
        if not points:
            return None
        values = [v for _, v in points]
        if agg == "mean":
            return sum(values) / len(values)
        if agg == "min":
            return min(values)
        if agg == "max":
            return max(values)
        if agg == "sum":
            return sum(values)
        if agg == "count":
            return float(len(values))
        if agg == "last":
            return values[-1]
        if agg == "rate":
            (t0, v0), (t1, v1) = points[0], points[-1]
            return 0.0 if t1 <= t0 else (v1 - v0) / (t1 - t0)
        if agg.startswith("p"):
            try:
                q = float(agg[1:])
            except ValueError:
                raise ClarityError(f"unknown aggregation {agg!r}")
            return _percentile(values, q)
        raise ClarityError(
            f"unknown aggregation {agg!r}; supported: "
            f"{', '.join(AGGREGATIONS)}, pNN")
