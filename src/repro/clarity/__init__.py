"""The always-on clarity pipeline: the paper's §6 payoff, continuously.

Four siloed subsystems -- serving (:mod:`repro.serve`), causal tracing
(:mod:`repro.trace`), the ideal model (:mod:`repro.model`), and metrics
-- become one observability story:

* :class:`TimeSeriesStore` -- bounded per-series ring buffers with
  windowed aggregation, backing sampled telemetry;
* :class:`ClarityAggregator` -- folds each completed job's
  critical-path attribution into rolling windows that answer "which
  resource/machine is the cluster's bottleneck over the last N
  seconds" (and say *not attributable* on blended engines);
* :class:`CapacityAdvisor` -- ranks candidate what-ifs (add a disk,
  HDD->SSD, 2x network, +/- machines, input in memory) by predicted
  p50/p95 improvement, with modeled-vs-measured provenance;
* :mod:`repro.clarity.validate` -- checks the advisor's ranking and
  error envelope against ground-truth re-simulation.

See ``docs/clarity.md``.
"""

# Only tsdb is imported eagerly: repro.trace.telemetry imports it from
# here, and the aggregator/advisor modules import repro.trace and
# repro.model back -- eager imports would cycle.  The rest of the public
# names resolve lazily (PEP 562) once the package graph is complete.
from repro.clarity.tsdb import AGGREGATIONS, Labels, TimeSeriesStore

_LAZY = {
    "ClarityAggregator": "repro.clarity.aggregator",
    "JobClarity": "repro.clarity.aggregator",
    "BottleneckWindow": "repro.clarity.aggregator",
    "CapacityAdvisor": "repro.clarity.advisor",
    "Candidate": "repro.clarity.advisor",
    "Recommendation": "repro.clarity.advisor",
    "AdvisorReport": "repro.clarity.advisor",
    "default_candidates": "repro.clarity.advisor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "TimeSeriesStore",
    "Labels",
    "AGGREGATIONS",
    "ClarityAggregator",
    "JobClarity",
    "BottleneckWindow",
    "CapacityAdvisor",
    "Candidate",
    "Recommendation",
    "AdvisorReport",
    "default_candidates",
]
