"""The capacity advisor: ranked what-ifs over the recent job window.

The paper's §6.2-§6.4 machinery answers "what would change X buy me?"
for one measured job.  The advisor asks it for *every* job the clarity
window observed and for a slate of candidate changes (add a disk,
HDD -> SSD, 2x network, +/- machines, input in memory), then ranks the
candidates by predicted p50/p95 improvement -- turning the offline
what-if model into an operator-facing capacity recommendation.

Every :class:`Recommendation` carries modeled-vs-measured provenance:
how many jobs backed it, the measured percentiles it scaled from, and
the mean modeled/measured ratio (how much of the measured time the
ideal model explains).  Predictions inherit the §6.2 procedure's error
envelope -- the paper reports worst-case relative error under 30% --
and :mod:`repro.clarity.validate` checks exactly that against
ground-truth re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import SSD
from repro.errors import ClarityError
from repro.metrics.utilization import percentile
from repro.model.ideal import HardwareProfile
from repro.model.predictor import WhatIf, predict

__all__ = ["Candidate", "Recommendation", "AdvisorReport",
           "CapacityAdvisor", "default_candidates"]


@dataclass(frozen=True)
class Candidate:
    """One named hypothetical change the advisor evaluates."""

    name: str
    what_if: WhatIf

    def describe(self) -> str:
        """Human-readable summary of the hypothetical change."""
        return self.what_if.describe()


def default_candidates(hardware: HardwareProfile,
                       include_software: bool = True) -> List[Candidate]:
    """The standard slate of capacity questions for ``hardware``.

    Hardware candidates: one more disk per machine, HDD -> SSD (only
    when the current disks are slower than SSD), doubled network, one
    machine added, one machine removed (when more than one exists).
    ``include_software`` adds the §6.3 input-in-memory-deserialized
    question.
    """
    candidates = [
        Candidate("add-disk", WhatIf(hardware=hardware.scaled(
            disks_per_machine=hardware.disks_per_machine + 1))),
        Candidate("2x-network", WhatIf(hardware=hardware.scaled(
            network_bps=hardware.network_bps * 2))),
        Candidate("add-machine", WhatIf(hardware=hardware.scaled(
            machines=hardware.num_machines + 1))),
    ]
    if hardware.disk_throughput_bps < SSD.throughput_bps:
        candidates.append(Candidate("hdd-to-ssd", WhatIf(
            hardware=hardware.scaled(
                disk_throughput_bps=SSD.throughput_bps))))
    if hardware.num_machines > 1:
        candidates.append(Candidate("remove-machine", WhatIf(
            hardware=hardware.scaled(
                machines=hardware.num_machines - 1))))
    if include_software:
        candidates.append(Candidate(
            "input-in-memory", WhatIf(input_in_memory_deserialized=True)))
    return candidates


@dataclass
class Recommendation:
    """One candidate's predicted effect on the window's latency."""

    name: str
    description: str
    #: Provenance: jobs the prediction was scaled from.
    jobs: int
    #: Measured service-time percentiles of those jobs (the baseline).
    measured_p50_s: float
    measured_p95_s: float
    #: Predicted percentiles under the candidate configuration.
    predicted_p50_s: float
    predicted_p95_s: float
    #: Provenance: mean modeled-baseline / measured ratio across the
    #: jobs -- how much of the measured time the ideal model explains
    #: (the §6.2 scaling corrects for the remainder).
    model_coverage: float

    @property
    def speedup_p95(self) -> float:
        """Measured p95 over predicted p95 (>1 = improvement)."""
        if self.predicted_p95_s <= 0:
            raise ClarityError(
                f"non-positive predicted p95 for {self.name!r}")
        return self.measured_p95_s / self.predicted_p95_s


@dataclass
class AdvisorReport:
    """The advisor's ranked answer for one window of jobs."""

    jobs: int
    attributable: bool
    #: Ranked best-first by predicted p95 (ties by name).
    recommendations: List[Recommendation] = field(default_factory=list)
    reason: str = ""

    @property
    def top(self) -> Optional[Recommendation]:
        """The best-ranked recommendation, if any."""
        return self.recommendations[0] if self.recommendations else None

    def format(self) -> str:
        """A stable, human-readable ranking table."""
        header = f"capacity advisor: {self.jobs} jobs in window"
        if not self.attributable:
            return (header + "\n  NOT ATTRIBUTABLE: " + self.reason)
        lines = [header,
                 "  rank  candidate         predicted p50  predicted p95  "
                 "speedup  jobs  model coverage"]
        for rank, rec in enumerate(self.recommendations, start=1):
            lines.append(
                f"  {rank:>4}  {rec.name:<16}  "
                f"{rec.predicted_p50_s:>11.2f}s  "
                f"{rec.predicted_p95_s:>11.2f}s  "
                f"{rec.speedup_p95:>6.2f}x  {rec.jobs:>4}  "
                f"{100.0 * rec.model_coverage:>13.1f}%")
        top = self.top
        if top is not None:
            lines.append(
                f"  recommend: {top.name} ({top.description}) -- "
                f"predicted p95 {top.measured_p95_s:.2f}s -> "
                f"{top.predicted_p95_s:.2f}s")
        return "\n".join(lines)


class CapacityAdvisor:
    """Ranks candidate what-ifs over a window of clarity observations.

    The advisor is deterministic: given the same observations (same
    seed, same simulation) it produces byte-identical rankings.
    """

    def __init__(self, hardware: HardwareProfile,
                 candidates: Optional[Sequence[Candidate]] = None) -> None:
        self.hardware = hardware
        self.candidates: List[Candidate] = (
            list(candidates) if candidates is not None
            else default_candidates(hardware))
        if not self.candidates:
            raise ClarityError("advisor needs at least one candidate")
        names = [c.name for c in self.candidates]
        if len(set(names)) != len(names):
            raise ClarityError(f"duplicate candidate names: {names}")

    def predictions(self, candidate: Candidate,
                    observations: Sequence) -> List[float]:
        """Per-job predicted durations under ``candidate`` (job order)."""
        return [predict(job.profiles, job.measured_s, self.hardware,
                        candidate.what_if).predicted_s
                for job in observations]

    def advise(self, observations: Sequence) -> AdvisorReport:
        """Rank every candidate over the attributable observations.

        ``observations`` are :class:`~repro.clarity.aggregator.JobClarity`
        entries (e.g. ``aggregator.observations()``); jobs without stage
        profiles -- blended-engine runs -- are excluded, and a window
        with none yields an explicitly not-attributable report rather
        than a fabricated ranking.
        """
        usable = [job for job in observations
                  if job.attributable and job.profiles]
        report = AdvisorReport(jobs=len(usable), attributable=bool(usable))
        if not usable:
            report.reason = (
                "no attributable jobs in the window: what-if prediction "
                "needs per-resource monotask profiles, which blended "
                "tasks do not report (§6.6)")
            return report
        measured = [job.measured_s for job in usable]
        measured_p50 = percentile(measured, 50)
        measured_p95 = percentile(measured, 95)
        for candidate in self.candidates:
            predicted: List[float] = []
            coverage = 0.0
            for job in usable:
                prediction = predict(job.profiles, job.measured_s,
                                     self.hardware, candidate.what_if)
                predicted.append(prediction.predicted_s)
                coverage += prediction.modeled_old_s / job.measured_s
            report.recommendations.append(Recommendation(
                name=candidate.name, description=candidate.describe(),
                jobs=len(usable),
                measured_p50_s=measured_p50, measured_p95_s=measured_p95,
                predicted_p50_s=percentile(predicted, 50),
                predicted_p95_s=percentile(predicted, 95),
                model_coverage=coverage / len(usable)))
        report.recommendations.sort(
            key=lambda rec: (rec.predicted_p95_s, rec.name))
        return report
