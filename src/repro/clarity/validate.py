"""Ground-truth validation of the capacity advisor.

The advisor's predictions are only worth acting on if they match what
the change would actually buy.  Because the cluster is simulated, the
ground truth is obtainable: re-build the cluster under each candidate
configuration, re-run the *same* seeded serving workload, and compare
the advisor's predicted service-time percentiles against the measured
ones.  The paper validates its §6.2 what-ifs the same way (against real
re-runs) and reports worst-case relative error under 30%; the
:data:`ERROR_ENVELOPE` here pins that envelope.

Everything is deterministic: the same :class:`ClarityWorkload` yields
byte-identical :class:`ValidationResult` JSON, which seeds the repo's
benchmark trajectory (``BENCH_clarity.json``) and is diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.api.context import AnalyticsContext
from repro.clarity.advisor import (AdvisorReport, Candidate, CapacityAdvisor)
from repro.clarity.aggregator import BottleneckWindow, ClarityAggregator
from repro.cluster.cluster import Cluster
from repro.config import HDD, MB, SSD, MachineSpec
from repro.errors import ClarityError
from repro.metrics.utilization import percentile
from repro.model.ideal import hardware_profile
from repro.model.predictor import WhatIf
from repro.workloads.scaling import scaled_memory_overrides

__all__ = ["ClarityWorkload", "CandidateOutcome", "ValidationResult",
           "run_clarity_serving", "validate_advisor", "ERROR_ENVELOPE"]

#: The paper's worst-case relative prediction error (§6.2).
ERROR_ENVELOPE = 0.30


@dataclass(frozen=True)
class ClarityWorkload:
    """One seeded serving workload the validation re-runs per config.

    A shuffle-heavy sort stream on a small HDD cluster: disk-bound, so
    the disk candidates separate cleanly from the network one.
    ``max_concurrent_jobs=1`` keeps service times contention-free --
    the what-if model predicts a job running alone, so the measured
    quantity must be the same thing.

    The task count is deliberately fine-grained (64 tasks over 4
    machines): the §6.1 model reasons about aggregate bandwidth, which
    matches reality only when load is balanced.  Coarse waves leave one
    machine carrying most of the critical path, and no aggregate
    what-if explains a straggler.
    """

    machines: int = 4
    disks: int = 2
    cores: int = 8
    network_mb_s: float = 125.0
    seed: int = 0
    fraction: float = 0.01
    duration_s: float = 300.0
    rate_per_s: float = 0.02
    sort_gb: float = 1.5
    sort_tasks: int = 64
    engine: str = "monospark"

    def build_cluster(self, disks: Optional[int] = None,
                      disk_throughput_bps: Optional[float] = None,
                      ssd: bool = False,
                      network_bps: Optional[float] = None,
                      machines: Optional[int] = None) -> Cluster:
        """The workload's cluster, with optional candidate overrides."""
        disk_spec = SSD if ssd else HDD
        if disk_throughput_bps is not None:
            disk_spec = replace(disk_spec,
                                throughput_bps=disk_throughput_bps)
        spec = MachineSpec(
            cores=self.cores,
            disks=(disk_spec,) * (disks if disks is not None else self.disks),
            network_bps=(network_bps if network_bps is not None
                         else self.network_mb_s * MB),
            **scaled_memory_overrides(self.fraction))
        return Cluster(machines if machines is not None else self.machines,
                       spec, seed=self.seed)


def run_clarity_serving(workload: ClarityWorkload,
                        cluster: Optional[Cluster] = None,
                        engine: Optional[str] = None,
                        ) -> Tuple[AnalyticsContext, "object",
                                   ClarityAggregator]:
    """Run the seeded serving stream with the clarity pipeline attached.

    Returns ``(ctx, serve_report, aggregator)``.  The aggregator's
    window spans the whole run, so ``aggregator.observations()`` is
    every completed job.
    """
    from repro.serve.server import JobServer
    from repro.serve.workload import PoissonArrivals, sort_template

    if cluster is None:
        cluster = workload.build_cluster()
    ctx = AnalyticsContext(cluster, engine=engine or workload.engine,
                           scheduling_policy="fair")
    aggregator = ClarityAggregator(window_s=workload.duration_s * 10,
                                   engine=ctx.engine.name)
    server = JobServer(ctx, policy="fifo", max_concurrent_jobs=1,
                       seed=workload.seed, clarity=aggregator)
    server.add_tenant("analytics")
    template = sort_template(ctx, total_gb=workload.sort_gb,
                             num_tasks=workload.sort_tasks,
                             seed=workload.seed)
    server.add_workload(
        "analytics", template,
        PoissonArrivals(workload.rate_per_s,
                        horizon_s=workload.duration_s))
    report = server.run()
    return ctx, report, aggregator


def _service_times(report) -> List[float]:
    return [r.service_s for r in report.records if r.outcome == "completed"]


@dataclass
class CandidateOutcome:
    """Predicted vs re-simulated percentiles for one candidate."""

    name: str
    predicted_p50_s: float
    predicted_p95_s: float
    actual_p50_s: float
    actual_p95_s: float

    @property
    def error_p50(self) -> float:
        """Relative p50 prediction error vs the re-simulation."""
        return abs(self.predicted_p50_s - self.actual_p50_s) \
            / self.actual_p50_s

    @property
    def error_p95(self) -> float:
        """Relative p95 prediction error vs the re-simulation."""
        return abs(self.predicted_p95_s - self.actual_p95_s) \
            / self.actual_p95_s


@dataclass
class ValidationResult:
    """The advisor ranking, the ground truth, and the errors."""

    engine: str
    seed: int
    jobs: int
    baseline_p50_s: float
    baseline_p95_s: float
    advisor: AdvisorReport
    bottleneck: BottleneckWindow
    #: Per-candidate outcomes, in the advisor's predicted rank order.
    outcomes: List[CandidateOutcome] = field(default_factory=list)

    @property
    def predicted_ranking(self) -> List[str]:
        """Candidate names best-first by predicted p95."""
        return [o.name for o in sorted(
            self.outcomes, key=lambda o: (o.predicted_p95_s, o.name))]

    @property
    def actual_ranking(self) -> List[str]:
        """Candidate names best-first by re-simulated p95."""
        return [o.name for o in sorted(
            self.outcomes, key=lambda o: (o.actual_p95_s, o.name))]

    @property
    def ranking_matches(self) -> bool:
        """Did the advisor order the candidates correctly?"""
        return self.predicted_ranking == self.actual_ranking

    @property
    def max_error_p95(self) -> float:
        """The worst relative p95 prediction error across candidates."""
        return max(o.error_p95 for o in self.outcomes)

    def to_json(self) -> Dict:
        """A byte-stable JSON-serializable summary (rounded floats)."""
        def r(x: float) -> float:
            return round(x, 4)
        top = self.advisor.top
        return {
            "benchmark": "clarity_advisor",
            "engine": self.engine,
            "seed": self.seed,
            "jobs": self.jobs,
            "baseline_p50_s": r(self.baseline_p50_s),
            "baseline_p95_s": r(self.baseline_p95_s),
            "bottleneck": (self.bottleneck.dominant[0]
                           if self.bottleneck.dominant else None),
            "advisor_top": top.name if top else None,
            "predicted_ranking": self.predicted_ranking,
            "actual_ranking": self.actual_ranking,
            "ranking_matches": self.ranking_matches,
            "max_error_p95": r(self.max_error_p95),
            "candidates": [
                {"name": o.name,
                 "predicted_p50_s": r(o.predicted_p50_s),
                 "predicted_p95_s": r(o.predicted_p95_s),
                 "actual_p50_s": r(o.actual_p50_s),
                 "actual_p95_s": r(o.actual_p95_s),
                 "error_p50": r(o.error_p50),
                 "error_p95": r(o.error_p95)}
                for o in self.outcomes],
        }


def validate_advisor(workload: ClarityWorkload = ClarityWorkload()
                     ) -> ValidationResult:
    """Advisor ranking vs ground-truth re-simulation for ``workload``.

    Three hardware candidates are both predicted and re-simulated:
    ``add-disk`` (one more disk per machine), ``hdd-to-ssd`` (the SSD
    disk spec), and ``2x-network``.  The advisor predicts from the
    baseline run's job window; the ground truth rebuilds the cluster
    and replays the identical seeded stream.
    """
    if workload.engine != "monospark":
        raise ClarityError(
            "advisor validation needs monotask profiles; run the "
            "workload on the monospark engine")
    cluster = workload.build_cluster()
    hardware = hardware_profile(cluster)
    _, report, aggregator = run_clarity_serving(workload, cluster=cluster)
    baseline = _service_times(report)
    if not baseline:
        raise ClarityError("baseline serving run completed no jobs")

    candidates = [
        Candidate("add-disk", WhatIf(hardware=hardware.scaled(
            disks_per_machine=workload.disks + 1))),
        Candidate("hdd-to-ssd", WhatIf(hardware=hardware.scaled(
            disk_throughput_bps=SSD.throughput_bps))),
        Candidate("2x-network", WhatIf(hardware=hardware.scaled(
            network_bps=hardware.network_bps * 2))),
    ]
    rebuilds = {
        "add-disk": dict(disks=workload.disks + 1),
        "hdd-to-ssd": dict(ssd=True),
        "2x-network": dict(network_bps=workload.network_mb_s * MB * 2),
    }
    advisor = CapacityAdvisor(hardware, candidates)
    observations = aggregator.observations()
    advisor_report = advisor.advise(observations)

    outcomes = []
    for rec in advisor_report.recommendations:
        candidate_cluster = workload.build_cluster(**rebuilds[rec.name])
        _, candidate_report, _ = run_clarity_serving(
            workload, cluster=candidate_cluster)
        actual = _service_times(candidate_report)
        if len(actual) != len(baseline):
            raise ClarityError(
                f"re-simulation of {rec.name!r} completed {len(actual)} "
                f"jobs vs baseline {len(baseline)}; the seeded stream "
                f"must replay identically")
        outcomes.append(CandidateOutcome(
            name=rec.name,
            predicted_p50_s=rec.predicted_p50_s,
            predicted_p95_s=rec.predicted_p95_s,
            actual_p50_s=percentile(actual, 50),
            actual_p95_s=percentile(actual, 95)))

    return ValidationResult(
        engine=workload.engine, seed=workload.seed,
        jobs=len(baseline),
        baseline_p50_s=percentile(baseline, 50),
        baseline_p95_s=percentile(baseline, 95),
        advisor=advisor_report,
        bottleneck=aggregator.bottleneck(),
        outcomes=outcomes)
