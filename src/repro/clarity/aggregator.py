"""Online cluster-level bottleneck attribution over rolling windows.

The per-job pieces already exist -- critical-path attribution
(:mod:`repro.trace.critpath`) explains one finished job, and the ideal
model (:mod:`repro.model.ideal`) profiles its stages -- but an operator
of a serving cluster asks a different question: *which resource (and
which machine) is the cluster's bottleneck over the last N seconds?*

The :class:`ClarityAggregator` answers it continuously: as each job
completes (the :class:`~repro.serve.server.JobServer` calls
:meth:`observe_job`), the job's critical-path segments and stage
profiles are folded into a bounded window of
:class:`JobClarity` observations, and :meth:`bottleneck` rolls the
window up into per-resource and per-machine critical-path fractions.

On MonoSpark the fractions decompose by real resources (cpu, disk,
disk queue, network, driver, ...).  On Spark's blended tasks the
aggregator keeps the accounting honest: the window is reported as
explicitly **not attributable** (the paper's §6.6 contrast) instead of
fabricating a per-resource split.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ClarityError, ModelError
from repro.model.ideal import StageProfile, profile_job
from repro.trace.critpath import critical_path

__all__ = ["JobClarity", "BottleneckWindow", "ClarityAggregator"]


@dataclass
class JobClarity:
    """One completed job's clarity observation.

    ``path_seconds`` and ``machine_seconds`` come straight from the
    job's critical path, so each sums to the job's wall-clock duration;
    ``profiles`` are the ideal-model stage profiles (empty when the
    engine's blended tasks admit none -- then ``attributable`` is
    False and only the blended totals are retained).
    """

    job_id: int
    name: str
    tenant: str
    engine: str
    start: float
    end: float
    attributable: bool
    #: Critical-path seconds per label ("cpu", "disk queue", ...).
    path_seconds: Dict[str, float] = field(default_factory=dict)
    #: Critical-path seconds per machine (-1 = driver).
    machine_seconds: Dict[int, float] = field(default_factory=dict)
    #: Ideal-model stage profiles (empty when not attributable).
    profiles: List[StageProfile] = field(default_factory=list)

    @property
    def measured_s(self) -> float:
        """The job's wall-clock duration."""
        return self.end - self.start


@dataclass
class BottleneckWindow:
    """The rolling-window answer to "what is the cluster's bottleneck?"

    ``fractions`` are critical-path fractions per label across the
    window's attributable jobs: non-negative, and they sum to (at most)
    1 -- the invariant the property tests pin.  When the window holds
    only blended-engine jobs, ``attributable`` is False, the fractions
    are empty, and ``reason`` says why.
    """

    window_s: float
    now: float
    jobs: int
    attributable_jobs: int
    attributable: bool
    #: Critical-path fraction per label (empty when not attributable).
    fractions: Dict[str, float] = field(default_factory=dict)
    #: Critical-path fraction per machine (-1 = driver).
    machine_fractions: Dict[int, float] = field(default_factory=dict)
    #: Wall-clock seconds summed over the window's attributable jobs.
    attributed_seconds: float = 0.0
    reason: str = ""
    #: Control-plane utilization per driver shard: the fraction of the
    #: window each replica's sequential admission loop spent busy
    #: (empty when no sharded control plane reported in).
    shard_fractions: Dict[int, float] = field(default_factory=dict)

    @property
    def dominant(self) -> Optional[Tuple[str, float]]:
        """(label, fraction) of the largest contributor, if decomposed."""
        if not self.fractions:
            return None
        return max(self.fractions.items(),
                   key=lambda item: (item[1], item[0]))

    @property
    def dominant_machine(self) -> Optional[Tuple[int, float]]:
        """(machine, fraction) of the busiest machine on the path."""
        if not self.machine_fractions:
            return None
        return max(self.machine_fractions.items(),
                   key=lambda item: (item[1], -item[0]))

    @property
    def dominant_shard(self) -> Optional[Tuple[int, float]]:
        """(driver, busy fraction) of the busiest control-plane shard."""
        if not self.shard_fractions:
            return None
        return max(self.shard_fractions.items(),
                   key=lambda item: (item[1], -item[0]))

    def format(self) -> str:
        """A stable, human-readable window summary."""
        header = (f"clarity window: last {self.window_s:g}s at "
                  f"t={self.now:.1f}s -- {self.jobs} jobs "
                  f"({self.attributable_jobs} attributable)")
        if self.jobs == 0:
            return self._with_shards(
                header + "\n  no jobs completed in the window")
        if not self.attributable:
            return self._with_shards(
                header + "\n  NOT ATTRIBUTABLE: " + self.reason)
        lines = [header, "  critical-path fraction by resource:"]
        for label, fraction in sorted(self.fractions.items(),
                                      key=lambda item: (-item[1], item[0])):
            lines.append(f"    {label:<16} {100.0 * fraction:5.1f}%")
        lines.append("  critical-path fraction by machine:")
        for machine, fraction in sorted(self.machine_fractions.items()):
            where = "driver" if machine < 0 else f"machine {machine}"
            lines.append(f"    {where:<16} {100.0 * fraction:5.1f}%")
        dominant = self.dominant
        if dominant is not None:
            label, fraction = dominant
            lines.append(f"  bottleneck: {label} "
                         f"({100.0 * fraction:.1f}% of the window's "
                         f"critical-path seconds)")
        return self._with_shards("\n".join(lines))

    def _with_shards(self, body: str) -> str:
        """Append the control-plane shard section (when one reported)."""
        if not self.shard_fractions:
            return body
        lines = [body, "  control-plane busy fraction by driver shard:"]
        for driver, fraction in sorted(self.shard_fractions.items()):
            lines.append(f"    driver {driver:<9} {100.0 * fraction:5.1f}%")
        shard = self.dominant_shard
        if shard is not None and shard[1] >= SHARD_SATURATION_FRACTION:
            lines.append(f"  saturated driver shard: driver {shard[0]} "
                         f"({100.0 * shard[1]:.1f}% busy -- the "
                         f"control plane, not a cluster resource, is "
                         f"this shard's bottleneck)")
        return "\n".join(lines)


#: A driver shard whose admission loop is busy at least this fraction
#: of the window is called out as saturated in the window summary.
SHARD_SATURATION_FRACTION = 0.9

#: Reason strings (kept stable: tests and reports match on them).
_BLENDED_REASON = (
    "this engine runs blended tasks that pipeline cpu, disk, and "
    "network internally; without per-resource monotask spans the "
    "window's critical paths cannot be decomposed by resource")


class ClarityAggregator:
    """Folds completed jobs into rolling bottleneck-attribution windows.

    ``window_s`` is the default query window; ``max_jobs`` bounds the
    retained observations (a ring, like the telemetry store) so the
    aggregator's memory is constant no matter how long the service
    runs.
    """

    def __init__(self, window_s: float = 120.0, max_jobs: int = 512,
                 engine: str = "") -> None:
        if not window_s > 0:
            raise ClarityError(f"window_s must be positive: {window_s!r}")
        if max_jobs < 1:
            raise ClarityError(f"max_jobs must be >= 1: {max_jobs}")
        self.window_s = window_s
        self.engine = engine
        self._jobs: Deque[JobClarity] = deque(maxlen=max_jobs)
        #: (end time, driver id, busy seconds) of control-plane work,
        #: reported per dispatch by a sharded control plane; bounded
        #: like the job ring so memory stays constant.
        self._control: Deque[Tuple[float, int, float]] = deque(
            maxlen=max(max_jobs * 16, 1024))

    # -- folding -------------------------------------------------------------------

    def observe_job(self, metrics, job_id: int, engine: str = "",
                    tenant: str = "") -> JobClarity:
        """Fold one finished job's attribution into the window.

        ``metrics`` is the engine's
        :class:`~repro.metrics.collector.MetricsCollector`; the job must
        have finished (the critical-path walk requires a closed window).
        """
        engine = engine or self.engine
        cached = getattr(metrics, "critical_path_report", None)
        if cached is not None:
            report = cached(job_id, engine=engine)
        else:  # duck-typed metrics without the collector cache
            report = critical_path(metrics, job_id, engine=engine)
        profiles: List[StageProfile] = []
        if report.attributable:
            try:
                profiles = profile_job(metrics, job_id)
            except ModelError:
                profiles = []
        observation = JobClarity(
            job_id=job_id, name=report.name, tenant=tenant, engine=engine,
            start=report.start, end=report.end,
            attributable=report.attributable,
            path_seconds=report.by_label(),
            machine_seconds=report.by_machine(),
            profiles=profiles)
        self._jobs.append(observation)
        return observation

    def observe_control(self, driver_id: int, busy_s: float,
                        at: float) -> None:
        """Fold one slice of control-plane work into the window.

        A :class:`~repro.controlplane.ControlPlane` driver replica calls
        this once per dispatch with the seconds its sequential admission
        loop spent on the request, so :meth:`bottleneck` can report a
        *driver shard* -- not just a cluster resource -- as saturated.
        """
        if not busy_s >= 0:
            raise ClarityError(f"busy_s must be >= 0: {busy_s!r}")
        self._control.append((at, driver_id, busy_s))

    # -- querying ------------------------------------------------------------------

    @property
    def total_observed(self) -> int:
        """Observations currently retained (bounded by ``max_jobs``)."""
        return len(self._jobs)

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if not self._jobs and not self._control:
            return 0.0
        ends = [job.end for job in self._jobs]
        ends.extend(at for at, _, _ in self._control)
        return max(ends)

    def observations(self, now: Optional[float] = None,
                     window_s: Optional[float] = None) -> List[JobClarity]:
        """Retained jobs that completed within ``[now - window, now]``."""
        window_s = window_s if window_s is not None else self.window_s
        now = self._now(now)
        return [job for job in self._jobs
                if now - window_s <= job.end <= now]

    def bottleneck(self, now: Optional[float] = None,
                   window_s: Optional[float] = None) -> BottleneckWindow:
        """Roll the window up into the cluster bottleneck answer."""
        window_s = window_s if window_s is not None else self.window_s
        now = self._now(now)
        jobs = self.observations(now=now, window_s=window_s)
        attributable = [job for job in jobs if job.attributable]
        summary = BottleneckWindow(
            window_s=window_s, now=now, jobs=len(jobs),
            attributable_jobs=len(attributable),
            attributable=bool(attributable))
        shard_seconds: Dict[int, float] = {}
        for at, driver_id, busy_s in self._control:
            if now - window_s <= at <= now:
                shard_seconds[driver_id] = (shard_seconds.get(driver_id, 0.0)
                                            + busy_s)
        summary.shard_fractions = {
            driver: min(seconds / window_s, 1.0)
            for driver, seconds in shard_seconds.items()}
        if not jobs:
            summary.reason = "no jobs completed in the window"
            return summary
        if not attributable:
            summary.reason = _BLENDED_REASON
            return summary
        label_seconds: Dict[str, float] = {}
        machine_seconds: Dict[int, float] = {}
        total = 0.0
        for job in attributable:
            for label, seconds in job.path_seconds.items():
                label_seconds[label] = label_seconds.get(label, 0.0) + seconds
            for machine, seconds in job.machine_seconds.items():
                machine_seconds[machine] = (machine_seconds.get(machine, 0.0)
                                            + seconds)
            total += job.measured_s
        if total <= 0:
            summary.attributable = False
            summary.reason = ("the window's jobs have zero wall-clock "
                              "duration")
            return summary
        summary.fractions = {label: seconds / total
                             for label, seconds in label_seconds.items()}
        summary.machine_fractions = {
            machine: seconds / total
            for machine, seconds in machine_seconds.items()}
        summary.attributed_seconds = total
        return summary
