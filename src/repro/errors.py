"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A structural problem in the discrete-event simulation."""


class EmptySchedule(SimulationError):
    """``Environment.step`` was called with no scheduled events."""


class StopSimulation(Exception):
    """Internal control-flow signal used by ``Environment.run(until=event)``.

    Not a :class:`ReproError`: it never escapes ``Environment.run``.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupted(SimulationError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ConfigError(ReproError):
    """Invalid hardware spec, cost model, or engine configuration."""


class PlanError(ReproError):
    """A logical plan could not be compiled into stages and tasks."""


class ExecutionError(ReproError):
    """A task failed while executing on the simulated cluster."""


class OutOfMemoryError(ExecutionError):
    """A worker exceeded its configured memory capacity."""


class ShuffleError(ExecutionError):
    """Shuffle data was requested that was never registered."""


class FaultError(ExecutionError):
    """Work was lost to an injected hardware fault."""


class MachineFailure(FaultError):
    """A machine crashed while work was running on or against it."""


class DiskFailure(FaultError):
    """A disk failed with requests outstanding."""


class LinkPartitionError(FaultError):
    """A flow was refused or killed by a network partition between its
    endpoints (fail-fast, so the task layer can back off and retry)."""


class FetchFailed(ExecutionError):
    """A reduce task found map output missing (lost with its machine).

    The engine reacts by re-registering the shuffle's lineage: the lost
    map tasks are re-executed before the reduce task is retried, mirroring
    Spark's FetchFailed / map-output-recompute path.
    """

    def __init__(self, shuffle_id: int, missing) -> None:
        self.shuffle_id = shuffle_id
        self.missing = sorted(missing)
        super().__init__(
            f"shuffle {shuffle_id}: map outputs {self.missing} missing")


class TaskFailedError(ExecutionError):
    """A task exhausted its retry budget."""


class ModelError(ReproError):
    """The performance model was given inconsistent measurements."""


class ClarityError(ReproError):
    """Invalid use of the clarity pipeline (time-series store,
    windowed aggregation, or the capacity advisor)."""


class ObsError(ReproError):
    """Invalid use of the observability plane (alert rules, the event
    journal, or the drift detector)."""


class CapsuleError(ReproError):
    """A run capsule is malformed: unknown schema version, missing or
    inconsistent manifest, or a line that does not parse."""
