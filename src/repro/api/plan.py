"""Physical plans: stages, task descriptors, and their I/O specs.

The DAG scheduler (`repro.api.dagscheduler`) compiles an RDD lineage into
a :class:`JobPlan` -- a DAG of :class:`Stage` objects, each a set of
:class:`TaskDescriptor` -- which both engines execute.  Everything an
engine needs to run a task is in the descriptor: where the input comes
from, the fused operator chain, and where the output goes.  *How* the
resources are used (fine-grained pipelining vs. monotasks) is entirely
the engine's business.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.api.ops import PhysicalOp
from repro.api.partitioners import Partitioner
from repro.cluster.hdfs import DfsBlock
from repro.datamodel.records import Partition
from repro.datamodel.serialization import PLAIN, DataFormat
from repro.errors import PlanError

__all__ = [
    "DfsInput",
    "LocalInput",
    "CachedInput",
    "ShuffleDep",
    "ShuffleInput",
    "ShuffleOutput",
    "DfsOutput",
    "CollectOutput",
    "CacheSpec",
    "TaskDescriptor",
    "Stage",
    "JobPlan",
]


# ---------------------------------------------------------------------------
# Input specs
# ---------------------------------------------------------------------------

@dataclass
class DfsInput:
    """Read one DFS block from disk."""

    block: DfsBlock
    fmt: DataFormat = PLAIN

    @property
    def preferred_machines(self) -> List[int]:
        """Machines holding a replica of the block."""
        return self.block.machines()

    @property
    def nbytes(self) -> float:
        """Stored (possibly compressed) bytes to read."""
        return self.fmt.stored_bytes(self.block.nbytes)


@dataclass
class LocalInput:
    """A partition shipped with the task (``parallelize`` data).

    Already deserialized in memory on whatever machine runs the task, so
    it costs neither disk nor network nor decode time.
    """

    partition: Partition

    @property
    def preferred_machines(self) -> List[int]:
        """No locality constraint: the data ships with the task."""
        return []


@dataclass
class CachedInput:
    """Read a partition cached by an earlier job (§6.3 experiments)."""

    rdd_id: int
    partition_index: int
    fmt: DataFormat  # DESERIALIZED for in-memory caches

    @property
    def preferred_machines(self) -> List[int]:
        """Resolved by the DAG scheduler from the block manager."""
        return []  # Filled in by the engine from its block manager.


@dataclass
class ShuffleDep:
    """One upstream shuffle a reduce stage depends on."""

    shuffle_id: int
    num_maps: int
    #: Which cogroup side this dep feeds (0 for single-dep shuffles).
    side: int = 0
    fmt: DataFormat = PLAIN


@dataclass
class ShuffleInput:
    """Fetch and merge shuffle buckets for one reduce partition."""

    deps: List[ShuffleDep]
    reduce_index: int
    #: Tag records with the dep's side, for cogroup. Single-dep shuffles
    #: pass records through untouched.
    tagged: bool = False

    def __post_init__(self) -> None:
        if not self.deps:
            raise PlanError("shuffle input needs at least one dependency")

    @property
    def preferred_machines(self) -> List[int]:
        """Reduce tasks fetch from everywhere: no locality."""
        return []  # Reduce tasks fetch from everywhere: no locality.


# ---------------------------------------------------------------------------
# Output specs
# ---------------------------------------------------------------------------

@dataclass
class ShuffleOutput:
    """Partition task output into shuffle buckets."""

    shuffle_id: int
    partitioner: Partitioner
    fmt: DataFormat = PLAIN
    #: Keep buckets in worker memory instead of writing them to disk
    #: (the paper's ML workload stores shuffle data in-memory, §5.2).
    in_memory: bool = False


@dataclass
class DfsOutput:
    """Write task output as a new block of a DFS file."""

    file_name: str
    fmt: DataFormat = PLAIN
    keep_payload: bool = False


@dataclass
class CollectOutput:
    """Return records to the driver.

    ``count_only`` collapses the result to a count, which also means the
    records need not be serialized back (matching Spark's count())."""

    count_only: bool = False


@dataclass
class CacheSpec:
    """Materialize the chain prefix into the worker's block manager."""

    rdd_id: int
    #: Number of chain ops applied before the cache point.
    after_ops: int
    fmt: DataFormat  # cached representation (DESERIALIZED by default)


# ---------------------------------------------------------------------------
# Tasks, stages, jobs
# ---------------------------------------------------------------------------

@dataclass
class TaskDescriptor:
    """Everything needed to run one task (multitask) on a worker."""

    job_id: int
    stage_id: int
    index: int
    input: Any  # DfsInput | LocalInput | CachedInput | ShuffleInput
    chain: List[PhysicalOp]
    output: Any  # ShuffleOutput | DfsOutput | CollectOutput
    cache: Optional[CacheSpec] = None
    preferred_machines: List[int] = field(default_factory=list)

    @property
    def task_id(self) -> str:
        """Unique id: job, stage, and task index."""
        return f"j{self.job_id}s{self.stage_id}t{self.index}"


@dataclass
class Stage:
    """A set of independent tasks with the same chain and output."""

    job_id: int
    stage_id: int
    tasks: List[TaskDescriptor]
    #: Stage ids that must complete first (their shuffle outputs feed us).
    parent_stage_ids: List[int] = field(default_factory=list)
    name: str = ""

    @property
    def num_tasks(self) -> int:
        """How many tasks the stage contains."""
        return len(self.tasks)

    def is_ready(self, completed: set) -> bool:
        """True once every parent stage id is in ``completed``."""
        return all(parent in completed for parent in self.parent_stage_ids)


@dataclass
class JobPlan:
    """A compiled job: stages in a valid topological order."""

    job_id: int
    stages: List[Stage]
    name: str = ""

    def __post_init__(self) -> None:
        seen = set()
        for stage in self.stages:
            for parent in stage.parent_stage_ids:
                if parent not in seen:
                    raise PlanError(
                        f"stage {stage.stage_id} listed before its parent "
                        f"{parent}")
            seen.add(stage.stage_id)

    @property
    def final_stage(self) -> Stage:
        """The result stage (last in topological order)."""
        return self.stages[-1]

    def stage(self, stage_id: int) -> Stage:
        """Look up a stage by id."""
        for stage in self.stages:
            if stage.stage_id == stage_id:
                return stage
        raise PlanError(f"no stage {stage_id} in job {self.job_id}")
