"""User-facing API: context, RDDs, operators, partitioners, plans."""

from repro.api.context import AnalyticsContext
from repro.api.dagscheduler import DagScheduler
from repro.api.ops import (CoGroupOp, CombineByKeyOp, FilterOp, FlatMapOp,
                           GroupByKeyOp, JoinFlattenOp, MapOp,
                           MapPartitionsOp, OpCost, PhysicalOp, SortOp,
                           run_chain)
from repro.api.partitioners import HashPartitioner, Partitioner, RangePartitioner
from repro.api.plan import (CachedInput, CollectOutput, DfsInput, DfsOutput,
                            JobPlan, LocalInput, ShuffleDep, ShuffleInput,
                            ShuffleOutput, Stage, TaskDescriptor)
from repro.api.rdd import (DfsFileRDD, NarrowRDD, ParallelizedRDD, RDD,
                           ShuffledRDD, UnionRDD)

__all__ = [
    "AnalyticsContext",
    "DagScheduler",
    "RDD",
    "DfsFileRDD",
    "ParallelizedRDD",
    "NarrowRDD",
    "ShuffledRDD",
    "UnionRDD",
    "OpCost",
    "PhysicalOp",
    "MapOp",
    "FlatMapOp",
    "FilterOp",
    "MapPartitionsOp",
    "CombineByKeyOp",
    "GroupByKeyOp",
    "SortOp",
    "CoGroupOp",
    "JoinFlattenOp",
    "run_chain",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "JobPlan",
    "Stage",
    "TaskDescriptor",
    "DfsInput",
    "LocalInput",
    "CachedInput",
    "ShuffleInput",
    "ShuffleDep",
    "ShuffleOutput",
    "DfsOutput",
    "CollectOutput",
]
