"""Partitioners: how shuffle writers route records to reduce partitions."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Sequence

from repro.errors import PlanError

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner"]


class Partitioner(ABC):
    """Maps a ``(key, value)`` record to a reduce partition index."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise PlanError(f"need >= 1 partition: {num_partitions}")
        self.num_partitions = num_partitions

    @abstractmethod
    def partition(self, record: Any) -> int:
        """Reduce partition for one record."""

    def split(self, records: Sequence[Any]) -> List[List[Any]]:
        """Bucket records by reduce partition."""
        buckets: List[List[Any]] = [[] for _ in range(self.num_partitions)]
        for record in records:
            buckets[self.partition(record)].append(record)
        return buckets


class HashPartitioner(Partitioner):
    """Spark's default: hash of the record key, modulo partitions.

    Python's string hashing is randomized per process; a deterministic
    polynomial hash keeps simulations reproducible across runs.
    """

    def partition(self, record: Any) -> int:
        key = record[0] if isinstance(record, tuple) else record
        return self._stable_hash(key) % self.num_partitions

    @staticmethod
    def _stable_hash(key: Any) -> int:
        if isinstance(key, str):
            value = 0
            for char in key:
                value = (value * 31 + ord(char)) & 0x7FFFFFFF
            return value
        if isinstance(key, bool):
            return int(key)
        if isinstance(key, int):
            return key & 0x7FFFFFFF
        if isinstance(key, float):
            return int(key * 2654435761) & 0x7FFFFFFF
        if isinstance(key, tuple):
            value = 0
            for item in key:
                value = (value * 31 + HashPartitioner._stable_hash(item)
                         ) & 0x7FFFFFFF
            return value
        return abs(hash(key)) & 0x7FFFFFFF


class RangePartitioner(Partitioner):
    """Routes by sorted key ranges, as Spark's ``sortByKey`` does.

    ``boundaries`` are the ``num_partitions - 1`` split points: a record
    with key <= boundaries[i] lands in the first partition whose boundary
    bounds it.
    """

    def __init__(self, boundaries: Sequence[Any],
                 key_fn: Callable[[Any], Any] = lambda r: r[0]) -> None:
        super().__init__(len(boundaries) + 1)
        self.boundaries = list(boundaries)
        if self.boundaries != sorted(self.boundaries):
            raise PlanError("range boundaries must be sorted")
        self.key_fn = key_fn

    def partition(self, record: Any) -> int:
        key = self.key_fn(record)
        # Linear scan is fine: partition counts are modest and the scan is
        # over boundaries, not records.  (bisect needs orderable keys only.)
        import bisect
        return bisect.bisect_left(self.boundaries, key)

    @classmethod
    def from_sample(cls, sample_keys: Sequence[Any], num_partitions: int,
                    key_fn: Callable[[Any], Any] = lambda r: r[0]
                    ) -> "RangePartitioner":
        """Choose balanced boundaries from a key sample (Spark samples the
        input with a lightweight pre-pass job; we sample at plan time)."""
        if num_partitions < 1:
            raise PlanError(f"need >= 1 partition: {num_partitions}")
        if num_partitions == 1:
            return cls([], key_fn=key_fn)
        ordered = sorted(sample_keys)
        if not ordered:
            raise PlanError("cannot derive range boundaries from an empty "
                            "sample; pass explicit boundaries")
        boundaries = []
        for i in range(1, num_partitions):
            index = min(len(ordered) - 1, i * len(ordered) // num_partitions)
            boundaries.append(ordered[index])
        return cls(boundaries, key_fn=key_fn)
