"""Compiles an RDD lineage into stages of task descriptors.

Works exactly like Spark's DAGScheduler (§2.1): walk the lineage from the
action backwards, cut it at shuffle dependencies, fuse each narrow chain
into a single stage, and emit one task per partition with locality
preferences.  Both engines consume the identical plan -- the paper's
claim that decomposition into monotasks "can be done internally by the
framework without changing the existing API" (§3.2) corresponds to this
shared compilation step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.api.ops import MapOp, PhysicalOp
from repro.api.plan import (CachedInput, CacheSpec, DfsInput, JobPlan,
                            LocalInput, ShuffleDep, ShuffleInput,
                            ShuffleOutput, Stage, TaskDescriptor)
from repro.api.rdd import (DfsFileRDD, NarrowRDD, ParallelizedRDD, RDD,
                           ShuffledRDD, UnionRDD)
from repro.datamodel.serialization import PLAIN
from repro.errors import PlanError

__all__ = ["DagScheduler"]


class DagScheduler:
    """Stateful compiler: one instance per context."""

    def __init__(self, block_manager: Optional[Any] = None,
                 shuffle_in_memory: bool = False) -> None:
        #: Engine block manager consulted for already-cached partitions.
        self.block_manager = block_manager
        #: Keep shuffle buckets in memory instead of on disk (ML workload).
        self.shuffle_in_memory = shuffle_in_memory
        self._next_shuffle_id = 0
        self._next_job_id = 0

    # -- public entry point -------------------------------------------------------

    def compile(self, rdd: RDD, output: Any, name: str = "") -> JobPlan:
        """Build the stage DAG that computes ``rdd`` into ``output``."""
        job_id = self.allocate_job_id()
        builder = _JobBuilder(self, job_id)
        final_stage_id = builder.build_result_stage(rdd, output)
        stages = builder.stages_in_order(final_stage_id)
        return JobPlan(job_id=job_id, stages=stages, name=name)

    def allocate_job_id(self) -> int:
        """Globally unique job id (used by plan-template instantiation)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    def allocate_shuffle_id(self) -> int:
        """Globally unique shuffle id (unique across jobs)."""
        shuffle_id = self._next_shuffle_id
        self._next_shuffle_id += 1
        return shuffle_id


class _JobBuilder:
    """Per-job compilation state."""

    def __init__(self, scheduler: DagScheduler, job_id: int) -> None:
        self.scheduler = scheduler
        self.job_id = job_id
        self._stages: Dict[int, Stage] = {}
        self._next_stage_id = 0
        #: ShuffledRDD id -> (shuffle_id, map stage ids) already compiled,
        #: so diamond lineages reuse the same map stages.
        self._shuffles_built: Dict[int, Tuple[int, List[int]]] = {}

    # -- stage construction ----------------------------------------------------------

    def build_result_stage(self, rdd: RDD, output: Any) -> int:
        return self._build_stage(rdd, output)

    def _build_stage(self, rdd: RDD, output: Any) -> int:
        """Compile the stage whose final RDD is ``rdd``."""
        chain, cache_specs, boundary = self._walk_narrow_chain(rdd)
        stage_id = self._allocate_stage_id()
        cache = cache_specs[-1] if cache_specs else None
        if len(cache_specs) > 1:
            # Multiple cache points in one fused chain: honor them all by
            # keeping only the last as a CacheSpec is lossy, so refuse.
            raise PlanError("at most one cache() point per narrow chain is "
                            "supported; insert an action between them")
        tasks, parent_stage_ids = self._tasks_for_boundary(
            boundary, list(chain), stage_id, output, cache, index_offset=0)
        stage = Stage(job_id=self.job_id, stage_id=stage_id, tasks=tasks,
                      parent_stage_ids=sorted(set(parent_stage_ids)),
                      name=self._stage_name(boundary, output))
        self._stages[stage_id] = stage
        return stage_id

    def _tasks_for_boundary(self, boundary: Any, chain: List[PhysicalOp],
                            stage_id: int, output: Any,
                            cache: Optional[CacheSpec],
                            index_offset: int
                            ) -> Tuple[List[TaskDescriptor], List[int]]:
        """Build one boundary's tasks, recursing through unions."""
        parent_stage_ids: List[int] = []
        tasks: List[TaskDescriptor] = []

        if isinstance(boundary, _CachedBoundary):
            for index in range(boundary.rdd.num_partitions):
                machine = self._cached_location(boundary.rdd, index)
                tasks.append(TaskDescriptor(
                    job_id=self.job_id, stage_id=stage_id,
                    index=index_offset + index,
                    input=CachedInput(boundary.rdd.rdd_id, index,
                                      boundary.rdd.cache_fmt),
                    chain=list(chain), output=output, cache=cache,
                    preferred_machines=[machine] if machine is not None
                    else []))
        elif isinstance(boundary, DfsFileRDD):
            dfs_file = boundary.ctx.cluster.dfs.get_file(boundary.file_name)
            for index, block in enumerate(dfs_file.blocks):
                tasks.append(TaskDescriptor(
                    job_id=self.job_id, stage_id=stage_id,
                    index=index_offset + index,
                    input=DfsInput(block, boundary.fmt),
                    chain=list(chain), output=output, cache=cache,
                    preferred_machines=block.machines()))
        elif isinstance(boundary, ParallelizedRDD):
            for index, partition in enumerate(boundary.partitions):
                tasks.append(TaskDescriptor(
                    job_id=self.job_id, stage_id=stage_id,
                    index=index_offset + index,
                    input=LocalInput(partition),
                    chain=list(chain), output=output, cache=cache))
        elif isinstance(boundary, UnionRDD):
            # A union stage holds every branch's tasks side by side, each
            # with its branch's narrow chain fused in front of the shared
            # suffix.
            for parent in boundary.parents:
                sub_chain, sub_caches, sub_boundary = \
                    self._walk_narrow_chain(parent)
                if sub_caches:
                    raise PlanError(
                        "cache() inside a union branch is not supported; "
                        "materialize the branch with an action first")
                branch_cache = cache
                if branch_cache is not None:
                    branch_cache = CacheSpec(
                        rdd_id=branch_cache.rdd_id,
                        after_ops=branch_cache.after_ops + len(sub_chain),
                        fmt=branch_cache.fmt)
                branch_tasks, branch_parents = self._tasks_for_boundary(
                    sub_boundary, list(sub_chain) + list(chain), stage_id,
                    output, branch_cache,
                    index_offset=index_offset + len(tasks))
                tasks.extend(branch_tasks)
                parent_stage_ids.extend(branch_parents)
        elif isinstance(boundary, ShuffledRDD):
            deps = []
            for side, parent in enumerate(boundary.parents):
                shuffle_id, map_stage_ids = self._build_shuffle_map_stages(
                    boundary, side, parent)
                parent_stage_ids.extend(map_stage_ids)
                deps.append(ShuffleDep(
                    shuffle_id=shuffle_id,
                    num_maps=parent.num_partitions,
                    side=side, fmt=PLAIN))
            reduce_chain = list(boundary.post_shuffle_ops) + list(chain)
            # Cache point offsets were computed relative to the narrow
            # chain; shift them past the reduce-side ops.
            if cache is not None:
                cache = CacheSpec(
                    rdd_id=cache.rdd_id,
                    after_ops=cache.after_ops
                    + len(boundary.post_shuffle_ops),
                    fmt=cache.fmt)
            for index in range(boundary.num_partitions):
                tasks.append(TaskDescriptor(
                    job_id=self.job_id, stage_id=stage_id,
                    index=index_offset + index,
                    input=ShuffleInput(deps=list(deps), reduce_index=index,
                                       tagged=boundary.is_cogroup),
                    chain=list(reduce_chain), output=output, cache=cache))
        else:
            raise PlanError(f"unsupported stage boundary: {boundary!r}")
        return tasks, parent_stage_ids

    def _build_shuffle_map_stages(self, shuffled: ShuffledRDD, side: int,
                                  parent: RDD) -> Tuple[int, List[int]]:
        """Compile (or reuse) the map stage feeding one side of a shuffle."""
        key = (shuffled.rdd_id, side)
        if key in self._shuffles_built:
            return self._shuffles_built[key]
        shuffle_id = self.scheduler.allocate_shuffle_id()
        map_output = ShuffleOutput(
            shuffle_id=shuffle_id, partitioner=shuffled.partitioner,
            fmt=PLAIN, in_memory=self.scheduler.shuffle_in_memory)
        map_stage_id = self._build_stage(parent, map_output)
        # Map-side pre-shuffle ops (combining, cogroup tagging) run at the
        # end of the map stage's chain.
        extra_ops = list(shuffled.pre_shuffle_ops[side])
        if shuffled.is_cogroup:
            extra_ops.append(_tag_op(side))
        if extra_ops:
            for task in self._stages[map_stage_id].tasks:
                task.chain = task.chain + extra_ops
        result = (shuffle_id, [map_stage_id])
        self._shuffles_built[key] = result
        return result

    # -- narrow chain walking ----------------------------------------------------------

    def _walk_narrow_chain(
            self, rdd: RDD) -> Tuple[List[PhysicalOp], List[CacheSpec], Any]:
        """Fuse narrow ops from a boundary up to ``rdd``.

        Returns ``(ops, cache specs, boundary)``.  The boundary is the
        source RDD, a ShuffledRDD, or a ``_CachedBoundary`` when an
        already-materialized cached RDD short-circuits the walk.
        """
        reversed_ops: List[PhysicalOp] = []
        cache_rdds: List[Tuple[RDD, int]] = []  # (rdd, ops below it)
        current: RDD = rdd
        while True:
            if current.cached and self._is_materialized(current):
                boundary: Any = _CachedBoundary(current)
                break
            if isinstance(current, NarrowRDD):
                if current.cached:
                    cache_rdds.append((current, len(reversed_ops)))
                reversed_ops.append(current.op)
                current = current.parent
                continue
            boundary = current
            if current.cached:
                cache_rdds.append((current, len(reversed_ops)))
            break
        ops = list(reversed(reversed_ops))
        cache_specs = [
            CacheSpec(rdd_id=cache_rdd.rdd_id,
                      after_ops=len(ops) - ops_below,
                      fmt=cache_rdd.cache_fmt)
            for cache_rdd, ops_below in cache_rdds
        ]
        return ops, cache_specs, boundary

    def _is_materialized(self, rdd: RDD) -> bool:
        block_manager = self.scheduler.block_manager
        if block_manager is None:
            return False
        return all(block_manager.has(rdd.rdd_id, index)
                   for index in range(rdd.num_partitions))

    def _cached_location(self, rdd: RDD, index: int) -> Optional[int]:
        block_manager = self.scheduler.block_manager
        if block_manager is None:
            return None
        return block_manager.location(rdd.rdd_id, index)

    # -- misc -----------------------------------------------------------------------

    def _allocate_stage_id(self) -> int:
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        return stage_id

    def _stage_name(self, boundary: Any, output: Any) -> str:
        source = type(boundary).__name__
        if isinstance(boundary, _CachedBoundary):
            source = "cached"
        elif isinstance(boundary, ShuffledRDD):
            source = boundary.name
        sink = type(output).__name__
        return f"{source}->{sink}"

    def stages_in_order(self, final_stage_id: int) -> List[Stage]:
        """Topological order with parents first (ids ascend with depth,
        but a stage's parents always have *larger* ids because children
        are allocated first; sort by dependency instead)."""
        ordered: List[Stage] = []
        visited: set = set()

        def visit(stage_id: int) -> None:
            if stage_id in visited:
                return
            visited.add(stage_id)
            stage = self._stages[stage_id]
            for parent in stage.parent_stage_ids:
                visit(parent)
            ordered.append(stage)

        visit(final_stage_id)
        return ordered


class _CachedBoundary:
    """Marker: the walk stopped at a materialized cached RDD."""

    def __init__(self, rdd: RDD) -> None:
        self.rdd = rdd

    def __repr__(self) -> str:
        return f"_CachedBoundary(rdd={self.rdd.rdd_id})"


def _tag_op(side: int) -> MapOp:
    """Wrap values with their cogroup side: ``(k, v) -> (k, (side, v))``."""
    return MapOp(lambda kv: (kv[0], (side, kv[1])), size_ratio=1.0,
                 name=f"tag_side_{side}")
