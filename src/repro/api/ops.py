"""Physical operators: real record transforms plus cost/size models.

Every narrow transformation in a task's fused chain is a
:class:`PhysicalOp`.  An op does two things:

* ``apply(records)`` -- the *real* transformation, so results are correct;
* modeled accounting -- how the partition's modeled ``record_count`` and
  ``data_bytes`` change, and how much CPU time the op charges.

Modeled sizes follow the observed real ratios by default.  Workloads that
scale data down can override with ``count_ratio`` / ``size_ratio`` /
``output_row_bytes`` when the real sample would misestimate (e.g. a
selective filter measured on a tiny sample).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.datamodel.records import Partition
from repro.errors import PlanError

__all__ = [
    "OpCost",
    "PhysicalOp",
    "MapOp",
    "FlatMapOp",
    "FilterOp",
    "MapPartitionsOp",
    "CombineByKeyOp",
    "GroupByKeyOp",
    "SortOp",
    "CoGroupOp",
    "JoinFlattenOp",
    "run_chain",
    "chain_cpu_seconds",
]


@dataclass(frozen=True)
class OpCost:
    """CPU seconds charged per modeled input record and per modeled byte."""

    per_record_s: float = 0.1e-6
    per_byte_s: float = 0.0


class PhysicalOp(ABC):
    """One step of a fused narrow chain."""

    name: str = "op"

    def __init__(self, cost: OpCost = OpCost(),
                 count_ratio: Optional[float] = None,
                 size_ratio: Optional[float] = None,
                 output_row_bytes: Optional[Callable[[Any], float]] = None,
                 name: Optional[str] = None) -> None:
        self.cost = cost
        self.count_ratio = count_ratio
        self.size_ratio = size_ratio
        self.output_row_bytes = output_row_bytes
        if name is not None:
            self.name = name

    @abstractmethod
    def apply(self, records: List[Any]) -> List[Any]:
        """Transform real records."""

    def cpu_seconds(self, partition: Partition) -> float:
        """CPU time charged for this op, from modeled input sizes."""
        return (self.cost.per_record_s * partition.record_count
                + self.cost.per_byte_s * partition.data_bytes)

    def transform(self, partition: Partition) -> Partition:
        """Apply to real records and re-derive modeled sizes."""
        out_records = self.apply(partition.records)
        if self.count_ratio is not None:
            count_ratio = self.count_ratio
        elif partition.records:
            count_ratio = len(out_records) / len(partition.records)
        else:
            count_ratio = 1.0
        out_count = partition.record_count * count_ratio
        if self.output_row_bytes is not None and out_records:
            mean_bytes = (sum(self.output_row_bytes(r) for r in out_records)
                          / len(out_records))
            out_bytes = mean_bytes * out_count
        elif self.size_ratio is not None:
            out_bytes = partition.data_bytes * self.size_ratio
        else:
            out_bytes = partition.data_bytes * count_ratio
        return partition.with_records(out_records, out_count, out_bytes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class MapOp(PhysicalOp):
    name = "map"

    def __init__(self, fn: Callable[[Any], Any], **kwargs) -> None:
        super().__init__(**kwargs)
        self.fn = fn

    def apply(self, records: List[Any]) -> List[Any]:
        return [self.fn(record) for record in records]


class FlatMapOp(PhysicalOp):
    name = "flat_map"

    def __init__(self, fn: Callable[[Any], Sequence[Any]], **kwargs) -> None:
        super().__init__(**kwargs)
        self.fn = fn

    def apply(self, records: List[Any]) -> List[Any]:
        out: List[Any] = []
        for record in records:
            out.extend(self.fn(record))
        return out


class FilterOp(PhysicalOp):
    name = "filter"

    def __init__(self, predicate: Callable[[Any], bool], **kwargs) -> None:
        super().__init__(**kwargs)
        self.predicate = predicate

    def apply(self, records: List[Any]) -> List[Any]:
        return [record for record in records if self.predicate(record)]


class MapPartitionsOp(PhysicalOp):
    name = "map_partitions"

    def __init__(self, fn: Callable[[List[Any]], List[Any]], **kwargs) -> None:
        super().__init__(**kwargs)
        self.fn = fn

    def apply(self, records: List[Any]) -> List[Any]:
        return list(self.fn(records))


class CombineByKeyOp(PhysicalOp):
    """Key-wise aggregation over ``(key, value)`` records.

    Used both map-side (combining before the shuffle write, as Spark's
    ``reduceByKey`` does) and reduce-side (merging fetched buckets).
    """

    name = "combine_by_key"

    def __init__(self, merge: Callable[[Any, Any], Any], **kwargs) -> None:
        super().__init__(**kwargs)
        self.merge = merge

    def apply(self, records: List[Any]) -> List[Any]:
        combined: Dict[Any, Any] = {}
        for key, value in records:
            if key in combined:
                combined[key] = self.merge(combined[key], value)
            else:
                combined[key] = value
        return list(combined.items())

    def transform(self, partition: Partition) -> Partition:
        # Aggregation collapses duplicates; the real ratio is the best
        # available estimate of the modeled ratio unless overridden.
        return super().transform(partition)


class GroupByKeyOp(PhysicalOp):
    """Group ``(key, value)`` records into ``(key, [values])``."""

    name = "group_by_key"

    def apply(self, records: List[Any]) -> List[Any]:
        grouped: Dict[Any, List[Any]] = {}
        for key, value in records:
            grouped.setdefault(key, []).append(value)
        return list(grouped.items())


class SortOp(PhysicalOp):
    """Sort records (reduce side of ``sortByKey``)."""

    name = "sort"

    def __init__(self, key_fn: Callable[[Any], Any] = lambda r: r[0],
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.key_fn = key_fn

    def apply(self, records: List[Any]) -> List[Any]:
        return sorted(records, key=self.key_fn)


class CoGroupOp(PhysicalOp):
    """Reduce-side cogroup for joins.

    Input records are tagged ``(key, (side, value))`` by the shuffle
    reader; output is ``(key, ([left values], [right values], ...))``.
    """

    name = "cogroup"

    def __init__(self, num_sides: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if num_sides < 1:
            raise PlanError("cogroup needs at least one side")
        self.num_sides = num_sides

    def apply(self, records: List[Any]) -> List[Any]:
        grouped: Dict[Any, Tuple[List[Any], ...]] = {}
        for key, (side, value) in records:
            if key not in grouped:
                grouped[key] = tuple([] for _ in range(self.num_sides))
            grouped[key][side].append(value)
        return list(grouped.items())


class JoinFlattenOp(PhysicalOp):
    """Turn cogrouped ``(key, ([lefts], [rights]))`` into inner-join rows."""

    name = "join_flatten"

    def apply(self, records: List[Any]) -> List[Any]:
        out: List[Any] = []
        for key, (lefts, rights) in records:
            for left in lefts:
                for right in rights:
                    out.append((key, (left, right)))
        return out


def run_chain(partition: Partition,
              ops: Sequence[PhysicalOp]) -> Tuple[Partition, float]:
    """Apply a fused chain; return (output partition, op CPU seconds).

    The returned CPU time covers the operators only; (de)serialization
    is charged separately by the engines so that it can be reported as a
    distinct phase (§6.3).
    """
    cpu_seconds = 0.0
    current = partition
    for op in ops:
        cpu_seconds += op.cpu_seconds(current)
        current = op.transform(current)
    return current, cpu_seconds


def chain_cpu_seconds(partition: Partition,
                      ops: Sequence[PhysicalOp]) -> float:
    """Op CPU time without keeping the transformed records."""
    _, cpu_seconds = run_chain(partition, ops)
    return cpu_seconds
