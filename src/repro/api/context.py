"""The entry point: an analytics context bound to a cluster and an engine.

Mirrors ``SparkContext``: create datasets with :meth:`text_file` /
:meth:`parallelize`, transform them with the RDD API, and run actions.
Switching between the Spark-style engine and MonoSpark is a constructor
argument -- the paper's "change your build file to refer to MonoSpark
rather than Spark" (§4) becomes ``engine="monospark"``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from repro.api.dagscheduler import DagScheduler
from repro.api.plan import CollectOutput, DfsOutput, JobPlan
from repro.api.rdd import DfsFileRDD, ParallelizedRDD, RDD
from repro.cluster.cluster import Cluster
from repro.config import CostModel
from repro.datamodel.records import Partition, estimate_record_bytes
from repro.datamodel.serialization import PLAIN, DataFormat
from repro.engine.base import BaseEngine, JobResult
from repro.errors import ConfigError
from repro.monospark.engine import MonoSparkEngine
from repro.spark.engine import SparkEngine

__all__ = ["AnalyticsContext"]

_ENGINES = {
    "spark": SparkEngine,
    "monospark": MonoSparkEngine,
}


class AnalyticsContext:
    """Owns a cluster, an engine, and the plan compiler."""

    def __init__(self, cluster: Cluster,
                 engine: Union[str, BaseEngine] = "monospark",
                 cost_model: Optional[CostModel] = None,
                 shuffle_in_memory: bool = False,
                 **engine_options) -> None:
        self.cluster = cluster
        if isinstance(engine, BaseEngine):
            if cost_model is not None or engine_options:
                raise ConfigError(
                    "pass engine options to the engine instance, not both")
            self.engine = engine
        else:
            engine_cls = _ENGINES.get(engine)
            if engine_cls is None:
                raise ConfigError(
                    f"unknown engine {engine!r}; choose from "
                    f"{sorted(_ENGINES)}")
            self.engine = engine_cls(cluster, cost_model=cost_model,
                                     **engine_options)
        self.dag_scheduler = DagScheduler(
            block_manager=self.engine.block_manager,
            shuffle_in_memory=shuffle_in_memory)
        self._rdd_counter = 0
        #: The JobResult of the most recent action (timing, metrics).
        self.last_result: Optional[JobResult] = None

    @property
    def metrics(self):
        """The engine's :class:`MetricsCollector`."""
        return self.engine.metrics

    def _next_rdd_id(self) -> int:
        rdd_id = self._rdd_counter
        self._rdd_counter += 1
        return rdd_id

    # -- dataset creation ---------------------------------------------------------

    def text_file(self, file_name: str, fmt: DataFormat = PLAIN) -> RDD:
        """Open a DFS file: one partition per block."""
        return DfsFileRDD(self, file_name, fmt=fmt)

    textFile = text_file

    def parallelize(self, records: Iterable[Any], num_partitions: int = 8,
                    sizer: Callable[[Any], float] = estimate_record_bytes
                    ) -> RDD:
        """Distribute driver-side records over ``num_partitions``."""
        records = list(records)
        if num_partitions < 1:
            raise ConfigError(f"need >= 1 partition: {num_partitions}")
        slices: List[List[Any]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            slices[index % num_partitions].append(record)
        partitions = [Partition.from_records(chunk, sizer=sizer)
                      for chunk in slices]
        return ParallelizedRDD(self, partitions)

    def parallelize_partitions(self, partitions: List[Partition]) -> RDD:
        """Distribute pre-built partitions (workloads with modeled sizes)."""
        return ParallelizedRDD(self, partitions)

    # -- actions (called by RDD) ----------------------------------------------------

    def _run_collect(self, rdd: RDD) -> List[Any]:
        plan = self.dag_scheduler.compile(rdd, CollectOutput(),
                                          name="collect")
        result = self.engine.run_job(plan)
        self.last_result = result
        return result.all_records()

    def _run_count(self, rdd: RDD) -> float:
        plan = self.dag_scheduler.compile(rdd, CollectOutput(count_only=True),
                                          name="count")
        result = self.engine.run_job(plan)
        self.last_result = result
        return result.count

    def _run_save(self, rdd: RDD, file_name: str, fmt: DataFormat) -> None:
        plan = self.dag_scheduler.compile(
            rdd, DfsOutput(file_name=file_name, fmt=fmt), name="save")
        self.last_result = self.engine.run_job(plan)

    # -- multi-job / plan-level API ---------------------------------------------------

    def compile(self, rdd: RDD, output: Optional[Any] = None,
                name: str = "") -> JobPlan:
        """Compile without running (for concurrent-job experiments)."""
        return self.dag_scheduler.compile(rdd, output or CollectOutput(),
                                          name=name)

    def run_jobs(self, plans: List[JobPlan]) -> List[JobResult]:
        """Run several compiled jobs concurrently on the shared cluster."""
        return self.engine.run_jobs(plans)
