"""The user-facing dataset API: an RDD-style lineage of transformations.

Mirrors the subset of Spark's API the paper exercises (Figure 1's word
count, the sort workloads, the Big Data Benchmark queries, and the ML
workload): ``map``/``flat_map``/``filter``/``map_partitions`` narrow
transformations, ``reduce_by_key``/``group_by_key``/``sort_by_key``/
``join`` shuffles, ``cache``, and the ``collect``/``count``/
``save_as_text_file`` actions.  CamelCase aliases (``flatMap``,
``reduceByKey``...) are provided for familiarity with the paper's
listings.

Transformations are lazy: they only record lineage.  Actions compile the
lineage into a :class:`~repro.api.plan.JobPlan` and hand it to whichever
engine (Spark-style or MonoSpark) the context is bound to -- the API is
engine-agnostic, exactly as MonoSpark is API-compatible with Spark.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, List, Optional, Sequence,
                    Tuple)

from repro.api.ops import (CoGroupOp, CombineByKeyOp, FilterOp, FlatMapOp,
                           GroupByKeyOp, JoinFlattenOp, MapOp,
                           MapPartitionsOp, OpCost, PhysicalOp, SortOp)
from repro.api.partitioners import HashPartitioner, Partitioner, RangePartitioner
from repro.datamodel.records import Partition
from repro.datamodel.serialization import DESERIALIZED, PLAIN, DataFormat
from repro.errors import PlanError

if TYPE_CHECKING:
    from repro.api.context import AnalyticsContext

__all__ = ["RDD", "DfsFileRDD", "ParallelizedRDD", "NarrowRDD",
           "ShuffledRDD", "UnionRDD"]


class RDD:
    """A lazily evaluated, partitioned dataset."""

    def __init__(self, ctx: "AnalyticsContext", parents: Sequence["RDD"],
                 num_partitions: int) -> None:
        if num_partitions < 1:
            raise PlanError(f"RDD needs >= 1 partition: {num_partitions}")
        self.ctx = ctx
        self.parents = list(parents)
        self.num_partitions = num_partitions
        self.rdd_id = ctx._next_rdd_id()
        self.cached = False
        self.cache_fmt: DataFormat = DESERIALIZED

    # -- narrow transformations ------------------------------------------------

    def _narrow(self, op: PhysicalOp) -> "NarrowRDD":
        return NarrowRDD(self.ctx, self, op)

    def map(self, fn: Callable[[Any], Any], cost: OpCost = OpCost(),
            **size_hints) -> "NarrowRDD":
        """Apply ``fn`` to every record."""
        return self._narrow(MapOp(fn, cost=cost, **size_hints))

    def flat_map(self, fn: Callable[[Any], Sequence[Any]],
                 cost: OpCost = OpCost(), **size_hints) -> "NarrowRDD":
        """Apply ``fn`` and flatten the per-record sequences."""
        return self._narrow(FlatMapOp(fn, cost=cost, **size_hints))

    def filter(self, predicate: Callable[[Any], bool],
               cost: OpCost = OpCost(), **size_hints) -> "NarrowRDD":
        """Keep records where ``predicate`` is true."""
        return self._narrow(FilterOp(predicate, cost=cost, **size_hints))

    def map_partitions(self, fn: Callable[[List[Any]], List[Any]],
                       cost: OpCost = OpCost(), **size_hints) -> "NarrowRDD":
        """Apply ``fn`` to each whole partition."""
        return self._narrow(MapPartitionsOp(fn, cost=cost, **size_hints))

    # -- shuffles ----------------------------------------------------------------

    def reduce_by_key(self, merge: Callable[[Any, Any], Any],
                      num_partitions: Optional[int] = None,
                      combine_cost: OpCost = OpCost(),
                      map_side_combine: bool = True) -> "ShuffledRDD":
        """Merge values per key (with map-side combining, like Spark)."""
        num_partitions = num_partitions or self.num_partitions
        pre = [CombineByKeyOp(merge, cost=combine_cost)] if map_side_combine else []
        return ShuffledRDD(
            self.ctx, [self], num_partitions,
            partitioner=HashPartitioner(num_partitions),
            pre_shuffle_ops=[pre],
            post_shuffle_ops=[CombineByKeyOp(merge, cost=combine_cost)],
            name="reduce_by_key")

    def group_by_key(self, num_partitions: Optional[int] = None,
                     cost: OpCost = OpCost()) -> "ShuffledRDD":
        """Group values per key into lists."""
        num_partitions = num_partitions or self.num_partitions
        return ShuffledRDD(
            self.ctx, [self], num_partitions,
            partitioner=HashPartitioner(num_partitions),
            pre_shuffle_ops=[[]],
            post_shuffle_ops=[GroupByKeyOp(cost=cost)],
            name="group_by_key")

    def sort_by_key(self, num_partitions: Optional[int] = None,
                    boundaries: Optional[Sequence[Any]] = None,
                    key_fn: Callable[[Any], Any] = lambda r: r[0],
                    cost: OpCost = OpCost()) -> "ShuffledRDD":
        """Globally sort by key via a range partitioner.

        Spark runs a sampling pre-pass to pick balanced range boundaries;
        here boundaries may be passed explicitly, or they are sampled at
        plan time from source data reachable through narrow lineage.
        """
        num_partitions = num_partitions or self.num_partitions
        if boundaries is not None:
            partitioner: Partitioner = RangePartitioner(boundaries, key_fn)
        else:
            sample = self._sample_keys(key_fn)
            partitioner = RangePartitioner.from_sample(
                sample, num_partitions, key_fn)
        return ShuffledRDD(
            self.ctx, [self], num_partitions,
            partitioner=partitioner,
            pre_shuffle_ops=[[]],
            post_shuffle_ops=[SortOp(key_fn, cost=cost)],
            name="sort_by_key")

    def join(self, other: "RDD", num_partitions: Optional[int] = None,
             cost: OpCost = OpCost()) -> "ShuffledRDD":
        """Inner join on key with ``other`` (a shuffle of both sides)."""
        num_partitions = num_partitions or max(self.num_partitions,
                                               other.num_partitions)
        return ShuffledRDD(
            self.ctx, [self, other], num_partitions,
            partitioner=HashPartitioner(num_partitions),
            pre_shuffle_ops=[[], []],
            post_shuffle_ops=[CoGroupOp(2, cost=cost), JoinFlattenOp()],
            name="join")

    def cogroup(self, other: "RDD",
                num_partitions: Optional[int] = None,
                cost: OpCost = OpCost()) -> "ShuffledRDD":
        """Group both sides' values per key: ``(key, ([lefts],[rights]))``."""
        num_partitions = num_partitions or max(self.num_partitions,
                                               other.num_partitions)
        return ShuffledRDD(
            self.ctx, [self, other], num_partitions,
            partitioner=HashPartitioner(num_partitions),
            pre_shuffle_ops=[[], []],
            post_shuffle_ops=[CoGroupOp(2, cost=cost)],
            name="cogroup")

    # -- derived transformations ---------------------------------------------------

    def map_values(self, fn: Callable[[Any], Any],
                   cost: OpCost = OpCost(), **size_hints) -> "NarrowRDD":
        """Apply ``fn`` to each value of ``(key, value)`` records."""
        return self._narrow(MapOp(lambda kv: (kv[0], fn(kv[1])), cost=cost,
                                  name="map_values", **size_hints))

    def flat_map_values(self, fn: Callable[[Any], Sequence[Any]],
                        cost: OpCost = OpCost(),
                        **size_hints) -> "NarrowRDD":
        """Flat-map each value, keeping its key."""
        return self._narrow(FlatMapOp(
            lambda kv: [(kv[0], value) for value in fn(kv[1])],
            cost=cost, name="flat_map_values", **size_hints))

    def keys(self) -> "NarrowRDD":
        """The keys of ``(key, value)`` records."""
        return self._narrow(MapOp(lambda kv: kv[0], name="keys"))

    def values(self) -> "NarrowRDD":
        """The values of ``(key, value)`` records."""
        return self._narrow(MapOp(lambda kv: kv[1], name="values"))

    def sample(self, fraction: float, seed: int = 0) -> "NarrowRDD":
        """Deterministic Bernoulli sample of ~``fraction`` of records."""
        if not 0 < fraction <= 1.0:
            raise PlanError(f"sample fraction must be in (0, 1]: {fraction}")
        import random as _random

        def keep(record, _fraction=fraction, _seed=seed):
            # Hash-based so the decision is per-record deterministic.
            return (_random.Random(f"{_seed}:{record!r}").random()
                    < _fraction)

        return self._narrow(FilterOp(keep, count_ratio=fraction,
                                     name="sample"))

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Deduplicate records (a shuffle, like Spark's distinct)."""
        return (self.map(lambda record: (record, None), size_ratio=1.0)
                .reduce_by_key(lambda a, b: a,
                               num_partitions=num_partitions)
                .map(lambda kv: kv[0], size_ratio=1.0))

    def union(self, other: "RDD") -> "UnionRDD":
        """Concatenate two datasets (no shuffle; partitions side by side)."""
        return UnionRDD(self.ctx, [self, other])

    def repartition(self, num_partitions: int) -> "ShuffledRDD":
        """Rebalance into ``num_partitions`` via a shuffle.

        Records are routed by a hash of the whole record, so any record
        type works and the result is deterministic.
        """
        return ShuffledRDD(
            self.ctx, [self], num_partitions,
            partitioner=HashPartitioner(num_partitions),
            pre_shuffle_ops=[[]],
            post_shuffle_ops=[],
            name="repartition")

    # -- caching -------------------------------------------------------------------

    def cache(self, fmt: DataFormat = DESERIALIZED) -> "RDD":
        """Materialize this RDD in worker memory on first computation."""
        self.cached = True
        self.cache_fmt = fmt
        return self

    # -- actions ---------------------------------------------------------------------

    def collect(self) -> List[Any]:
        """Run the job and return all records."""
        return self.ctx._run_collect(self)

    def count(self) -> float:
        """Run the job and return the modeled record count."""
        return self.ctx._run_count(self)

    def save_as_text_file(self, file_name: str,
                          fmt: DataFormat = PLAIN) -> None:
        """Run the job, writing one DFS block per partition."""
        self.ctx._run_save(self, file_name, fmt)

    def take(self, n: int) -> List[Any]:
        """First ``n`` records (runs the whole job, then truncates --
        unlike Spark, no partial-evaluation optimization)."""
        if n < 0:
            raise PlanError(f"take needs n >= 0: {n}")
        return self.collect()[:n]

    def first(self) -> Any:
        """The first record; raises if the dataset is empty."""
        records = self.take(1)
        if not records:
            raise PlanError("first() on an empty dataset")
        return records[0]

    def count_by_key(self) -> dict:
        """Counts per key of ``(key, value)`` records, as a dict."""
        counted = (self.map(lambda kv: (kv[0], 1), size_ratio=1.0)
                   .reduce_by_key(lambda a, b: a + b))
        return dict(counted.collect())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all records with ``fn`` (associative, commutative)."""
        records = self.collect()
        if not records:
            raise PlanError("reduce() on an empty dataset")
        result = records[0]
        for record in records[1:]:
            result = fn(result, record)
        return result

    # -- plan-time helpers ---------------------------------------------------------

    def _sample_keys(self, key_fn: Callable[[Any], Any],
                     max_keys: int = 10000) -> List[Any]:
        """Collect sample keys by walking narrow lineage to source data."""
        source = self
        ops: List[PhysicalOp] = []
        while isinstance(source, NarrowRDD):
            ops.insert(0, source.op)
            source = source.parent
        partitions = source._plan_time_partitions()
        if partitions is None:
            raise PlanError(
                "sort_by_key needs explicit boundaries when the parent "
                "is itself a shuffle (no plan-time sample available)")
        keys: List[Any] = []
        for partition in partitions:
            records = partition.records
            for op in ops:
                records = op.apply(records)
            keys.extend(key_fn(record) for record in records)
            if len(keys) >= max_keys:
                break
        return keys[:max_keys]

    def _plan_time_partitions(self) -> Optional[List[Partition]]:
        """Source data visible before execution, if any."""
        return None

    # -- Spark-style aliases -----------------------------------------------------

    flatMap = flat_map
    mapPartitions = map_partitions
    reduceByKey = reduce_by_key
    groupByKey = group_by_key
    sortByKey = sort_by_key
    saveAsTextFile = save_as_text_file

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(id={self.rdd_id}, "
                f"partitions={self.num_partitions})")


class DfsFileRDD(RDD):
    """A file in the DFS: one partition per block (``textFile``)."""

    def __init__(self, ctx: "AnalyticsContext", file_name: str,
                 fmt: DataFormat = PLAIN) -> None:
        dfs_file = ctx.cluster.dfs.get_file(file_name)
        if not dfs_file.blocks:
            raise PlanError(f"DFS file {file_name} has no blocks")
        super().__init__(ctx, [], len(dfs_file.blocks))
        self.file_name = file_name
        self.fmt = fmt

    def _plan_time_partitions(self) -> Optional[List[Partition]]:
        dfs_file = self.ctx.cluster.dfs.get_file(self.file_name)
        return [block.payload for block in dfs_file.blocks
                if isinstance(block.payload, Partition)]


class ParallelizedRDD(RDD):
    """Driver-provided data distributed across workers."""

    def __init__(self, ctx: "AnalyticsContext",
                 partitions: List[Partition]) -> None:
        if not partitions:
            raise PlanError("parallelize needs at least one partition")
        super().__init__(ctx, [], len(partitions))
        self.partitions = partitions

    def _plan_time_partitions(self) -> Optional[List[Partition]]:
        return self.partitions


class NarrowRDD(RDD):
    """A one-to-one transformation of its parent's partitions."""

    def __init__(self, ctx: "AnalyticsContext", parent: RDD,
                 op: PhysicalOp) -> None:
        super().__init__(ctx, [parent], parent.num_partitions)
        self.parent = parent
        self.op = op

    def _plan_time_partitions(self) -> Optional[List[Partition]]:
        parent_partitions = self.parent._plan_time_partitions()
        if parent_partitions is None:
            return None
        return [self.op.transform(p) for p in parent_partitions]


class UnionRDD(RDD):
    """Concatenation of datasets: partitions of all parents, side by side.

    No shuffle is involved -- the union stage simply contains every
    parent's tasks (with each parent's narrow chain fused in).
    """

    def __init__(self, ctx: "AnalyticsContext",
                 parents: Sequence[RDD]) -> None:
        if len(parents) < 2:
            raise PlanError("union needs at least two datasets")
        super().__init__(ctx, parents,
                         sum(parent.num_partitions for parent in parents))

    def _plan_time_partitions(self) -> Optional[List[Partition]]:
        collected: List[Partition] = []
        for parent in self.parents:
            partitions = parent._plan_time_partitions()
            if partitions is None:
                return None
            collected.extend(partitions)
        return collected


class ShuffledRDD(RDD):
    """A shuffle boundary: repartitioned (and possibly aggregated) data."""

    def __init__(self, ctx: "AnalyticsContext", parents: Sequence[RDD],
                 num_partitions: int, partitioner: Partitioner,
                 pre_shuffle_ops: List[List[PhysicalOp]],
                 post_shuffle_ops: List[PhysicalOp],
                 name: str = "shuffle") -> None:
        super().__init__(ctx, parents, num_partitions)
        if len(pre_shuffle_ops) != len(parents):
            raise PlanError("one pre-shuffle chain per parent required")
        self.partitioner = partitioner
        self.pre_shuffle_ops = pre_shuffle_ops
        self.post_shuffle_ops = post_shuffle_ops
        self.name = name

    @property
    def is_cogroup(self) -> bool:
        """True when multiple parents feed tagged cogroup sides."""
        return len(self.parents) > 1

    def _override_combine_ratio(self, ratio: float) -> "ShuffledRDD":
        """Pin the aggregation's cardinality reduction explicitly.

        Scaled-down workloads carry only a sample of real records, so an
        aggregation's measured dedup ratio can misrepresent the true
        group count; this sets the modeled ratio directly: the map-side
        combine keeps ``ratio`` of its input rows (which sizes the
        shuffle), and the reduce-side merge is modeled as
        cardinality-preserving (the groups already exist).
        """
        if not 0 < ratio:
            raise PlanError(f"combine ratio must be positive: {ratio}")
        from repro.api.ops import CombineByKeyOp
        for chain in self.pre_shuffle_ops:
            for op in chain:
                if isinstance(op, CombineByKeyOp):
                    op.count_ratio = ratio
        for op in self.post_shuffle_ops:
            if isinstance(op, CombineByKeyOp):
                op.count_ratio = 1.0
        return self
