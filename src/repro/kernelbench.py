"""Kernel-throughput benchmark: simulated monotasks/sec, observed.

The ROADMAP's "simulator-kernel raw speed" item (and the Dask-overheads
paper in PAPERS.md) says per-task *runtime* overhead, not scheduling
policy, is what caps task throughput.  This module pins that number: a
seeded serving run on the MonoSpark engine with the **full always-on
observability pipeline attached** -- clarity aggregation folding every
completed job's critical path, plus a telemetry sampler snapshotting
every gauge each simulated second -- measured in wall-clock time.  The
paper's clarity story (PAPER.md §4) only holds if observing the system
stays cheap, so the benchmark deliberately charges the kernel for its
observability, not just for its event loop.

Two kinds of numbers come out:

* **Deterministic workload invariants** -- jobs completed, monotask
  count, events scheduled, final simulated time, telemetry points
  retained.  Same seed => identical values, on any machine; CI diffs
  them exactly.
* **Wall-clock throughput** -- simulated monotasks (and kernel events)
  processed per real second.  Machine-dependent; the committed
  ``BENCH_kernel.json`` keeps the pre-optimization baseline frozen next
  to the current measurement so the speedup trajectory is visible, and
  CI only enforces a conservative floor.

``scripts/bench_trajectory.py --bench kernel`` and
``benchmarks/test_kernel_throughput.py`` both run exactly this code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["KernelWorkload", "KernelBenchResult", "run_kernel_benchmark",
           "trajectory_summary"]


@dataclass(frozen=True)
class KernelWorkload:
    """The seeded serving stream the kernel benchmark drives.

    Shape mirrors :class:`repro.clarity.validate.ClarityWorkload` (a
    fine-grained shuffle-heavy sort stream on a small HDD cluster) but
    tuned to the always-on serving regime the clarity story depends on:
    a *long* stream of *small interactive* jobs arriving fast, with
    telemetry sampling on and bounded by ``telemetry_retention_s`` the
    way a forever-run must be.  Thousands of completed jobs is the
    point -- per-job observability work (span collection, critical-path
    folding) that scales with *accumulated history* rather than with
    the job itself shows up here as a superlinear wall-clock blowup,
    which is exactly what the committed trajectory guards against.
    """

    machines: int = 4
    disks: int = 2
    cores: int = 8
    network_mb_s: float = 125.0
    seed: int = 0
    fraction: float = 0.01
    duration_s: float = 7200.0
    rate_per_s: float = 0.4
    sort_gb: float = 0.1875
    sort_tasks: int = 8
    telemetry_interval_s: float = 1.0
    telemetry_retention_s: float = 120.0

    def params(self) -> Dict:
        """The workload knobs, for embedding in the JSON summary."""
        return {
            "machines": self.machines, "disks": self.disks,
            "cores": self.cores, "seed": self.seed,
            "duration_s": self.duration_s, "rate_per_s": self.rate_per_s,
            "sort_gb": self.sort_gb, "sort_tasks": self.sort_tasks,
            "telemetry_interval_s": self.telemetry_interval_s,
            "telemetry_retention_s": self.telemetry_retention_s,
        }


@dataclass
class KernelBenchResult:
    """One benchmark run: deterministic invariants + wall-clock rates."""

    #: Deterministic (seed-reproducible on any machine).
    jobs: int
    monotasks: int
    events_scheduled: int
    sim_time_s: float
    telemetry_points: int
    #: Wall-clock (machine-dependent).
    wall_s: float
    workload: KernelWorkload = field(default_factory=KernelWorkload)

    @property
    def monotasks_per_s(self) -> float:
        """Simulated monotasks completed per wall-clock second."""
        return self.monotasks / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_s(self) -> float:
        """Kernel events processed per wall-clock second."""
        return self.events_scheduled / self.wall_s if self.wall_s > 0 else 0.0

    def measurement(self) -> Dict:
        """The wall-clock side, as a JSON-ready dict."""
        return {
            "wall_s": round(self.wall_s, 3),
            "monotasks_per_s": round(self.monotasks_per_s, 1),
            "events_per_s": round(self.events_per_s, 1),
        }

    def invariants(self) -> Dict:
        """The deterministic side, as a JSON-ready dict."""
        return {
            "jobs": self.jobs,
            "monotasks": self.monotasks,
            "events_scheduled": self.events_scheduled,
            "sim_time_s": round(self.sim_time_s, 4),
            "telemetry_points": self.telemetry_points,
        }


def trajectory_summary(result: KernelBenchResult,
                       baseline: Optional[Dict] = None,
                       floor: Optional[float] = None,
                       repeats: int = 1) -> Dict:
    """The byte-stable JSON dict ``BENCH_kernel.json`` holds.

    ``baseline`` is the frozen pre-optimization measurement (carried
    forward from the committed file -- it cannot be regenerated once
    the slow code is gone).  ``floor`` is the conservative
    monotasks/sec CI gate; when absent it is set to a quarter of the
    current measurement, low enough to absorb runner-speed variance
    while still catching an order-of-magnitude regression.
    """
    current = result.measurement()
    summary: Dict = {
        "benchmark": "kernel_throughput",
        "workload": result.workload.params(),
        "repeats": repeats,
        "invariants": result.invariants(),
        "current": current,
    }
    if baseline:
        summary["baseline"] = baseline
        base_rate = baseline.get("monotasks_per_s", 0.0)
        if base_rate:
            summary["speedup_monotasks"] = round(
                current["monotasks_per_s"] / base_rate, 2)
    if floor is None:
        floor = round(current["monotasks_per_s"] * 0.25, 1)
    summary["min_monotasks_per_s"] = floor
    return summary


def run_kernel_benchmark(workload: Optional[KernelWorkload] = None,
                         repeats: int = 1) -> KernelBenchResult:
    """Run the seeded observed serving stream; time it.

    With ``repeats > 1`` the whole run executes that many times and the
    best (smallest) wall-clock time is reported -- the standard
    noise-floor statistic for throughput benchmarks on shared machines.
    The deterministic invariants must agree across every repeat (same
    seed, same code => same counts); a mismatch raises, which makes
    every benchmark run double as a determinism check.
    """
    best: Optional[KernelBenchResult] = None
    for _ in range(max(1, repeats)):
        result = _run_once(workload)
        if best is None:
            best = result
        elif result.invariants() != best.invariants():
            raise AssertionError(
                "non-deterministic benchmark run: "
                f"{result.invariants()} != {best.invariants()}")
        elif result.wall_s < best.wall_s:
            best = result
    return best


def _run_once(workload: Optional[KernelWorkload] = None
              ) -> KernelBenchResult:
    """Run the seeded observed serving stream once; time it."""
    # Local imports: the benchmark pulls in the serve/clarity stack, and
    # this module must stay importable without it being on the hot path.
    from repro.api.context import AnalyticsContext
    from repro.clarity.aggregator import ClarityAggregator
    from repro.clarity.validate import ClarityWorkload
    from repro.serve.server import JobServer
    from repro.serve.workload import PoissonArrivals, sort_template
    from repro.trace.telemetry import TelemetryRegistry, TelemetrySampler

    if workload is None:
        workload = KernelWorkload()
    shape = ClarityWorkload(
        machines=workload.machines, disks=workload.disks,
        cores=workload.cores, network_mb_s=workload.network_mb_s,
        seed=workload.seed, fraction=workload.fraction)
    cluster = shape.build_cluster()
    ctx = AnalyticsContext(cluster, engine="monospark",
                           scheduling_policy="fair")
    env = ctx.engine.env
    aggregator = ClarityAggregator(window_s=workload.duration_s * 10,
                                   engine=ctx.engine.name)
    registry = TelemetryRegistry(
        retention_s=workload.telemetry_retention_s)
    sampler = TelemetrySampler(env, registry,
                               interval_s=workload.telemetry_interval_s)
    server = JobServer(ctx, policy="fifo", max_concurrent_jobs=1,
                       seed=workload.seed, clarity=aggregator,
                       telemetry=sampler)
    server.add_tenant("analytics")
    template = sort_template(ctx, total_gb=workload.sort_gb,
                             num_tasks=workload.sort_tasks,
                             seed=workload.seed)
    server.add_workload(
        "analytics", template,
        PoissonArrivals(workload.rate_per_s,
                        horizon_s=workload.duration_s))

    start = time.perf_counter()
    report = server.run()
    wall_s = time.perf_counter() - start

    completed = sum(1 for r in report.records if r.outcome == "completed")
    return KernelBenchResult(
        jobs=completed,
        monotasks=len(ctx.metrics.monotasks),
        events_scheduled=env.events_scheduled,
        sim_time_s=env.now,
        telemetry_points=len(registry.store),
        wall_s=wall_s,
        workload=workload)
