"""Per-resource monotask schedulers (§3.3).

Each scheduler runs "the minimum number of monotasks necessary to keep
the underlying resource fully utilized, and queues remaining monotasks":
one compute monotask per core, one disk monotask per spinning disk,
a configurable number per flash drive, and requests from a limited
number of multitasks on the network receiver.

Queues implement **round-robin over monotask phases** so that, e.g., a
convoy of disk writes cannot starve the disk reads that feed the CPU --
the exact scenario §3.3 ("Queueing monotasks") describes.  Contention is
visible as each scheduler's queue length.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Generator, List, Optional

from repro.errors import (FaultError, Interrupted, MachineFailure,
                          SimulationError)
from repro.monospark.monotask import Monotask
from repro.simulator import Environment, Process

__all__ = ["ResourceScheduler"]


class ResourceScheduler:
    """Admits at most ``concurrency`` monotasks; queues the rest."""

    def __init__(self, env: Environment, concurrency: int, name: str,
                 round_robin_phases: bool = True,
                 prefer_phases_when=None) -> None:
        if concurrency < 1:
            raise SimulationError(
                f"{name}: scheduler concurrency must be >= 1")
        self.env = env
        self.concurrency = concurrency
        self.name = name
        self.round_robin_phases = round_robin_phases
        #: Optional (predicate, phase-substring) pair: while the
        #: predicate holds, queues whose phase contains the substring are
        #: served first (the §3.5 memory-pressure write priority).
        self.prefer_phases_when = prefer_phases_when
        self._queues: "OrderedDict[str, Deque[Monotask]]" = OrderedDict()
        self._rr_cursor = 0
        self.running = 0
        #: Longest queue length seen (for contention reporting/tests).
        self.max_queue_length = 0
        self.completed = 0
        #: True after fail_all(): the machine is down and new monotasks
        #: are rejected immediately.
        self.dead = False
        self._executing: Dict[Monotask, Process] = {}

    @property
    def queue_length(self) -> int:
        """Monotasks waiting (contention made visible, §3.1)."""
        return sum(len(queue) for queue in self._queues.values())

    def submit(self, monotask: Monotask) -> None:
        """Enqueue a ready monotask; runs when the resource frees."""
        if self.dead:
            monotask.done.fail(MachineFailure(f"{self.name} is down"))
            return
        monotask.submitted_at = self.env.now
        phase = monotask.phase if self.round_robin_phases else "all"
        queue = self._queues.get(phase)
        if queue is None:
            queue = deque()
            self._queues[phase] = queue
        queue.append(monotask)
        self.max_queue_length = max(self.max_queue_length, self.queue_length)
        self._dispatch()

    def _next_monotask(self) -> Optional[Monotask]:
        """Pop from the next non-empty phase queue, round-robin."""
        phases: List[str] = list(self._queues.keys())
        if not phases:
            return None
        if self.prefer_phases_when is not None:
            predicate, substring = self.prefer_phases_when
            if predicate():
                for phase in phases:
                    if substring in phase and self._queues[phase]:
                        return self._queues[phase].popleft()
        for offset in range(len(phases)):
            index = (self._rr_cursor + offset) % len(phases)
            queue = self._queues[phases[index]]
            if queue:
                self._rr_cursor = (index + 1) % len(phases)
                return queue.popleft()
        return None

    def _dispatch(self) -> None:
        while self.running < self.concurrency:
            monotask = self._next_monotask()
            if monotask is None:
                return
            self.running += 1
            self.env.process(self._run(monotask))

    def _run(self, monotask: Monotask) -> Generator:
        monotask.started_at = self.env.now
        error: Optional[BaseException] = None
        process = self.env.process(monotask.execute())
        self._executing[monotask] = process
        try:
            yield process
        except (Interrupted, FaultError) as exc:
            # The monotask was killed by a crash, or its I/O failed on
            # dead hardware; its multitask fails, not the simulation.
            error = exc
        finally:
            self._executing.pop(monotask, None)
            self.running -= 1
        if error is None:
            monotask.record()
            monotask.done.succeed()
        elif not monotask.done.triggered:
            monotask.done.fail(error)
        self._dispatch()

    # -- fault handling -----------------------------------------------------------

    def fail_all(self) -> None:
        """Machine crash: reject the queue, kill executing monotasks."""
        self.dead = True
        victims: List[Monotask] = []
        for queue in self._queues.values():
            victims.extend(queue)
            queue.clear()
        for monotask in victims:
            if not monotask.done.triggered:
                monotask.done.fail(MachineFailure(f"{self.name} is down"))
        for process in list(self._executing.values()):
            if process.is_alive and process.target is not None:
                process.interrupt(cause="machine-crash")

    def revive(self) -> None:
        """The machine restarted: accept monotasks again."""
        self.dead = False
