"""The Local DAG Scheduler (§3.3).

Each worker tracks the dependency DAG of every multitask assigned to it
and submits a monotask to its per-resource scheduler only once all of
its dependencies have completed -- guaranteeing that monotasks "can
fully utilize the underlying resource and do not block on other
monotasks during their execution".
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import SimulationError
from repro.monospark.monotask import Monotask
from repro.simulator import Environment, Event

__all__ = ["LocalDagScheduler"]


class LocalDagScheduler:
    """Per-worker dependency tracker for monotask DAGs."""

    def __init__(self, env: Environment,
                 route: Callable[[Monotask], None]) -> None:
        self.env = env
        #: Routes a ready monotask to the right per-resource scheduler.
        self._route = route
        self.monotasks_submitted = 0

    def submit_multitask(self, monotasks: List[Monotask]) -> Event:
        """Register a multitask's DAG; returns an event that fires when
        every monotask has completed."""
        if not monotasks:
            raise SimulationError("a multitask needs at least one monotask")
        self._check_acyclic(monotasks)
        self.monotasks_submitted += len(monotasks)
        all_done = self.env.all_of([m.done for m in monotasks])
        for monotask in monotasks:
            self._watch(monotask)
        return all_done

    def _watch(self, monotask: Monotask) -> None:
        remaining = len(monotask.deps)
        if remaining == 0:
            self._route(monotask)
            return
        state = {"remaining": remaining, "failed": False}

        def on_dep_done(event: Event) -> None:
            if not event._ok:
                # A dependency died (machine crash/disk fault): never
                # route the dependent.  The multitask's AllOf barrier
                # already fails fast on the dependency itself.
                state["failed"] = True
            state["remaining"] -= 1
            if state["remaining"] == 0 and not state["failed"]:
                self._route(monotask)

        for dep in monotask.deps:
            dep.done.add_callback(on_dep_done)

    @staticmethod
    def _check_acyclic(monotasks: List[Monotask]) -> None:
        """Reject cyclic DAGs up front instead of deadlocking silently."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[int, int] = {id(m): WHITE for m in monotasks}

        def visit(node: Monotask) -> None:
            color[id(node)] = GREY
            for dep in node.deps:
                state = color.get(id(dep), BLACK)
                if state == GREY:
                    raise SimulationError("monotask DAG has a cycle")
                if state == WHITE:
                    visit(dep)
            color[id(node)] = BLACK

        for monotask in monotasks:
            if color[id(monotask)] == WHITE:
                visit(monotask)
