"""A MonoSpark worker: the Local DAG Scheduler plus per-resource schedulers.

One compute scheduler admits a monotask per core; one disk scheduler per
disk admits 1 (HDD) or a configurable number (flash, default 4) of
monotasks; the network scheduler lives at the receiver and admits the
requests of four multitasks (§3.3).  All are ordinary
:class:`~repro.monospark.schedulers.ResourceScheduler` instances with
different concurrency limits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.cluster.machine import Machine
from repro.datasvc.monotasks import DataSvcMonotask
from repro.errors import SimulationError
from repro.metrics.events import CPU, DISK, NETWORK
from repro.monospark.localdag import LocalDagScheduler
from repro.monospark.monotask import (ComputeMonotask, DiskMonotask,
                                      Monotask, NetworkFetchMonotask)
from repro.monospark.schedulers import ResourceScheduler
from repro.simulator import Event

if TYPE_CHECKING:
    from repro.monospark.engine import MonoSparkEngine

__all__ = ["MonoWorker"]


class MonoWorker:
    """Per-machine monotask execution state."""

    def __init__(self, engine: "MonoSparkEngine", machine: Machine) -> None:
        self.engine = engine
        self.machine = machine
        self.env = machine.env
        rr = engine.round_robin_phases
        prefix = f"m{machine.machine_id}"
        self.compute_scheduler = ResourceScheduler(
            self.env, machine.spec.cores, f"{prefix}.cpu", rr)
        self.disk_schedulers: List[ResourceScheduler] = []
        prefer_writes = None
        if engine.prioritize_writes_under_memory_pressure:
            prefer_writes = (self.memory_pressure, "write")
        for index, disk in enumerate(machine.disks):
            concurrency = engine.disk_concurrency(disk.spec)
            self.disk_schedulers.append(ResourceScheduler(
                self.env, concurrency, f"{prefix}.disk{index}", rr,
                prefer_phases_when=prefer_writes))
        self.network_scheduler = ResourceScheduler(
            self.env, engine.network_limit, f"{prefix}.net", rr)
        self.dag_scheduler = LocalDagScheduler(self.env, self._route)

    def submit_multitask(self, monotasks: List[Monotask]) -> Event:
        """Hand a multitask's DAG to the Local DAG Scheduler."""
        return self.dag_scheduler.submit_multitask(monotasks)

    def submit_ready(self, monotask: Monotask) -> None:
        """Route a dependency-free monotask straight to its scheduler
        (used for remote shuffle-serve disk reads)."""
        self._route(monotask)

    def _route(self, monotask: Monotask) -> None:
        if isinstance(monotask, ComputeMonotask):
            self.compute_scheduler.submit(monotask)
        elif isinstance(monotask, DiskMonotask):
            if monotask.disk_index is None:
                # Deferred placement: choose the disk when the write is
                # actually ready, so queue lengths reflect real load.
                monotask.disk_index = self.pick_output_disk()
            self.disk_schedulers[monotask.disk_index].submit(monotask)
        elif isinstance(monotask, (NetworkFetchMonotask, DataSvcMonotask)):
            # Data-service puts/fetches occupy the network resource on
            # the compute side; storage-side disk work runs on the
            # service's own schedulers.
            self.network_scheduler.submit(monotask)
        else:
            raise SimulationError(f"unroutable monotask: {monotask!r}")

    def pick_output_disk(self) -> int:
        """Disk for a new write monotask, per the engine's write policy.

        The paper's prototype balances writes "across available disks,
        independent of load" and suggests writing to the disk with the
        shorter queue as future work (§8, "Disk scheduling"); both
        policies are implemented, selected by
        ``MonoSparkEngine(write_disk_policy=...)``.
        """
        if self.engine.write_disk_policy == "shortest_queue":
            loads = [scheduler.queue_length + scheduler.running
                     for scheduler in self.disk_schedulers]
            if min(loads) != max(loads):
                return loads.index(min(loads))
        return self.machine.pick_write_disk()

    def fail_all(self) -> None:
        """Machine crash: every scheduler rejects and kills its work."""
        for scheduler in self._all_schedulers():
            scheduler.fail_all()

    def revive(self) -> None:
        """The machine restarted: schedulers accept monotasks again."""
        for scheduler in self._all_schedulers():
            scheduler.revive()

    def _all_schedulers(self) -> List[ResourceScheduler]:
        return ([self.compute_scheduler] + self.disk_schedulers +
                [self.network_scheduler])

    def memory_pressure(self) -> bool:
        """True when task data exceeds the §3.5 pressure threshold."""
        memory = self.machine.memory
        return memory.used > memory.capacity * \
            self.engine.memory_pressure_fraction

    def queue_lengths(self) -> Dict[str, int]:
        """Per-resource queue lengths: the visible face of contention."""
        lengths = {CPU: self.compute_scheduler.queue_length,
                   NETWORK: self.network_scheduler.queue_length}
        for index, scheduler in enumerate(self.disk_schedulers):
            lengths[f"{DISK}{index}"] = scheduler.queue_length
        return lengths
