"""The MonoSpark engine: monotask execution with per-resource schedulers.

API-compatible with the Spark engine (both consume the same
:class:`~repro.api.plan.JobPlan`), but every multitask is decomposed on
the worker into single-resource monotasks, scheduled by dedicated
per-resource schedulers.  Knobs map to the paper's parameters:

* ``ssd_outstanding`` -- the flash scheduler's concurrency (§3.3; the
  paper found 4 reaches near-maximum throughput).
* ``hdd_outstanding`` -- monotasks per spinning disk (1 in the paper; an
  ablation knob here).
* ``network_limit`` -- the receiver admits requests from this many
  multitasks at once (4 in the paper, "based on an experimental
  parameter sweep").
* ``round_robin_phases`` -- the §3.3 queueing policy (ablation knob).
* ``extra_multitasks`` -- the "+1" of the §3.4 assignment rule.

Two of the paper's §8 "opportunities" are implemented as options:

* ``write_disk_policy`` -- ``"round_robin"`` (the paper's prototype) or
  ``"shortest_queue"`` (its suggested improvement: write to the disk
  with the shorter queue).
* ``prioritize_writes_under_memory_pressure`` -- the §3.5 idea: when a
  worker's memory fills up, its disk schedulers prefer write monotasks
  to drain data out of memory.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.config import CostModel, DiskSpec
from repro.engine.base import BaseEngine
from repro.engine.semantics import TaskWork
from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.monospark.assignment import (multitask_concurrency,
                                        probe_concurrency)
from repro.monospark.decompose import decompose
from repro.monospark.worker import MonoWorker

__all__ = ["MonoSparkEngine"]


class MonoSparkEngine(BaseEngine):
    """Per-resource-scheduled engine (the paper's contribution)."""

    name = "monospark"

    def __init__(self, cluster: Cluster,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsCollector] = None,
                 ssd_outstanding: int = 4,
                 hdd_outstanding: int = 1,
                 network_limit: int = 4,
                 round_robin_phases: bool = True,
                 extra_multitasks: int = 1,
                 concurrency_override: Optional[int] = None,
                 write_disk_policy: str = "round_robin",
                 prioritize_writes_under_memory_pressure: bool = False,
                 memory_pressure_fraction: float = 0.8,
                 scheduling_policy: str = "fifo",
                 recovery=None,
                 datasvc=None) -> None:
        if ssd_outstanding < 1 or hdd_outstanding < 1:
            raise ConfigError("disk scheduler concurrency must be >= 1")
        if network_limit < 1:
            raise ConfigError("network limit must be >= 1")
        if extra_multitasks < 0:
            raise ConfigError("extra multitasks must be >= 0")
        if write_disk_policy not in ("round_robin", "shortest_queue"):
            raise ConfigError(
                f"unknown write disk policy: {write_disk_policy!r}")
        if not 0 < memory_pressure_fraction <= 1.0:
            raise ConfigError("memory pressure fraction must be in (0, 1]")
        self.ssd_outstanding = ssd_outstanding
        self.hdd_outstanding = hdd_outstanding
        self.network_limit = network_limit
        self.round_robin_phases = round_robin_phases
        self.extra_multitasks = extra_multitasks
        self.concurrency_override = concurrency_override
        self.write_disk_policy = write_disk_policy
        self.prioritize_writes_under_memory_pressure = (
            prioritize_writes_under_memory_pressure)
        self.memory_pressure_fraction = memory_pressure_fraction
        self.workers: Dict[int, MonoWorker] = {}
        super().__init__(cluster, cost_model=cost_model, metrics=metrics,
                         scheduling_policy=scheduling_policy,
                         recovery=recovery, datasvc=datasvc)
        for machine in cluster.machines:
            self.workers[machine.machine_id] = MonoWorker(self, machine)

    # -- configuration hooks ---------------------------------------------------------

    def disk_concurrency(self, spec: DiskSpec) -> int:
        """Monotasks the disk scheduler admits for this device type."""
        if spec.max_concurrency > 1:
            return self.ssd_outstanding
        return self.hdd_outstanding

    def concurrency_for(self, machine: Machine) -> int:
        if self.concurrency_override is not None:
            return self.concurrency_override
        return multitask_concurrency(machine, self.network_limit,
                                     self.disk_concurrency,
                                     extra=self.extra_multitasks)

    # -- task execution -----------------------------------------------------------------

    def run_task_on_machine(self, work: TaskWork,
                            machine: Machine) -> Generator:
        worker = self.workers[machine.machine_id]
        # All of a multitask's input and output is materialized in memory
        # between monotasks (§3.5): account for the footprint.
        footprint = work.input_partition.data_bytes + \
            work.output_partition.data_bytes
        machine.memory.acquire(footprint)
        try:
            decomposition = decompose(worker, work)
            yield worker.submit_multitask(decomposition.monotasks)
        finally:
            machine.memory.release(footprint)
        # The engine commits (registers) outputs only if this attempt
        # wins the task -- see BaseEngine._execute_task.
        return decomposition.output_disk

    # -- fault hooks --------------------------------------------------------------

    def _fail_worker(self, machine_id: int) -> None:
        self.workers[machine_id].fail_all()

    def _revive_worker(self, machine_id: int) -> None:
        self.workers[machine_id].revive()

    # -- health hooks --------------------------------------------------------------

    def probation_slots_for(self, machine: Machine) -> int:
        return probe_concurrency(machine)

    def health_estimator(self):
        """Per-resource rates from monotask self-reports: the paper's
        clarity signal, turned into an online detector."""
        from repro.health.estimators import MonotaskRateEstimator
        return MonotaskRateEstimator(self.metrics)

    # -- telemetry ------------------------------------------------------------------

    def register_telemetry(self, telemetry) -> None:
        """Base gauges plus per-resource scheduler queue depths.

        The queue-depth series only exist here: the Spark engine has no
        per-resource queues to observe (§3.1's contention is invisible
        to it), so the gap in the exported metrics *is* the clarity
        contrast.
        """
        super().register_telemetry(telemetry)
        for machine_id in sorted(self.workers):
            worker = self.workers[machine_id]
            for key in sorted(worker.queue_lengths()):
                telemetry.gauge(
                    "repro_resource_queue_depth",
                    "Monotasks waiting in a per-resource scheduler queue",
                    lambda w=worker, k=key: w.queue_lengths()[k],
                    engine=self.name, machine=machine_id, resource=key)
