"""Decomposition of multitasks into monotask DAGs (§3.2, Figure 4).

Decomposition happens on the worker, when the multitask arrives: the job
scheduler hands over exactly the same :class:`TaskDescriptor` the Spark
engine runs, and this module turns it into

    setup compute -> input monotasks -> main compute -> output write
                                                     -> cleanup compute

where the input monotasks are a local disk read (map task over a local
DFS block), a network fetch group plus local disk reads (reduce task),
or nothing (cached / parallelized input); and the output is a
write-through disk write (shuffle or DFS output) or nothing (collect /
in-memory shuffle).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.api.plan import (CachedInput, CollectOutput, DfsInput, DfsOutput,
                            LocalInput, ShuffleInput, ShuffleOutput)
from repro.datasvc.monotasks import (DataSvcFetchMonotask,
                                     DataSvcPutMonotask)
from repro.engine.semantics import TaskWork
from repro.errors import ExecutionError
from repro.metrics.events import (PHASE_CLEANUP, PHASE_COMPUTE,
                                  PHASE_DATASVC_READ, PHASE_DATASVC_WRITE,
                                  PHASE_INPUT_READ, PHASE_OUTPUT_WRITE,
                                  PHASE_SETUP, PHASE_SHUFFLE_READ,
                                  PHASE_SHUFFLE_WRITE)
from repro.monospark.monotask import (ComputeMonotask, DiskMonotask,
                                      FetchSource, Monotask,
                                      NetworkFetchMonotask)
from repro.monospark.worker import MonoWorker

__all__ = ["decompose", "Decomposition"]


class Decomposition:
    """The monotask DAG for one multitask plus output placement."""

    def __init__(self, monotasks: List[Monotask],
                 output_monotask: Optional[Monotask]) -> None:
        self.monotasks = monotasks
        self.output_monotask = output_monotask

    @property
    def output_disk(self) -> Optional[int]:
        """Disk the output landed on (resolved at routing time)."""
        if self.output_monotask is None:
            return None
        return self.output_monotask.disk_index


def decompose(worker: MonoWorker, work: TaskWork) -> Decomposition:
    """Build the monotask DAG for ``work`` on ``worker``."""
    descriptor = work.descriptor
    ids = (descriptor.job_id, descriptor.stage_id, descriptor.index)
    cost = worker.engine.cost

    monotasks: List[Monotask] = []

    setup = ComputeMonotask(worker, PHASE_SETUP, ids,
                            op_s=cost.task_setup_s)
    monotasks.append(setup)

    input_monotasks = _input_monotasks(worker, work, ids)
    for monotask in input_monotasks:
        monotask.after(setup)
    monotasks.extend(input_monotasks)

    main = ComputeMonotask(
        worker, PHASE_COMPUTE, ids,
        deserialize_s=work.deserialize_s, op_s=work.op_s,
        serialize_s=work.serialize_s)
    main.after(setup, *input_monotasks)
    monotasks.append(main)

    output_monotask = _output_monotask(worker, work, ids)
    if output_monotask is not None:
        output_monotask.after(main)
        monotasks.append(output_monotask)

    cleanup = ComputeMonotask(worker, PHASE_CLEANUP, ids,
                              op_s=cost.task_cleanup_s)
    cleanup.after(main, output_monotask)
    monotasks.append(cleanup)

    if work.trace is not None:
        # Pre-mint leaf span ids at decomposition time (in DAG order,
        # for determinism) so causal links can reference a monotask's
        # span before it runs and self-reports.
        metrics = worker.engine.metrics
        for monotask in monotasks:
            monotask.trace = work.trace
            monotask.span_id = metrics.new_span_id()

    return Decomposition(monotasks, output_monotask)


def _input_monotasks(worker: MonoWorker, work: TaskWork,
                     ids: Tuple[int, int, int]) -> List[Monotask]:
    spec = work.descriptor.input
    machine = worker.machine

    if isinstance(spec, (LocalInput, CachedInput)):
        # Data either ships with the task or sits in a block manager.
        source = work.inputs[0]
        if (isinstance(spec, CachedInput) and source.machine_id is not None
                and source.machine_id != machine.machine_id):
            fetch = NetworkFetchMonotask(
                worker, PHASE_INPUT_READ, ids,
                [FetchSource(source.machine_id, None, source.stored_bytes,
                             label="cached-remote")])
            return [fetch]
        return []

    if isinstance(spec, DfsInput):
        source = work.inputs[0]
        svc = worker.engine.datasvc
        if svc is not None and source.machine_id is not None \
                and svc.owns_machine(source.machine_id):
            # The block lives in the data tier: one service read replaces
            # the remote disk read + fetch (the service runs both on its
            # own schedulers, with checksum verification and failover).
            return [DataSvcFetchMonotask(
                worker, PHASE_DATASVC_READ, ids, svc,
                [(spec.block.block_id, source.stored_bytes)],
                dfs_block=True)]
        if source.machine_id == machine.machine_id:
            return [DiskMonotask(worker, PHASE_INPUT_READ, ids,
                                 disk_index=source.disk_index,
                                 nbytes=source.stored_bytes, kind="read")]
        return [NetworkFetchMonotask(
            worker, PHASE_INPUT_READ, ids,
            [FetchSource(source.machine_id, source.disk_index,
                         source.stored_bytes,
                         label=spec.block.block_id)])]

    if isinstance(spec, ShuffleInput):
        # One request per remote machine reads *all* of the requested
        # shuffle data in a single disk monotask on that machine (§3.2:
        # "create a disk read monotask to read all of the requested
        # shuffle data into memory"), so tiny per-map buckets coalesce
        # into one sequential read per (machine, disk).
        svc = worker.engine.datasvc
        monotasks: List[Monotask] = []
        remote_bytes: Dict[Tuple[int, Optional[int]], float] = defaultdict(
            float)
        local_disk_bytes: Dict[int, float] = defaultdict(float)
        datasvc_requests: List[Tuple[str, float]] = []
        for source in work.inputs:
            if source.stored_bytes <= 0:
                continue
            if svc is not None and source.machine_id is not None \
                    and svc.owns_machine(source.machine_id):
                # Buckets owned by the data tier: fetched through the
                # service (which coalesces per map-output block).
                datasvc_requests.append(
                    (source.block_id, source.stored_bytes))
                continue
            local = source.machine_id == machine.machine_id
            if local:
                if not source.in_memory:
                    local_disk_bytes[source.disk_index] += source.stored_bytes
                # Local in-memory buckets cost nothing to "read".
            else:
                disk = None if source.in_memory else source.disk_index
                remote_bytes[(source.machine_id, disk)] += source.stored_bytes
        for disk_index, nbytes in sorted(local_disk_bytes.items()):
            monotasks.append(DiskMonotask(
                worker, PHASE_SHUFFLE_READ, ids, disk_index=disk_index,
                nbytes=nbytes, kind="read"))
        if remote_bytes:
            sources = [
                FetchSource(machine_id, disk_index, nbytes,
                            label=f"shuffle-fetch-{work.descriptor.task_id}")
                for (machine_id, disk_index), nbytes
                in sorted(remote_bytes.items(),
                          key=lambda item: (item[0][0], item[0][1]
                                            if item[0][1] is not None
                                            else -1))
            ]
            monotasks.append(NetworkFetchMonotask(
                worker, PHASE_SHUFFLE_READ, ids, sources))
        if datasvc_requests:
            monotasks.append(DataSvcFetchMonotask(
                worker, PHASE_DATASVC_READ, ids, svc,
                sorted(datasvc_requests)))
        return monotasks

    raise ExecutionError(f"cannot decompose input spec: {spec!r}")


def _output_monotask(worker: MonoWorker, work: TaskWork,
                     ids: Tuple[int, int, int]) -> Optional[Monotask]:
    """The write monotask, with disk placement deferred to routing time
    (``disk_index=None``) so the §8 shortest-queue policy sees real
    load."""
    output = work.descriptor.output
    svc = worker.engine.datasvc

    if isinstance(output, ShuffleOutput):
        if output.in_memory:
            return None
        if svc is not None:
            # Disaggregated shuffle: stream the buckets to the data
            # service instead of the local disk (even empty maps, so the
            # registry's lineage index stays off the compute tier).
            buckets = {
                reduce_index: output.fmt.stored_bytes(partition.data_bytes)
                for reduce_index, partition
                in (work.shuffle_buckets or {}).items()
            }
            return DataSvcPutMonotask(
                worker, PHASE_DATASVC_WRITE, ids, svc,
                shuffle_id=output.shuffle_id,
                map_index=work.descriptor.index, buckets=buckets)
        if work.output_stored_bytes <= 0:
            return None
        return DiskMonotask(worker, PHASE_SHUFFLE_WRITE, ids,
                            disk_index=None,
                            nbytes=work.output_stored_bytes, kind="write")

    if isinstance(output, DfsOutput):
        if svc is not None:
            return DataSvcPutMonotask(
                worker, PHASE_DATASVC_WRITE, ids, svc,
                block_id=f"dfsout:{work.descriptor.task_id}",
                nbytes=work.output_stored_bytes,
                payload=(work.output_partition
                         if output.keep_payload else None))
        if work.output_stored_bytes <= 0:
            return None
        return DiskMonotask(worker, PHASE_OUTPUT_WRITE, ids,
                            disk_index=None,
                            nbytes=work.output_stored_bytes, kind="write")

    if isinstance(output, CollectOutput):
        return None

    raise ExecutionError(f"cannot decompose output spec: {output!r}")
