"""How many multitasks to assign concurrently to each machine (§3.4).

MonoSpark assigns "enough multitasks that all resources can have the
maximum allowed number of concurrent monotasks running, plus one
additional monotask": with 4 cores, 1 HDD, and a receiver limit of 4
multitasks, that is 4 + 1 + 4 + 1 = 10 -- the exact example in §3.4.
The per-resource schedulers make over-assignment safe (queued monotasks
just wait), so unlike Spark's slot count this value never needs tuning
by the user (§7).
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.config import DiskSpec

__all__ = ["multitask_concurrency", "probe_concurrency"]


def multitask_concurrency(machine: Machine, network_limit: int,
                          disk_concurrency, extra: int = 1) -> int:
    """The §3.4 assignment rule.

    ``disk_concurrency`` maps a :class:`DiskSpec` to the number of
    concurrent monotasks its scheduler admits (1 for HDDs, the flash
    parameter for SSDs).
    """
    disk_slots = sum(disk_concurrency(disk.spec) for disk in machine.disks)
    return machine.spec.cores + disk_slots + network_limit + extra


def probe_concurrency(machine: Machine) -> int:
    """Multitasks to assign a machine on health probation.

    One at a time: a single multitask still exercises every resource
    (its monotasks touch CPU, disk, and network in turn), which is all
    the health monitor needs to re-measure rates -- without staking real
    throughput on a machine that was just excluded.
    """
    return 1
