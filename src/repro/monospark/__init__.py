"""MonoSpark: single-resource monotasks with per-resource schedulers."""

from repro.monospark.assignment import multitask_concurrency
from repro.monospark.decompose import Decomposition, decompose
from repro.monospark.engine import MonoSparkEngine
from repro.monospark.localdag import LocalDagScheduler
from repro.monospark.monotask import (ComputeMonotask, DiskMonotask,
                                      FetchSource, Monotask,
                                      NetworkFetchMonotask)
from repro.monospark.schedulers import ResourceScheduler
from repro.monospark.worker import MonoWorker

__all__ = [
    "MonoSparkEngine",
    "MonoWorker",
    "ResourceScheduler",
    "LocalDagScheduler",
    "decompose",
    "Decomposition",
    "multitask_concurrency",
    "Monotask",
    "ComputeMonotask",
    "DiskMonotask",
    "NetworkFetchMonotask",
    "FetchSource",
]
