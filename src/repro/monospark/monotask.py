"""Monotask types: units of work that each use exactly one resource.

The four design principles of §3.1 map directly onto this module:

* *Each monotask uses one resource* -- there is one class per resource,
  and ``execute`` touches only that resource.
* *Monotasks execute in isolation* -- by the time a monotask is
  dispatched, all its inputs are in memory; ``execute`` never blocks on
  another monotask.
* *Per-resource schedulers control contention* -- monotasks do not run
  themselves; a :class:`~repro.monospark.schedulers.ResourceScheduler`
  dispatches them (and its queue length makes contention visible).
* *Complete control over the resource* -- disk monotasks talk to the
  :class:`~repro.simulator.disk.Disk` directly, bypassing the OS buffer
  cache: writes are write-through by construction (§5.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.metrics.events import (CPU, DISK, NETWORK, MonotaskRecord,
                                  PHASE_SHUFFLE_SERVE, TransferRecord)
from repro.simulator import Environment, Event
from repro.simulator.network import FLOW_LATENCY_S
from repro.trace.spans import LINK_SHUFFLE_FETCH, SpanLink, TraceContext

if TYPE_CHECKING:
    from repro.monospark.worker import MonoWorker

__all__ = ["Monotask", "ComputeMonotask", "DiskMonotask",
           "NetworkFetchMonotask", "FetchSource"]


class Monotask:
    """Base: dependency tracking plus self-reporting."""

    resource = "abstract"

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int]) -> None:
        self.worker = worker
        self.env: Environment = worker.env
        self.phase = phase
        self.job_id, self.stage_id, self.task_index = task_id_fields
        self.deps: List["Monotask"] = []
        self.done: Event = self.env.event()
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        #: Attempt span context + pre-minted leaf span id, attached by
        #: ``decompose`` (and by fetches for remote serve reads) so the
        #: self-report lands as a span under the attempt.  Pre-minting
        #: lets causal links reference a span before it closes.
        self.trace: Optional[TraceContext] = None
        self.span_id: Optional[int] = None

    def after(self, *deps: Optional["Monotask"]) -> "Monotask":
        """Declare dependencies (None entries are skipped)."""
        self.deps.extend(dep for dep in deps if dep is not None)
        return self

    def execute(self) -> Generator:
        """Use the resource.  Called by the resource scheduler only."""
        raise NotImplementedError

    # -- reporting -----------------------------------------------------------------

    def base_record(self, resource: str, nbytes: float = 0.0,
                    **extra) -> MonotaskRecord:
        """A partially filled record with ids, window, and queue time."""
        return MonotaskRecord(
            job_id=self.job_id, stage_id=self.stage_id,
            task_index=self.task_index, resource=resource, phase=self.phase,
            machine_id=self.worker.machine.machine_id,
            start=self.started_at, end=self.env.now, nbytes=nbytes,
            queue_s=(self.started_at - self.submitted_at
                     if self.submitted_at is not None else 0.0),
            **extra)

    def record(self) -> None:
        """Emit this monotask's :class:`MonotaskRecord`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.phase}, "
                f"j{self.job_id}s{self.stage_id}t{self.task_index})")


class ComputeMonotask(Monotask):
    """Holds one core for the full duration of its computation."""

    resource = CPU

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int],
                 deserialize_s: float = 0.0, op_s: float = 0.0,
                 serialize_s: float = 0.0) -> None:
        super().__init__(worker, phase, task_id_fields)
        self.deserialize_s = deserialize_s
        self.op_s = op_s
        self.serialize_s = serialize_s

    @property
    def seconds(self) -> float:
        """Total priced compute time of this monotask."""
        return self.deserialize_s + self.op_s + self.serialize_s

    def execute(self) -> Generator:
        yield self.worker.machine.cpu.run(self.seconds)

    def record(self) -> None:
        """Report duration with its deserialize/op/serialize split."""
        self.worker.engine.metrics.record_monotask(
            self.base_record(CPU, deserialize_s=self.deserialize_s,
                             op_s=self.op_s, serialize_s=self.serialize_s),
            trace=self.trace, span_id=self.span_id)


class DiskMonotask(Monotask):
    """Reads or writes one contiguous extent, directly on the device."""

    resource = DISK

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int], disk_index: int,
                 nbytes: float, kind: str) -> None:
        super().__init__(worker, phase, task_id_fields)
        self.disk_index = disk_index
        self.nbytes = nbytes
        self.kind = kind  # "read" | "write"

    def execute(self) -> Generator:
        disk = self.worker.machine.disks[self.disk_index]
        yield disk.submit(self.nbytes, self.kind,
                          label=f"mono:{self.phase}")

    def record(self) -> None:
        """Report the bytes moved and which disk served them."""
        self.worker.engine.metrics.record_monotask(
            self.base_record(DISK, nbytes=self.nbytes,
                             disk_index=self.disk_index),
            trace=self.trace, span_id=self.span_id)


class FetchSource:
    """One remote extent a network monotask must pull."""

    __slots__ = ("machine_id", "disk_index", "nbytes", "label")

    def __init__(self, machine_id: int, disk_index: Optional[int],
                 nbytes: float, label: str = "") -> None:
        self.machine_id = machine_id
        self.disk_index = disk_index  # None: remote data is in memory
        self.nbytes = nbytes
        self.label = label


class NetworkFetchMonotask(Monotask):
    """Fetches a multitask's remote data; scheduled at the *receiver*.

    Admission is per multitask (§3.3: outstanding requests are limited
    "to those coming from four multitasks").  Once admitted, requests to
    all remote machines are issued concurrently.  Each remote machine
    serves a request by queueing a disk read monotask on *its own* disk
    scheduler and then sending the data; the remote read therefore
    contends -- visibly -- with the remote machine's other disk work.
    """

    resource = NETWORK

    def __init__(self, worker: "MonoWorker", phase: str,
                 task_id_fields: Tuple[int, int, int],
                 sources: List[FetchSource]) -> None:
        super().__init__(worker, phase, task_id_fields)
        self.sources = sources
        self.total_bytes = sum(source.nbytes for source in sources)

    def execute(self) -> Generator:
        if not self.sources:
            return
        # One request per remote machine (§3.2): its disk reads run
        # concurrently on that machine's disk schedulers, then the data
        # comes back as a single response flow.
        by_machine: dict = {}
        for source in self.sources:
            by_machine.setdefault(source.machine_id, []).append(source)
        transfers = [self.env.process(self._fetch_machine(machine, group))
                     for machine, group in sorted(by_machine.items())]
        yield self.env.all_of(transfers)

    def _fetch_machine(self, machine_id: int,
                       sources: List[FetchSource]) -> Generator:
        engine = self.worker.engine
        local_id = self.worker.machine.machine_id
        yield self.env.timeout(FLOW_LATENCY_S)  # the request itself
        reads = []
        for source in sources:
            if source.disk_index is None:
                continue  # remote data already in memory
            remote_worker = engine.workers[machine_id]
            read = DiskMonotask(
                remote_worker, PHASE_SHUFFLE_SERVE,
                (self.job_id, self.stage_id, self.task_index),
                disk_index=source.disk_index, nbytes=source.nbytes,
                kind="read")
            if self.trace is not None and self.span_id is not None:
                # The serve read is part of the *consumer's* causal
                # chain: parent it under the same attempt and link it
                # to this fetch so the producer -> consumer edge is in
                # the trace (and renderable as a Perfetto flow).
                read.trace = self.trace
                read.span_id = engine.metrics.new_span_id()
                engine.metrics.record_link(SpanLink(
                    from_span_id=read.span_id, to_span_id=self.span_id,
                    kind=LINK_SHUFFLE_FETCH, trace_id=self.trace.trace_id,
                    at=self.env.now,
                    detail=(f"serve read on machine {machine_id} -> "
                            f"fetch on machine {local_id}")))
            remote_worker.submit_ready(read)
            reads.append(read.done)
        if reads:
            yield self.env.all_of(reads)
        total = sum(source.nbytes for source in sources)
        transfer_start = self.env.now
        yield self.worker.machine.network.transfer(
            machine_id, local_id, total,
            label=sources[0].label)
        if machine_id != local_id and total > 0:
            # The receiver timed this machine's response flow, so the
            # observation is attributable to a specific source NIC --
            # per-resource clarity at sub-monotask grain, which is what
            # lets health monitoring localize a slow uplink.
            self.worker.engine.metrics.record_transfer(TransferRecord(
                src_machine_id=machine_id, dst_machine_id=local_id,
                nbytes=total, start=transfer_start, end=self.env.now,
                job_id=self.job_id))

    def record(self) -> None:
        """Report the total bytes this fetch group received."""
        self.worker.engine.metrics.record_monotask(
            self.base_record(NETWORK, nbytes=self.total_bytes),
            trace=self.trace, span_id=self.span_id)
