"""Leveraging clarity: auto-configuration (§7, Figure 18).

Spark exposes the number of concurrent tasks per worker as a
configuration parameter (default: the core count) and the best value is
workload-dependent.  MonoSpark *eliminates* the parameter: each resource
scheduler admits exactly as many monotasks as its resource can run, so
concurrency configures itself per resource, and can even differ between
stages of the same job.

:func:`sweep_spark_concurrency` runs a workload under a set of Spark
slot configurations plus MonoSpark and reports all runtimes, ready for
the Figure 18 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.context import AnalyticsContext
from repro.cluster.cluster import Cluster
from repro.engine.base import JobResult

__all__ = ["ConcurrencySweep", "sweep_spark_concurrency"]

#: The slot counts Figure 18 sweeps.
DEFAULT_SLOT_OPTIONS = (2, 4, 8, 16, 32)


@dataclass
class ConcurrencySweep:
    """Runtimes of one workload under each configuration."""

    #: slots -> job seconds for the Spark engine.
    spark_seconds: Dict[int, float]
    #: MonoSpark, which self-configures.
    monospark_seconds: float

    @property
    def best_spark(self) -> float:
        """Runtime of the best-tuned Spark configuration."""
        return min(self.spark_seconds.values())

    @property
    def best_spark_slots(self) -> int:
        """The slot count that won the sweep."""
        return min(self.spark_seconds, key=self.spark_seconds.get)

    @property
    def worst_spark(self) -> float:
        """Runtime of the worst Spark configuration."""
        return max(self.spark_seconds.values())

    @property
    def monospark_vs_best_spark(self) -> float:
        """< 1 means MonoSpark beats even the best-tuned Spark."""
        return self.monospark_seconds / self.best_spark


def sweep_spark_concurrency(
        make_cluster: Callable[[], Cluster],
        run_workload: Callable[[AnalyticsContext], JobResult],
        slot_options: Sequence[int] = DEFAULT_SLOT_OPTIONS,
        spark_options: Optional[dict] = None) -> ConcurrencySweep:
    """Run ``run_workload`` under every Spark slot count and MonoSpark.

    ``make_cluster`` must build a fresh cluster (with input data) per
    run so configurations don't share simulator state.
    """
    spark_options = spark_options or {}
    spark_seconds: Dict[int, float] = {}
    for slots in slot_options:
        ctx = AnalyticsContext(make_cluster(), engine="spark",
                               slots_per_machine=slots, **spark_options)
        spark_seconds[slots] = run_workload(ctx).duration
    mono_ctx = AnalyticsContext(make_cluster(), engine="monospark")
    monospark_seconds = run_workload(mono_ctx).duration
    return ConcurrencySweep(spark_seconds=spark_seconds,
                            monospark_seconds=monospark_seconds)
