"""Auto-configuration experiments (§7)."""

from repro.autoconf.concurrency import (DEFAULT_SLOT_OPTIONS,
                                        ConcurrencySweep,
                                        sweep_spark_concurrency)

__all__ = ["ConcurrencySweep", "sweep_spark_concurrency",
           "DEFAULT_SLOT_OPTIONS"]
